//! Concurrency stress battery: N client threads × mixed JOB queries through shared
//! [`Session`]s over one database, all multiplexed on the process-wide worker pool.
//!
//! What must hold under sharing:
//! * **Row identity** — every concurrent execution returns exactly the rows a
//!   single-threaded solo run returns (compared sorted; aggregates are one row).
//! * **No deadlocks** — the battery completes; admission slots always free.
//! * **Exactly-once observer events** — each query's breaker completions are
//!   delivered once per breaker to *its own* policy, never duplicated or leaked
//!   across concurrently running queries.
//! * **Suspension scoping** — one session's mid-query re-optimization corrects its
//!   query while concurrent sessions complete unaffected.
//!
//! The CI concurrent-smoke leg runs this file repeatedly (`REOPT_STRESS_ITERS`)
//! to shake out interleaving-dependent flakes.

use reopt_repro::core::{
    execute_with_reoptimization, Database, PolicyContext, PolicyDecision, ReoptConfig, ReoptMode,
    ReoptPolicy,
};
use reopt_repro::executor::{ExecEvent, QueryMetrics, WorkerPool};
use reopt_repro::planner::{OptimizerConfig, QuerySpec, RelSet};
use reopt_repro::storage::{live_spill_files, Row};
use reopt_repro::workload::job::{job_queries, job_query, JobQuery};
use reopt_repro::workload::{load_imdb, ImdbConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Extra battery repetitions (the CI leg raises this; locally 1 keeps it quick).
fn stress_iters() -> usize {
    std::env::var("REOPT_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

const CLIENTS: usize = 4;

/// The query mix: one variant per family with at most 8 tables — small enough to
/// plan exhaustively, varied enough to cover every operator shape.
fn query_mix() -> Vec<JobQuery> {
    let mut seen = HashSet::new();
    job_queries()
        .into_iter()
        .filter(|q| q.table_count <= 8 && seen.insert(q.family))
        .collect()
}

fn shared_database() -> Database {
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.02, seed: 9 }).unwrap();
    db.set_threads(Some(2));
    // At the default 1024-row batches, a morsel (4 batches) swallows every table at
    // this scale and pipelines clamp to one inline worker — the battery would never
    // touch the shared pool. Shrink the batches so scans split into enough morsels
    // for real multi-worker chains.
    db.set_batch_size(Some(64));
    db
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn stress_battery_concurrent_sessions_match_single_threaded_reference() {
    let mut db = shared_database();

    // Single-threaded reference rows, computed before any concurrency.
    db.set_threads(Some(1));
    let mix = query_mix();
    let reference: Vec<Vec<Row>> = mix
        .iter()
        .map(|q| sorted(db.execute(&q.sql).unwrap().rows))
        .collect();
    db.set_threads(Some(2));

    let reference = Arc::new(reference);
    let mix = Arc::new(mix);

    for _round in 0..stress_iters() {
        let mut clients = Vec::new();
        for client in 0..CLIENTS {
            let mut session = db.connect();
            let mix = Arc::clone(&mix);
            let reference = Arc::clone(&reference);
            clients.push(std::thread::spawn(move || {
                // Each client walks the mix from a different offset so distinct
                // queries overlap in time.
                for step in 0..mix.len() {
                    let idx = (client + step) % mix.len();
                    let query = &mix[idx];
                    let out = session
                        .execute(&query.sql)
                        .unwrap_or_else(|e| panic!("client {client} query {}: {e}", query.id));
                    assert_eq!(
                        sorted(out.rows),
                        reference[idx],
                        "client {client} query {} diverged from the single-threaded reference",
                        query.id
                    );
                }
                session.server().inflight()
            }));
        }
        for client in clients {
            client.join().expect("client thread panicked");
        }
        assert_eq!(db.server().inflight(), 0, "admission slots must all free");
    }
    assert_eq!(
        db.server().admitted_total() as usize,
        CLIENTS * query_mix().len() * stress_iters(),
        "every query acquired exactly one admission slot"
    );
    assert!(
        WorkerPool::global().threads_spawned_total() > 0,
        "the battery must actually dispatch morsels to the resident pool"
    );
}

#[test]
fn constrained_budget_battery_spills_without_leaking_files() {
    // The out-of-core leg of the battery: the same shared-database mix, but under
    // a memory budget a quarter of the largest single-query footprint, so breaker
    // sinks are denied grants and spill concurrently from every client. What must
    // hold on top of the usual row identity: the process-wide spill-file counter
    // returns to zero once all clients drain — the RAII guards must delete every
    // run regardless of which worker or session owned it.
    let mut db = shared_database();

    db.set_threads(Some(1));
    let mix: Vec<JobQuery> = query_mix().into_iter().take(4).collect();
    let mut peak_bytes = 0u64;
    let reference: Vec<Vec<Row>> = mix
        .iter()
        .map(|q| {
            let out = db.execute(&q.sql).unwrap();
            peak_bytes = peak_bytes.max(out.peak_buffered_bytes);
            sorted(out.rows)
        })
        .collect();
    db.set_threads(Some(2));
    db.set_mem_budget(Some((peak_bytes / 4).max(1)));

    let mix = Arc::new(mix);
    let reference = Arc::new(reference);
    let mut clients = Vec::new();
    for client in 0..CLIENTS {
        let mut session = db.connect();
        let mix = Arc::clone(&mix);
        let reference = Arc::clone(&reference);
        clients.push(std::thread::spawn(move || {
            for step in 0..mix.len() {
                let idx = (client + step) % mix.len();
                let query = &mix[idx];
                let out = session
                    .execute(&query.sql)
                    .unwrap_or_else(|e| panic!("client {client} query {}: {e}", query.id));
                assert_eq!(
                    sorted(out.rows),
                    reference[idx],
                    "client {client} query {} diverged under the memory budget",
                    query.id
                );
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread panicked");
    }
    assert!(
        db.governor().denials() > 0,
        "a budget a quarter of the peak footprint must deny at least one grant"
    );
    assert_eq!(
        live_spill_files(),
        0,
        "every spill file must be cleaned up once the battery drains"
    );
}

#[test]
fn admission_cap_is_respected_under_concurrent_load() {
    let mut db = shared_database();
    db.set_max_inflight(2);
    let mix = Arc::new(query_mix());
    let mut clients = Vec::new();
    for client in 0..CLIENTS {
        let mut session = db.connect();
        let mix = Arc::clone(&mix);
        clients.push(std::thread::spawn(move || {
            for step in 0..mix.len() {
                let query = &mix[(client + step) % mix.len()];
                session.execute(&query.sql).unwrap();
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread panicked");
    }
    assert!(
        db.server().peak_inflight() <= 2,
        "peak in-flight {} exceeded the admission cap",
        db.server().peak_inflight()
    );
    assert_eq!(db.server().inflight(), 0);
}

/// A policy that records every breaker-completion event it sees and never
/// intervenes. `wants_events` makes the driver install an executor observer, so
/// this exercises the whole event funnel under concurrency.
struct EventRecorder {
    breakers: Vec<(RelSet, u64)>,
}

impl ReoptPolicy for EventRecorder {
    fn name(&self) -> &str {
        "event-recorder"
    }
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, event: &ExecEvent, _ctx: &PolicyContext) -> PolicyDecision {
        if let ExecEvent::BreakerComplete(breaker) = event {
            self.breakers.push((breaker.rel_set, breaker.actual_rows));
        }
        PolicyDecision::Continue
    }
    fn on_complete(
        &mut self,
        _metrics: &QueryMetrics,
        _spec: &QuerySpec,
        _ctx: &PolicyContext,
    ) -> PolicyDecision {
        PolicyDecision::Continue
    }
}

#[test]
fn observer_events_are_exactly_once_per_query_under_concurrency() {
    let db = shared_database();
    let mix: Vec<JobQuery> = query_mix().into_iter().take(4).collect();
    let mix = Arc::new(mix);

    let mut clients = Vec::new();
    for client in 0..CLIENTS {
        let mut session = db.connect();
        let mix = Arc::clone(&mix);
        clients.push(std::thread::spawn(move || {
            for step in 0..mix.len() {
                let query = &mix[(client + step) % mix.len()];
                let mut recorder = EventRecorder { breakers: Vec::new() };
                let report = session
                    .execute_with_policy(&query.sql, &mut recorder)
                    .unwrap_or_else(|e| panic!("client {client} query {}: {e}", query.id));
                assert_eq!(report.rounds.len(), 0, "recorder never intervenes");
                // Exactly-once: within one run, no breaker subtree completes twice.
                // (Cross-run sets may differ — the shared feedback cache legitimately
                // changes later plans — but duplicates would mean a worker's event
                // leaked through the funnel more than once.)
                let mut seen = HashSet::new();
                for (rel_set, actual) in &recorder.breakers {
                    assert!(
                        seen.insert(*rel_set),
                        "client {client} query {}: breaker {rel_set:?} (actual {actual}) \
                         delivered more than once",
                        query.id
                    );
                }
                assert!(
                    !recorder.breakers.is_empty(),
                    "client {client} query {}: a multi-join query must complete breakers",
                    query.id
                );
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread panicked");
    }
}

#[test]
fn limit_quiesce_races_mid_query_suspension_across_sessions() {
    // The parallel LIMIT quiesces its workers the moment the count is satisfied;
    // a concurrent session's mid-query suspension quiesces *its* workers through
    // the same resident pool. The two teardown paths must stay scoped per query:
    // LIMIT output stays run-identical (exact order, morsel-ordered exchange)
    // while the other session suspends, re-plans and resumes.
    let mut db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();
    db.set_threads(Some(2));
    db.set_batch_size(Some(64));

    let limits = [
        // No ORDER BY: the parallel engine must still return the scan-order prefix.
        "SELECT t.id AS id FROM title AS t LIMIT 37",
        // Plan-defined order, truncated after the sort.
        "SELECT t.id AS id FROM title AS t ORDER BY id DESC LIMIT 25",
    ];
    db.set_threads(Some(1));
    let expected: Vec<Vec<Row>> = limits
        .iter()
        .map(|sql| db.execute(sql).unwrap().rows)
        .collect();
    let skewed = job_query("10a").unwrap();
    let expected_skewed = db.execute(&skewed.sql).unwrap();
    db.set_threads(Some(2));

    let stop = Arc::new(AtomicBool::new(false));
    let stop_bg = Arc::clone(&stop);
    let mut background = db.connect();
    let bg_expected = expected.clone();
    let bg_handle = std::thread::spawn(move || {
        let mut completed = 0u64;
        while !stop_bg.load(Ordering::SeqCst) {
            for (sql, want) in limits.iter().zip(&bg_expected) {
                let out = background.execute(sql).unwrap();
                // Exact order, not sorted: parallel LIMIT promises run-identical
                // output even while another query tears down mid-suspension.
                assert_eq!(
                    &out.rows, want,
                    "LIMIT output diverged while another session suspended mid-query"
                );
            }
            completed += 1;
        }
        completed
    });

    // The foreground session repeatedly re-optimizes mid-query, so worker
    // quiesce-and-resume keeps overlapping the background LIMIT teardowns.
    let mut session = db.connect();
    let config = ReoptConfig {
        threshold: 8.0,
        mode: ReoptMode::MidQuery,
        ..ReoptConfig::default()
    };
    for _ in 0..3 {
        let report =
            execute_with_reoptimization(session.database_mut(), &skewed.sql, &config).unwrap();
        assert_eq!(
            report.final_rows, expected_skewed.rows,
            "mid-query re-optimization changed the skewed query's result"
        );
        assert!(
            report.reoptimized(),
            "the skewed keyword join must trigger re-optimization"
        );
    }

    stop.store(true, Ordering::SeqCst);
    let completed = bg_handle.join().expect("background session panicked");
    assert!(
        completed >= 1,
        "the background session must complete LIMIT queries during re-optimization"
    );
}

#[test]
fn mid_query_reopt_corrects_one_session_while_others_complete_unaffected() {
    // Force hash joins so the mis-estimated subtree deterministically lands on a
    // build side (same setup as the end-to-end mid-query tests), then run the
    // re-optimizing query in one session while another session loops unrelated
    // queries on the same worker pool. Quiesce must be scoped to the violating
    // query: the background session keeps completing with correct rows throughout.
    let mut db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();
    db.set_threads(Some(2));
    db.set_batch_size(Some(64));

    let skewed = job_query("10a").unwrap();
    db.set_threads(Some(1));
    let expected_skewed = db.execute(&skewed.sql).unwrap();
    let background_query = job_query("1a").unwrap();
    let expected_background = sorted(db.execute(&background_query.sql).unwrap().rows);
    db.set_threads(Some(2));

    let stop = Arc::new(AtomicBool::new(false));
    let stop_bg = Arc::clone(&stop);
    let mut background = db.connect();
    let bg_expected = expected_background.clone();
    let bg_handle = std::thread::spawn(move || {
        let mut completed = 0u64;
        while !stop_bg.load(Ordering::SeqCst) {
            let out = background.execute(&background_query.sql).unwrap();
            assert_eq!(
                sorted(out.rows),
                bg_expected,
                "background session corrupted while another session re-optimized"
            );
            completed += 1;
        }
        completed
    });

    // The foreground session re-optimizes mid-query (suspension, breaker-state
    // reuse, re-planning) while the background session hammers the same pool.
    let mut session = db.connect();
    let config = ReoptConfig {
        threshold: 8.0,
        mode: ReoptMode::MidQuery,
        ..ReoptConfig::default()
    };
    let report =
        execute_with_reoptimization(session.database_mut(), &skewed.sql, &config).unwrap();
    assert_eq!(
        report.final_rows, expected_skewed.rows,
        "mid-query re-optimization changed the skewed query's result"
    );
    assert!(
        report.reoptimized(),
        "the skewed keyword join must trigger re-optimization"
    );

    stop.store(true, Ordering::SeqCst);
    let completed = bg_handle.join().expect("background session panicked");
    assert!(
        completed >= 1,
        "the background session must complete queries during re-optimization"
    );
}
