//! The full 113-query Join Order Benchmark battery.
//!
//! Ignored by default: the suite takes minutes even in release mode, so the
//! nightly CI job runs it explicitly:
//!
//! ```text
//! cargo test --release --test job_full -- --ignored --nocapture
//! ```
//!
//! Every JOB query executes under plain execution and under all three built-in
//! re-optimization policies; each run must be row-identical to a forced
//! single-threaded row-engine reference. Along the way the battery tracks, per
//! policy, the distribution of re-optimization-round q-errors (how wrong the
//! estimates that triggered correction were) and of wall-clock runtimes, and
//! prints the p50/p95/p99 summaries — the full-suite view of the paper's
//! "re-optimization fixes bad plans without hurting good ones" claim.
//!
//! `REOPT_SCALE` overrides the dataset scale (default 0.02, the perf_smoke
//! scale).
//!
//! The constrained-memory pass re-runs the suite under a byte budget
//! (`REOPT_JOB_MEM_BUDGET`, default 1 MiB): every query must stay row-identical
//! to its unlimited reference while breaker sinks spill out of core, and every
//! spill file must be gone when the battery drains.

use reopt_repro::core::{
    execute_with_reoptimization, Database, ReoptConfig, ReoptMode, ReoptReport,
};
use reopt_repro::storage::Row;
use reopt_repro::workload::job::job_queries;
use reopt_repro::workload::{load_imdb, ImdbConfig};
use std::time::{Duration, Instant};

fn canonical(rows: &[Row]) -> Vec<String> {
    let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row}")).collect();
    rendered.sort();
    rendered
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Default)]
struct PolicyStats {
    runtimes: Vec<f64>,
    q_errors: Vec<f64>,
    rounds: usize,
}

impl PolicyStats {
    fn absorb(&mut self, report: &ReoptReport, elapsed: Duration) {
        self.runtimes.push(elapsed.as_secs_f64() * 1e3);
        self.rounds += report.rounds.len();
        self.q_errors
            .extend(report.rounds.iter().map(|round| round.q_error));
    }

    fn summary(&mut self, name: &str) -> String {
        self.runtimes
            .sort_by(|a, b| a.partial_cmp(b).expect("runtimes are finite"));
        self.q_errors
            .sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
        format!(
            "{name:<22} runtime ms p50 {:>8.2} p95 {:>8.2} p99 {:>8.2} max {:>8.2} | \
             {} rounds, violation q-error p50 {:.1} p95 {:.1} max {:.1}",
            percentile(&self.runtimes, 0.50),
            percentile(&self.runtimes, 0.95),
            percentile(&self.runtimes, 0.99),
            self.runtimes.last().copied().unwrap_or(0.0),
            self.rounds,
            percentile(&self.q_errors, 0.50),
            percentile(&self.q_errors, 0.95),
            self.q_errors.last().copied().unwrap_or(0.0),
        )
    }
}

#[test]
#[ignore = "full 113-query suite; nightly CI runs it with --release -- --ignored"]
fn full_job_suite_runs_every_query_under_every_policy() {
    let scale = std::env::var("REOPT_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale, seed: 13 }).unwrap();

    let queries = job_queries();
    assert_eq!(queries.len(), 113, "the JOB suite is 113 queries");

    let modes = [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery];
    let mut stats: Vec<PolicyStats> = modes.iter().map(|_| PolicyStats::default()).collect();
    let mut plain = PolicyStats::default();
    let mut failures = Vec::new();

    for (done, query) in queries.iter().enumerate() {
        let id = &query.id;
        db.set_threads(Some(1));
        db.set_columnar(Some(false));
        let reference = match db.execute(&query.sql) {
            Ok(output) => canonical(&output.rows),
            Err(error) => {
                failures.push(format!("{id}: reference execution failed: {error}"));
                db.set_threads(None);
                db.set_columnar(None);
                continue;
            }
        };
        db.set_threads(None);
        db.set_columnar(None);

        let start = Instant::now();
        match db.execute(&query.sql) {
            Ok(output) => {
                plain.runtimes.push(start.elapsed().as_secs_f64() * 1e3);
                if canonical(&output.rows) != reference {
                    failures.push(format!("{id}: plain diverged from reference"));
                }
            }
            Err(error) => failures.push(format!("{id}: plain execution failed: {error}")),
        }

        for (idx, mode) in modes.iter().enumerate() {
            let config = ReoptConfig {
                threshold: 8.0,
                mode: *mode,
                feedback: false,
                ..ReoptConfig::default()
            };
            let start = Instant::now();
            match execute_with_reoptimization(&mut db, &query.sql, &config) {
                Ok(report) => {
                    stats[idx].absorb(&report, start.elapsed());
                    if canonical(&report.final_rows) != reference {
                        failures.push(format!("{id}: {mode:?} diverged from reference"));
                    }
                }
                Err(error) => failures.push(format!("{id}: {mode:?} failed: {error}")),
            }
        }
        if (done + 1) % 20 == 0 {
            eprintln!("job_full: {}/{} queries done", done + 1, queries.len());
        }
    }

    plain.runtimes.sort_by(|a, b| a.partial_cmp(b).expect("runtimes are finite"));
    eprintln!(
        "job_full: scale {scale}: plain runtime ms p50 {:.2} p95 {:.2} p99 {:.2} max {:.2}",
        percentile(&plain.runtimes, 0.50),
        percentile(&plain.runtimes, 0.95),
        percentile(&plain.runtimes, 0.99),
        plain.runtimes.last().copied().unwrap_or(0.0),
    );
    for (idx, mode) in modes.iter().enumerate() {
        eprintln!("job_full: {}", stats[idx].summary(&format!("{mode:?}")));
    }

    assert!(
        failures.is_empty(),
        "{} of 113 queries failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
#[ignore = "full-suite constrained-memory pass; nightly CI runs it with --release -- --ignored"]
fn full_job_suite_is_row_identical_under_a_constrained_memory_budget() {
    let scale = std::env::var("REOPT_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let budget: u64 = std::env::var("REOPT_JOB_MEM_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale, seed: 13 }).unwrap();
    db.set_threads(Some(1));
    db.set_columnar(Some(false));

    let queries = job_queries();
    let mut failures = Vec::new();
    let mut spilled_queries = 0usize;
    let mut spilled_bytes = 0u64;

    for (done, query) in queries.iter().enumerate() {
        let id = &query.id;
        db.set_mem_budget(None);
        let reference = match db.execute(&query.sql) {
            Ok(output) => canonical(&output.rows),
            Err(error) => {
                failures.push(format!("{id}: unlimited reference failed: {error}"));
                continue;
            }
        };

        db.set_mem_budget(Some(budget));
        match db.execute(&query.sql) {
            Ok(output) => {
                if canonical(&output.rows) != reference {
                    failures.push(format!("{id}: plain run diverged under budget {budget}"));
                }
                let (bytes, _) = output
                    .metrics
                    .as_ref()
                    .map(|m| m.root.total_spilled())
                    .unwrap_or((0, 0));
                if bytes > 0 {
                    spilled_queries += 1;
                    spilled_bytes += bytes;
                }
            }
            Err(error) => failures.push(format!("{id}: plain run failed under budget: {error}")),
        }

        // The re-plan-instead-of-spill path at suite breadth: memory pressure may
        // suspend and re-plan, and whatever still spills must not change rows.
        let config = ReoptConfig {
            threshold: 8.0,
            mode: ReoptMode::MidQuery,
            feedback: false,
            ..ReoptConfig::default()
        };
        match execute_with_reoptimization(&mut db, &query.sql, &config) {
            Ok(report) => {
                if canonical(&report.final_rows) != reference {
                    failures.push(format!("{id}: MidQuery diverged under budget {budget}"));
                }
            }
            Err(error) => failures.push(format!("{id}: MidQuery failed under budget: {error}")),
        }
        if (done + 1) % 20 == 0 {
            eprintln!("job_full(budget): {}/{} queries done", done + 1, queries.len());
        }
    }

    let denials = db.governor().denials();
    eprintln!(
        "job_full(budget): scale {scale}, budget {budget} bytes: {spilled_queries} plain \
         queries spilled {spilled_bytes} bytes total, {denials} denied grant(s)"
    );
    assert!(
        denials > 0,
        "a {budget}-byte budget across the whole suite must deny at least one grant"
    );
    assert_eq!(
        reopt_repro::storage::live_spill_files(),
        0,
        "every spill file must be cleaned up once the suite drains"
    );
    assert!(
        failures.is_empty(),
        "{} runs failed under the memory budget:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
