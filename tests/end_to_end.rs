//! Workspace-level integration tests: the whole stack (SQL → binder → optimizer →
//! executor → re-optimization) against the synthetic workloads.

use reopt_repro::core::{
    execute_with_reoptimization, q_error, Database, PerfectOracle, ReoptConfig, ReoptMode,
    SelectiveConfig,
};
use reopt_repro::sql::parse_sql;
use reopt_repro::workload::job::{job_queries, job_query};
use reopt_repro::workload::{load_imdb, load_nasdaq, ImdbConfig, NasdaqConfig, APPL_QUERY};

fn imdb_database() -> Database {
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();
    db
}

#[test]
fn a_cross_section_of_the_suite_plans_and_executes() {
    let mut db = imdb_database();
    // One query per family keeps the runtime reasonable while touching every join graph.
    //
    // The 14- and 17-table families (20 and 21) are planned but not executed: the
    // executor materializes every operator's full output, and the many-to-many
    // fan-out of those join graphs produces tens of millions of intermediate rows
    // even at tiny scale (see ROADMAP "Open items"). Their planning still runs the
    // whole binder/estimator/enumerator stack; greedy enumeration keeps it fast.
    let mut seen_families = std::collections::HashSet::new();
    for query in job_queries() {
        if !seen_families.insert(query.family) {
            continue;
        }
        if query.table_count > 12 {
            let statement = parse_sql(&query.sql).unwrap();
            let select = statement.query().unwrap().clone();
            let optimizer = reopt_repro::planner::Optimizer::new(
                reopt_repro::planner::OptimizerConfig {
                    greedy_threshold: 8,
                    ..Default::default()
                },
            );
            let planned = optimizer
                .plan_select(
                    &select,
                    db.storage(),
                    db.catalog(),
                    &reopt_repro::planner::CardinalityOverrides::new(),
                )
                .unwrap_or_else(|e| panic!("query {} failed to plan: {e}", query.id));
            assert_eq!(
                planned.plan.rel_set.len(),
                query.table_count,
                "plan of {} covers all relations",
                query.id
            );
            continue;
        }
        let output = db
            .execute(&query.sql)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", query.id));
        assert_eq!(output.row_count(), 1, "aggregate query {} returns one row", query.id);
        let plan = output.plan.as_ref().unwrap();
        assert_eq!(
            plan.rel_set.len(),
            query.table_count,
            "plan of {} covers all relations",
            query.id
        );
    }
}

#[test]
fn reoptimization_preserves_results_on_skewed_queries() {
    let mut db = imdb_database();
    for id in ["1a", "2a", "2d", "6a", "9a", "11a"] {
        let query = job_query(id).unwrap();
        let expected = db.execute(&query.sql).unwrap();
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly] {
            let config = ReoptConfig {
                threshold: 8.0,
                mode,
                ..ReoptConfig::default()
            };
            let report = execute_with_reoptimization(&mut db, &query.sql, &config)
                .unwrap_or_else(|e| panic!("re-optimizing {id} ({mode:?}) failed: {e}"));
            assert_eq!(
                report.final_rows, expected.rows,
                "query {id} under {mode:?} changed its result"
            );
        }
        // No temporary tables may survive.
        assert_eq!(db.storage().table_count(), 21, "temp tables left behind by {id}");
    }
}

#[test]
fn perfect_oracle_eliminates_large_estimation_errors() {
    let mut db = imdb_database();
    let query = job_query("2d").unwrap();
    let statement = parse_sql(&query.sql).unwrap();
    let select = statement.query().unwrap().clone();

    // Default run: record the worst join q-error.
    let default_output = db.execute_select(&select).unwrap();
    let worst_default = default_output
        .metrics
        .as_ref()
        .unwrap()
        .root
        .joins_bottom_up()
        .iter()
        .map(|j| j.q_error())
        .fold(1.0f64, f64::max);

    // Perfect run: every join estimate must be (essentially) exact.
    let mut oracle = PerfectOracle::new();
    let overrides = oracle.overrides_for(&mut db, &select, 17, "2d").unwrap();
    db.set_overrides(overrides);
    let perfect_output = db.execute_select(&select).unwrap();
    db.clear_overrides();
    let worst_perfect = perfect_output
        .metrics
        .as_ref()
        .unwrap()
        .root
        .joins_bottom_up()
        .iter()
        .map(|j| j.q_error())
        .fold(1.0f64, f64::max);

    assert!(
        worst_perfect < 1.5,
        "perfect estimates still show q-error {worst_perfect}"
    );
    assert!(
        worst_default >= worst_perfect,
        "default ({worst_default}) should not beat perfect ({worst_perfect})"
    );
    assert_eq!(perfect_output.rows, default_output.rows);
}

#[test]
fn nasdaq_example_shows_underestimation_and_reopt_fixes_the_plan() {
    let mut db = Database::new();
    load_nasdaq(&mut db, &NasdaqConfig::tiny()).unwrap();
    let output = db.execute(APPL_QUERY).unwrap();
    let actual = output.rows[0].value(0).as_int().unwrap() as f64;
    let estimate = output.plan.as_ref().unwrap().children[0].estimated_rows;
    assert!(q_error(estimate, actual) > 4.0, "expected a large estimation error");

    let report =
        execute_with_reoptimization(&mut db, APPL_QUERY, &ReoptConfig::with_threshold(4.0))
            .unwrap();
    assert!(report.reoptimized());
    assert_eq!(report.final_rows, output.rows);
}

#[test]
fn selective_improvement_converges_on_a_job_query() {
    let mut db = imdb_database();
    let query = job_query("2a").unwrap();
    let iterations = reopt_repro::core::selective_improvement(
        &mut db,
        &query.sql,
        &SelectiveConfig {
            threshold: 8.0,
            max_iterations: 24,
        },
    )
    .unwrap();
    assert!(!iterations.is_empty());
    let last = iterations.last().unwrap();
    assert!(
        last.corrected.is_none() || iterations.len() == 24,
        "simulation should converge or hit the cap"
    );
}

#[test]
fn explain_analyze_reports_estimates_and_actuals_for_job() {
    let mut db = imdb_database();
    let query = job_query("3a").unwrap();
    let text = db.explain_analyze(&query.sql).unwrap();
    assert!(text.contains("actual rows="));
    assert!(text.contains("q-error="));
    assert!(text.contains("Execution Time"));
}
