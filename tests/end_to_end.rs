//! Workspace-level integration tests: the whole stack (SQL → binder → optimizer →
//! executor → re-optimization) against the synthetic workloads.

use reopt_repro::core::{
    execute_with_reoptimization, q_error, Database, PerfectOracle, ReoptConfig, ReoptMode,
    ReoptRoundKind, ReoptTrigger, SelectiveConfig,
};
use reopt_repro::executor::{execute_plan, Executor, MemoryGovernor};
use reopt_repro::planner::{CardinalityOverrides, Optimizer, OptimizerConfig, PlannedQuery};
use reopt_repro::sql::parse_sql;
use reopt_repro::workload::job::{job_queries, job_query, JobQuery};
use reopt_repro::workload::{load_imdb, load_nasdaq, ImdbConfig, NasdaqConfig, APPL_QUERY};

fn imdb_database() -> Database {
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();
    db
}

/// Plan a suite query with greedy enumeration (exhaustive DPccp on the 14- and 17-table
/// families would dominate test time; greedy still runs the whole binder/estimator
/// stack).
fn plan_greedy(db: &Database, query: &JobQuery) -> PlannedQuery {
    let statement = parse_sql(&query.sql).unwrap();
    let select = statement.query().unwrap().clone();
    let optimizer = Optimizer::new(OptimizerConfig {
        greedy_threshold: 8,
        ..Default::default()
    });
    optimizer
        .plan_select(
            &select,
            db.storage(),
            db.catalog(),
            &CardinalityOverrides::new(),
        )
        .unwrap_or_else(|e| panic!("query {} failed to plan: {e}", query.id))
}

#[test]
fn a_cross_section_of_the_suite_plans_and_executes() {
    let mut db = imdb_database();
    // One query per family keeps the runtime reasonable while touching every join graph.
    // The 14- and 17-table families (20 and 21) are planned greedily (exhaustive DPccp
    // needs seconds per query); family 20 executes here too, while family 21's 17-table
    // fan-out at this scale (~240M joined rows) is CPU-bound even pipelined, so its
    // end-to-end execution runs at a smaller scale in
    // `large_job_families_execute_with_bounded_memory`.
    let mut seen_families = std::collections::HashSet::new();
    for query in job_queries() {
        if !seen_families.insert(query.family) {
            continue;
        }
        if query.table_count > 12 {
            let planned = plan_greedy(&db, &query);
            assert_eq!(
                planned.plan.rel_set.len(),
                query.table_count,
                "plan of {} covers all relations",
                query.id
            );
            if query.table_count <= 14 {
                let result = execute_plan(&planned.plan, db.storage())
                    .unwrap_or_else(|e| panic!("query {} failed to execute: {e}", query.id));
                assert_eq!(result.rows.len(), 1, "aggregate query {} returns one row", query.id);
            }
            continue;
        }
        let output = db
            .execute(&query.sql)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", query.id));
        assert_eq!(output.row_count(), 1, "aggregate query {} returns one row", query.id);
        let plan = output.plan.as_ref().unwrap();
        assert_eq!(
            plan.rel_set.len(),
            query.table_count,
            "plan of {} covers all relations",
            query.id
        );
    }
}

#[test]
fn large_job_families_execute_with_bounded_memory() {
    // Families 20 (14 tables) and 21 (17 tables) were plan-only under the seed
    // executor: their many-to-many join graphs fan out to tens of millions of
    // materialized intermediate rows. The pipelined executor streams that fan-out
    // through the final aggregate, so peak buffered state is bounded by the pipeline
    // breakers (hash-join build sides, aggregate groups), not the join fan-out.
    // Scale 0.02 keeps family 21's ~14M joined rows inside the test budget while
    // still dwarfing the buffered state by orders of magnitude.
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.02, seed: 9 }).unwrap();
    for id in ["20a", "21a"] {
        let query = job_query(id).unwrap();
        let planned = plan_greedy(&db, &query);
        let result = execute_plan(&planned.plan, db.storage())
            .unwrap_or_else(|e| panic!("query {id} failed to execute: {e}"));
        assert_eq!(result.rows.len(), 1, "aggregate query {id} returns one row");

        let fan_out = result
            .metrics
            .root
            .joins_bottom_up()
            .iter()
            .map(|j| j.actual_rows)
            .max()
            .expect("query has joins");
        assert!(
            result.peak_buffered_rows > 0,
            "{id}: pipeline breakers must report buffered state"
        );
        assert!(
            result.peak_buffered_rows < fan_out,
            "{id}: peak buffered rows {} must stay below the join fan-out {}",
            result.peak_buffered_rows,
            fan_out
        );
    }
}

#[test]
fn pipelined_results_match_materialized_execution() {
    // Cross-check: for one query per executable family, the pipelined executor
    // (default batches) must produce the same rows as an effectively materializing
    // run (a batch size larger than any intermediate — the seed executor's
    // operator-at-a-time regime) and as a batch-size-1 run on the smaller families.
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.02, seed: 9 }).unwrap();
    let sort_rows = |mut rows: Vec<reopt_repro::storage::Row>| {
        rows.sort_by_key(|row| format!("{row}"));
        rows
    };
    let mut seen_families = std::collections::HashSet::new();
    for query in job_queries() {
        if !seen_families.insert(query.family) || query.table_count > 12 {
            continue;
        }
        let planned = plan_greedy(&db, &query);
        let pipelined = execute_plan(&planned.plan, db.storage())
            .unwrap_or_else(|e| panic!("query {} failed: {e}", query.id));
        let materialized = Executor::with_batch_size(db.storage(), usize::MAX)
            .execute(&planned.plan)
            .unwrap_or_else(|e| panic!("query {} failed materialized: {e}", query.id));
        assert_eq!(
            sort_rows(pipelined.rows.clone()),
            sort_rows(materialized.rows),
            "query {}: pipelined and materialized executions disagree",
            query.id
        );
        if query.table_count <= 6 {
            let row_at_a_time = Executor::with_batch_size(db.storage(), 1)
                .execute(&planned.plan)
                .unwrap_or_else(|e| panic!("query {} failed at batch size 1: {e}", query.id));
            assert_eq!(
                sort_rows(pipelined.rows),
                sort_rows(row_at_a_time.rows),
                "query {}: batch-size-1 execution disagrees",
                query.id
            );
        }
    }
}

#[test]
fn reoptimization_preserves_results_on_skewed_queries() {
    let mut db = imdb_database();
    for id in ["1a", "2a", "2d", "6a", "9a", "11a"] {
        let query = job_query(id).unwrap();
        let expected = db.execute(&query.sql).unwrap();
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
            let config = ReoptConfig {
                threshold: 8.0,
                mode,
                ..ReoptConfig::default()
            };
            let report = execute_with_reoptimization(&mut db, &query.sql, &config)
                .unwrap_or_else(|e| panic!("re-optimizing {id} ({mode:?}) failed: {e}"));
            assert_eq!(
                report.final_rows, expected.rows,
                "query {id} under {mode:?} changed its result"
            );
        }
        // No temporary tables may survive.
        assert_eq!(db.storage().table_count(), 21, "temp tables left behind by {id}");
    }
}

#[test]
fn mid_query_reopt_reuses_hash_build_state_on_a_skewed_job_query() {
    // Force hash joins so the mis-estimated subtree deterministically lands on a
    // build side — the state mid-query re-optimization suspends on and reuses.
    let mut db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();

    // Family 10's join-crossing correlation (franchise movies have both the popular
    // keywords and far more cast entries) mis-estimates a mid-plan subtree by three
    // orders of magnitude at this scale.
    let query = job_query("10a").unwrap();
    let expected = db.execute(&query.sql).unwrap();

    let config = ReoptConfig {
        threshold: 8.0,
        mode: ReoptMode::MidQuery,
        ..ReoptConfig::default()
    };
    let report = execute_with_reoptimization(&mut db, &query.sql, &config).unwrap();
    assert_eq!(report.final_rows, expected.rows, "mid-query changed the result");
    assert!(report.reoptimized(), "the skewed keyword join must trigger");

    // At least one completed hash-build side crossed the re-plan, and the final
    // metrics prove it: the virtual table is scanned, producing exactly the reused
    // rows instead of re-executing the subtree behind it.
    let reused_round = report
        .rounds
        .iter()
        .find(|round| round.reused_rows.unwrap_or(0) > 0)
        .expect("a mid-query round reusing build state");
    let virt_name = reused_round.temp_table.clone().unwrap();
    let metrics = report.final_metrics.as_ref().unwrap();
    let mut reused_scan_rows = None;
    metrics.root.walk(&mut |node| {
        if node.metrics.label.contains(&virt_name) {
            reused_scan_rows = Some(node.metrics.actual_rows);
        }
    });
    assert_eq!(
        reused_scan_rows,
        Some(reused_round.reused_rows.unwrap()),
        "final plan must scan the reused state:\n{}",
        metrics.root.render()
    );
    // No virtual tables survive the report.
    assert!(!db.storage().contains_table(&virt_name));
}

#[test]
fn mid_query_reopt_at_four_threads_reuses_a_parallel_built_hash_side() {
    // The same scenario as mid_query_reopt_reuses_hash_build_state_on_a_skewed_job_query,
    // but executed on the morsel-driven parallel engine: the skewed hash-build side is
    // assembled by partitioned parallel workers, the breaker-completion event funnels
    // to the policy, all workers quiesce on the suspension, and the partition-merged
    // build state crosses the re-plan as a virtual leaf.
    let mut db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();
    let query = job_query("10a").unwrap();

    db.set_threads(Some(1));
    let expected = db.execute(&query.sql).unwrap();
    db.set_threads(Some(4));

    let config = ReoptConfig {
        threshold: 8.0,
        mode: ReoptMode::MidQuery,
        ..ReoptConfig::default()
    };
    let report = execute_with_reoptimization(&mut db, &query.sql, &config).unwrap();
    assert_eq!(report.threads, 4);
    assert_eq!(
        report.final_rows, expected.rows,
        "parallel mid-query diverged from single-threaded execution"
    );
    assert!(report.reoptimized(), "the skewed keyword join must trigger");

    let reused_round = report
        .rounds
        .iter()
        .find(|round| round.reused_rows.unwrap_or(0) > 0)
        .expect("a mid-query round reusing a parallel-built hash side");
    let virt_name = reused_round.temp_table.clone().unwrap();
    let metrics = report.final_metrics.as_ref().unwrap();
    let mut reused_scan_rows = None;
    metrics.root.walk(&mut |node| {
        if node.metrics.label.contains(&virt_name) {
            reused_scan_rows = Some(node.metrics.actual_rows);
        }
    });
    assert_eq!(
        reused_scan_rows,
        Some(reused_round.reused_rows.unwrap()),
        "final plan must scan the reused parallel-built state:\n{}",
        metrics.root.render()
    );
    assert!(!db.storage().contains_table(&virt_name));
}

#[test]
fn parallel_execution_matches_single_threaded_across_the_suite_cross_section() {
    // Every ~10th suite query (plus both threads settings sharing one loaded
    // database): the morsel-driven engine must reproduce the single-threaded rows
    // exactly, modulo row order, which is not plan-defined for these aggregates.
    let mut db = imdb_database();
    let sorted = |rows: &[reopt_repro::storage::Row]| -> Vec<String> {
        let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row}")).collect();
        rendered.sort();
        rendered
    };
    let mut compared = 0usize;
    for query in job_queries().iter().step_by(10) {
        if query.table_count > 8 {
            continue;
        }
        db.set_threads(Some(1));
        let reference = db.execute(&query.sql).unwrap();
        db.set_threads(Some(4));
        let parallel = db.execute(&query.sql).unwrap();
        assert_eq!(
            sorted(&parallel.rows),
            sorted(&reference.rows),
            "threads=4 changed the result of {}",
            query.id
        );
        // The flat-memory property survives parallelism: buffered rows stay within a
        // small constant factor of the single-threaded run (worker-partitioned builds
        // buffer the same rows, just spread across partitions).
        assert!(
            parallel.peak_buffered_rows <= reference.peak_buffered_rows.saturating_mul(4).max(64),
            "{}: parallel peak {} vs single-threaded {}",
            query.id,
            parallel.peak_buffered_rows,
            reference.peak_buffered_rows
        );
        compared += 1;
    }
    assert!(compared >= 5, "cross-section too small ({compared} queries)");
}

#[test]
fn index_nl_job_plans_replan_on_progress_signals() {
    // Under the default optimizer configuration the JOB plans at this scale lean on
    // index-nested-loop joins whose inners are base tables: no reusable breaker state
    // exists, so the old breaker-only MidQuery mode never fired here (see the
    // BENCH_MIDQUERY.json setup note). Streaming progress events close that gap: the
    // skewed keyword join overshoots its estimate after a few batches, the pipeline
    // suspends, the observed bound is injected, and the remainder re-plans — with the
    // result still agreeing with plain execution.
    let mut db = imdb_database();
    let query = job_query("10a").unwrap();
    let expected = db.execute(&query.sql).unwrap();

    let config = ReoptConfig {
        threshold: 8.0,
        mode: ReoptMode::MidQuery,
        ..ReoptConfig::default()
    };
    let report = execute_with_reoptimization(&mut db, &query.sql, &config).unwrap();
    assert_eq!(report.final_rows, expected.rows, "mid-query changed the result");
    assert!(
        report.reoptimized(),
        "streaming triggers must fire on index-NL plans:\n{}",
        report.final_sql
    );
    let progress_round = report
        .rounds
        .iter()
        .find(|round| round.trigger == ReoptTrigger::Progress)
        .expect("at least one progress-triggered round");
    assert_eq!(progress_round.kind, ReoptRoundKind::MidQuery);
    assert!(progress_round.corrections >= 1, "the observed bound is injected");
    assert!(report.render().contains("via progress"), "{}", report.render());
}

#[test]
fn feedback_cache_cuts_rounds_on_a_repeated_job_workload() {
    // The cross-query feedback cache: running the same workload twice with feedback
    // on must make the second pass cheaper — the first pass's harvested true
    // cardinalities seed the second pass's initial plans, so fewer (ideally no)
    // violations fire, and the violations that do fire are milder. Results must be
    // identical to plain execution on every query of both passes.
    let mut db = imdb_database();
    let workload = ["1a", "2a", "2d", "6a", "9a", "11a"];
    let expected: Vec<_> = workload
        .iter()
        .map(|id| db.execute(&job_query(id).unwrap().sql).unwrap().rows)
        .collect();
    db.catalog_mut().feedback_mut().clear();

    let config = ReoptConfig {
        threshold: 8.0,
        mode: ReoptMode::Materialize,
        feedback: true,
        ..ReoptConfig::default()
    };
    let run_pass = |db: &mut Database| -> (usize, f64) {
        let mut rounds = 0usize;
        let mut q_errors: Vec<f64> = Vec::new();
        for (id, want) in workload.iter().zip(&expected) {
            let query = job_query(id).unwrap();
            let report = execute_with_reoptimization(db, &query.sql, &config)
                .unwrap_or_else(|e| panic!("feedback run of {id} failed: {e}"));
            assert_eq!(&report.final_rows, want, "{id}: feedback changed the result");
            rounds += report.rounds.len();
            q_errors.extend(report.rounds.iter().map(|round| round.q_error));
        }
        // Median violation q-error of the pass; 1.0 (no error) when nothing fired.
        q_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if q_errors.is_empty() {
            1.0
        } else {
            q_errors[q_errors.len() / 2]
        };
        (rounds, median)
    };

    let (rounds_1, median_1) = run_pass(&mut db);
    assert!(rounds_1 > 0, "the first pass must hit violations to learn from");
    let (rounds_2, median_2) = run_pass(&mut db);
    assert!(
        rounds_2 < rounds_1,
        "the seeded pass must need fewer rounds ({rounds_2} vs {rounds_1})"
    );
    assert!(
        median_2 <= median_1,
        "the seeded pass's violations must be no worse ({median_2} vs {median_1})"
    );
}

#[test]
fn perfect_oracle_eliminates_large_estimation_errors() {
    let mut db = imdb_database();
    let query = job_query("2d").unwrap();
    let statement = parse_sql(&query.sql).unwrap();
    let select = statement.query().unwrap().clone();

    // Default run: record the worst join q-error.
    let default_output = db.execute_select(&select).unwrap();
    let worst_default = default_output
        .metrics
        .as_ref()
        .unwrap()
        .root
        .joins_bottom_up()
        .iter()
        .map(|j| j.q_error())
        .fold(1.0f64, f64::max);

    // Perfect run: every join estimate must be (essentially) exact.
    let mut oracle = PerfectOracle::new();
    let overrides = oracle.overrides_for(&mut db, &select, 17, "2d").unwrap();
    db.set_overrides(overrides);
    let perfect_output = db.execute_select(&select).unwrap();
    db.clear_overrides();
    let worst_perfect = perfect_output
        .metrics
        .as_ref()
        .unwrap()
        .root
        .joins_bottom_up()
        .iter()
        .map(|j| j.q_error())
        .fold(1.0f64, f64::max);

    assert!(
        worst_perfect < 1.5,
        "perfect estimates still show q-error {worst_perfect}"
    );
    assert!(
        worst_default >= worst_perfect,
        "default ({worst_default}) should not beat perfect ({worst_perfect})"
    );
    assert_eq!(perfect_output.rows, default_output.rows);
}

#[test]
fn nasdaq_example_shows_underestimation_and_reopt_fixes_the_plan() {
    let mut db = Database::new();
    load_nasdaq(&mut db, &NasdaqConfig::tiny()).unwrap();
    let output = db.execute(APPL_QUERY).unwrap();
    let actual = output.rows[0].value(0).as_int().unwrap() as f64;
    let estimate = output.plan.as_ref().unwrap().children[0].estimated_rows;
    assert!(q_error(estimate, actual) > 4.0, "expected a large estimation error");

    let report =
        execute_with_reoptimization(&mut db, APPL_QUERY, &ReoptConfig::with_threshold(4.0))
            .unwrap();
    assert!(report.reoptimized());
    assert_eq!(report.final_rows, output.rows);
}

#[test]
fn selective_improvement_converges_on_a_job_query() {
    let mut db = imdb_database();
    let query = job_query("2a").unwrap();
    let iterations = reopt_repro::core::selective_improvement(
        &mut db,
        &query.sql,
        &SelectiveConfig {
            threshold: 8.0,
            max_iterations: 24,
        },
    )
    .unwrap();
    assert!(!iterations.is_empty());
    let last = iterations.last().unwrap();
    assert!(
        last.corrected.is_none() || iterations.len() == 24,
        "simulation should converge or hit the cap"
    );
}

#[test]
fn explain_analyze_reports_estimates_and_actuals_for_job() {
    let mut db = imdb_database();
    let query = job_query("3a").unwrap();
    let text = db.explain_analyze(&query.sql).unwrap();
    assert!(text.contains("actual rows="));
    assert!(text.contains("q-error="));
    assert!(text.contains("Execution Time"));
}

/// Serializes the tests below that assert on the process-global
/// [`live_spill_files`] counter — concurrent spilling tests in the same binary
/// would otherwise observe each other's in-flight files.
static SPILL_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn spill_serial() -> std::sync::MutexGuard<'static, ()> {
    SPILL_SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn large_job_families_spill_under_a_finite_budget_and_stay_row_identical() {
    // Families 20 (14 tables) and 21 (17 tables) were the last hold-outs kept
    // behind `REOPT_MAX_TABLES`-style caps: their build sides dwarf any fixed
    // memory budget at scale. Under the governor the same greedy plans now run
    // out of core — grace-hash partitioned builds and external sorts — and must
    // return exactly the rows of the unlimited in-memory run.
    let _serial = spill_serial();
    let mut db = Database::new();
    // Scale 0.01: hash-only plans pay the full join fan-out (no index shortcuts),
    // and family 21's 17-table graph is super-linear in scale — 0.02 costs minutes
    // here while 0.01 still builds multi-megabyte hash sides worth spilling.
    load_imdb(&mut db, &ImdbConfig { scale: 0.01, seed: 9 }).unwrap();
    // Hash joins only: the default greedy plans favour index-nested-loop joins at
    // this scale, which buffer almost nothing — the out-of-core path needs real
    // build sides to govern.
    let plan_hash_greedy = |db: &Database, query: &JobQuery| {
        let statement = parse_sql(&query.sql).unwrap();
        let select = statement.query().unwrap().clone();
        Optimizer::new(OptimizerConfig {
            greedy_threshold: 8,
            enable_index_scans: false,
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..Default::default()
        })
        .plan_select(&select, db.storage(), db.catalog(), &CardinalityOverrides::new())
        .unwrap_or_else(|e| panic!("query {} failed to plan: {e}", query.id))
    };
    for id in ["20a", "21a"] {
        let query = job_query(id).unwrap();
        let planned = plan_hash_greedy(&db, &query);
        let unlimited = execute_plan(&planned.plan, db.storage())
            .unwrap_or_else(|e| panic!("query {id} failed unlimited: {e}"));
        assert!(unlimited.peak_buffered_bytes > 0, "{id}: breakers must buffer");

        // A budget below half the unlimited footprint cannot hold the largest
        // build side in memory, so at least one breaker must go to disk.
        let budget = unlimited.peak_buffered_bytes / 2;
        let governor = std::sync::Arc::new(MemoryGovernor::new(Some(budget)));
        let constrained = Executor::new(db.storage())
            .with_governor(std::sync::Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap_or_else(|e| panic!("query {id} failed under budget {budget}: {e}"));
        assert_eq!(
            constrained.rows, unlimited.rows,
            "{id}: out-of-core execution diverged from the in-memory run"
        );
        let (spilled_bytes, spill_partitions) = constrained.metrics.root.total_spilled();
        assert!(
            spilled_bytes > 0 && spill_partitions > 0,
            "{id}: budget {budget} below peak {} must force a spill",
            unlimited.peak_buffered_bytes
        );
        assert!(governor.denials() > 0, "{id}: the governor must deny a grant");
        assert_eq!(
            reopt_repro::storage::live_spill_files(),
            0,
            "{id}: every spill file must be deleted when the pipeline drops"
        );
    }
}

#[test]
fn memory_pressure_replans_instead_of_spilling_on_a_skewed_job_query() {
    // The tentpole's decision point: when a breaker's grant is denied, the
    // governor surfaces `ExecEvent::MemoryPressure` through the observer *before*
    // the spill commits. A mid-query policy can therefore suspend and re-plan the
    // remainder with the buffered count as a lower bound — trading a re-planning
    // round for the disk I/O a plain run pays. The threshold is set beyond reach
    // so memory pressure is the *only* signal that can trigger a round.
    let _serial = spill_serial();
    let mut db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 9 }).unwrap();
    db.set_threads(Some(1));
    let query = job_query("10a").unwrap();

    // Unlimited reference: the rows every constrained run must reproduce, and
    // the footprint the budget must undercut.
    let unlimited = db.execute(&query.sql).unwrap();
    assert!(unlimited.peak_buffered_bytes > 0);
    let budget = unlimited.peak_buffered_bytes / 2;
    db.set_mem_budget(Some(budget));
    assert_eq!(db.mem_budget(), Some(budget));

    // A plain (no-reopt) run under the budget pays for the whole spill.
    let plain = db.execute(&query.sql).unwrap();
    assert_eq!(plain.rows, unlimited.rows, "plain spilling run diverged");
    let (plain_spilled, plain_partitions) =
        plain.metrics.as_ref().unwrap().root.total_spilled();
    assert!(
        plain_spilled > 0 && plain_partitions > 0,
        "budget {budget} below peak {} must force the plain run to spill",
        unlimited.peak_buffered_bytes
    );

    // Same query, same budget, mid-query policy: the memory-pressure suspension
    // re-plans the remainder instead, and the final rounds spill strictly less.
    let config = ReoptConfig {
        threshold: 1e9,
        mode: ReoptMode::MidQuery,
        feedback: false,
        ..ReoptConfig::default()
    };
    let report = execute_with_reoptimization(&mut db, &query.sql, &config).unwrap();
    assert_eq!(report.final_rows, unlimited.rows, "re-planned run diverged");
    assert!(
        report
            .rounds
            .iter()
            .any(|round| round.trigger == ReoptTrigger::MemoryPressure),
        "a round must be triggered by memory pressure, got: {}",
        report.render()
    );
    assert!(
        report.spilled_bytes < plain_spilled,
        "re-planning must spill strictly less than the plain run ({} vs {plain_spilled})",
        report.spilled_bytes
    );
    assert!(report.render().contains("memory-pressure"));
    assert_eq!(
        reopt_repro::storage::live_spill_files(),
        0,
        "every spill file must be deleted after the report completes"
    );
    db.set_mem_budget(None);
}

#[test]
fn unlimited_budget_keeps_reports_spill_free_across_policies_and_threads() {
    // The default (unlimited) governor must be invisible: no spill accounting in
    // reports, no "spilled" line in the rendering, and rows identical to plain
    // execution — at one thread and four, under every built-in policy.
    let mut db = imdb_database();
    let query = job_query("6a").unwrap();
    for threads in [1usize, 4] {
        db.set_threads(Some(threads));
        let plain = db.execute(&query.sql).unwrap();
        assert_eq!(
            plain.metrics.as_ref().unwrap().root.total_spilled(),
            (0, 0),
            "threads {threads}: plain unlimited run must not spill"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
            let config = ReoptConfig {
                threshold: 8.0,
                mode,
                feedback: false,
                ..ReoptConfig::default()
            };
            let report = execute_with_reoptimization(&mut db, &query.sql, &config).unwrap();
            assert_eq!(report.final_rows, plain.rows, "threads {threads} {mode:?}");
            assert_eq!(report.spilled_bytes, 0, "threads {threads} {mode:?}");
            assert_eq!(report.spill_partitions, 0, "threads {threads} {mode:?}");
            assert!(
                !report.render().contains("spilled"),
                "threads {threads} {mode:?}: unlimited reports must render byte-identically"
            );
        }
    }
}
