//! The deep dives of Section IV-D of the paper: queries 6d and 18a (their analogues 2d
//! and 7a in this suite). Prints the join graphs (Figures 3 and 4), the default plan
//! with estimated vs. actual cardinalities, and how the picture changes under
//! perfect-(2), perfect-(4) and fully perfect estimates.
//!
//! ```text
//! cargo run --release --example job_deep_dive
//! ```

use reopt_repro::core::{Database, PerfectOracle};
use reopt_repro::planner::{bind_select, JoinGraph};
use reopt_repro::sql::parse_sql;
use reopt_repro::workload::job::job_query;
use reopt_repro::workload::{load_imdb, ImdbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.1, seed: 42 })?;
    let mut oracle = PerfectOracle::new();

    for (id, paper_id) in [("2d", "6d"), ("7a", "18a")] {
        let query = job_query(id).expect("suite query exists");
        println!("================ query {id} (paper query {paper_id}) ================");
        println!("{}\n", query.sql.trim());

        // The join graph (Figures 3 / 4).
        let statement = parse_sql(&query.sql)?;
        let select = statement.query().expect("SELECT").clone();
        let spec = bind_select(&select, db.storage())?;
        let graph = JoinGraph::new(&spec);
        println!("join graph:\n{}", graph.to_ascii(&spec));

        // Default plan with estimated vs. actual cardinalities.
        println!("EXPLAIN ANALYZE (default estimator):");
        println!("{}", db.explain_analyze(&query.sql)?);

        // How much do perfect-(n) estimates change the picture?
        for n in [0usize, 2, 4, 17] {
            let overrides = oracle.overrides_for(&mut db, &select, n, id)?;
            db.set_overrides(overrides);
            let output = db.execute_select(&select)?;
            db.clear_overrides();
            println!(
                "perfect-({n:<2}): execution {:>9.3} ms, planning {:>8.3} ms, plan depth {}",
                output.execution_time.as_secs_f64() * 1e3,
                output.planning_time.as_secs_f64() * 1e3,
                output.plan.as_ref().map(|p| p.depth()).unwrap_or(0)
            );
        }
        println!();
    }
    Ok(())
}
