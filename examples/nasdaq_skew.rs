//! The Nasdaq example of Section IV-C of the paper (Tables IV and V): a handful of
//! symbols carry half the trading volume, so the uniformity assumption on the join key
//! underestimates `company ⋈ trades` for `symbol = 'APPL'` by orders of magnitude —
//! and re-optimization notices and fixes it at runtime.
//!
//! ```text
//! cargo run --release --example nasdaq_skew
//! ```

use reopt_repro::core::{execute_with_reoptimization, q_error, Database, ReoptConfig};
use reopt_repro::workload::{load_nasdaq, NasdaqConfig, APPL_QUERY};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    load_nasdaq(&mut db, &NasdaqConfig::default())?;
    println!(
        "loaded {} companies and {} trades",
        db.storage().table("company")?.row_count(),
        db.storage().table("trades")?.row_count()
    );

    // How wrong is the default estimate?
    let output = db.execute(APPL_QUERY)?;
    let actual = output.rows[0].value(0).as_int().unwrap() as f64;
    let plan = output.plan.as_ref().expect("plan available");
    let estimate = plan.children[0].estimated_rows;
    println!("\n{}", db.explain(APPL_QUERY)?);
    println!(
        "true APPL trades: {actual:.0}, optimizer estimate: {estimate:.0}, q-error: {:.1}",
        q_error(estimate, actual)
    );

    // Re-optimization detects the error at the first join and recovers.
    let report = execute_with_reoptimization(&mut db, APPL_QUERY, &ReoptConfig::with_threshold(8.0))?;
    println!("\nre-optimization rounds: {}", report.rounds.len());
    for round in &report.rounds {
        println!(
            "  [{}] estimated {:.0} vs actual {} (q-error {:.1})",
            round.materialized_aliases.join(", "),
            round.estimated_rows,
            round.actual_rows,
            round.q_error
        );
    }
    println!(
        "plain execution: {:.3} ms, re-optimized execution: {:.3} ms (includes materialization)",
        output.execution_time.as_secs_f64() * 1e3,
        report.execution_time.as_secs_f64() * 1e3
    );
    assert_eq!(report.final_rows, output.rows);
    Ok(())
}
