//! Quickstart: build a tiny database, run a query, look at EXPLAIN ANALYZE, and run the
//! same query under mid-query re-optimization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reopt_repro::core::{execute_with_reoptimization, Database, ReoptConfig};
use reopt_repro::storage::{Column, DataType, IndexKind, Row, Schema, Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();

    // 1. Create two tables: a small dimension and a skewed fact table.
    let mut authors = Table::new(
        "authors",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
        ]),
    );
    for i in 0..500i64 {
        authors.push_row(Row::from_values(vec![
            Value::Int(i),
            Value::from(format!("Author {i:03}")),
        ]))?;
    }

    let mut posts = Table::new(
        "posts",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("author_id", DataType::Int),
            Column::new("score", DataType::Int),
        ]),
    );
    // Author 7 writes half of all posts — the kind of skew that defeats the uniformity
    // assumption on the join key.
    for i in 0..20_000i64 {
        let author_id = if i % 2 == 0 { 7 } else { i % 500 };
        posts.push_row(Row::from_values(vec![
            Value::Int(i),
            Value::Int(author_id),
            Value::Int(i % 100),
        ]))?;
    }

    db.create_table(authors)?;
    db.create_table(posts)?;
    db.create_index("authors", "id", IndexKind::BTree)?;
    db.create_index("posts", "author_id", IndexKind::Hash)?;
    db.analyze_all()?;

    // 2. A query whose join cardinality the optimizer underestimates.
    let sql = "SELECT count(*) AS posts_by_author_7
               FROM authors AS a, posts AS p
               WHERE a.id = p.author_id AND a.name = 'Author 007'";

    println!("== EXPLAIN ==\n{}", db.explain(sql)?);
    println!("== EXPLAIN ANALYZE ==\n{}", db.explain_analyze(sql)?);

    // 3. The same query under the paper's re-optimization scheme.
    let report = execute_with_reoptimization(&mut db, sql, &ReoptConfig::default())?;
    println!("== re-optimization ==");
    println!("rounds triggered: {}", report.rounds.len());
    for round in &report.rounds {
        println!(
            "  materialized [{}]: estimated {:.0} rows, actual {} rows (q-error {:.1})",
            round.materialized_aliases.join(", "),
            round.estimated_rows,
            round.actual_rows,
            round.q_error
        );
    }
    println!("final script:\n{}", report.final_sql);
    println!(
        "result: {} | planning {:.3} ms | execution {:.3} ms",
        report.final_rows[0].value(0),
        report.planning_time.as_secs_f64() * 1e3,
        report.execution_time.as_secs_f64() * 1e3
    );
    Ok(())
}
