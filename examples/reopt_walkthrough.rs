//! A walkthrough of the re-optimization rewrite (Figure 6 of the paper): take a JOB-style
//! query whose lowest join is badly under-estimated, show the original SQL, the
//! `CREATE TEMP TABLE` + rewritten `SELECT` script the controller produced, and compare
//! the end-to-end timings of the default plan, the re-optimized run and the
//! perfect-estimate plan. Also contrasts the materialize mode with the inject-only
//! ablation.
//!
//! ```text
//! cargo run --release --example reopt_walkthrough
//! ```

use reopt_repro::core::{
    execute_with_reoptimization, q_error, Database, PerfectOracle, PolicyContext, PolicyDecision,
    ReoptConfig, ReoptMode, ReoptPolicy, ReoptTrigger, Violation,
};
use reopt_repro::executor::ExecEvent;
use reopt_repro::sql::parse_sql;
use reopt_repro::workload::job::job_query;
use reopt_repro::workload::{load_imdb, ImdbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    load_imdb(&mut db, &ImdbConfig { scale: 0.1, seed: 42 })?;

    // Family 2 variant b filters on 'character-name-in-title' and a name prefix — the
    // same shape as the paper's Figure 6 example.
    let query = job_query("2b").expect("suite query exists");
    println!("---- original query ----\n{}\n", query.sql.trim());

    // Default execution.
    let default_output = db.execute(&query.sql)?;
    println!(
        "default estimator: planning {:.3} ms, execution {:.3} ms",
        default_output.planning_time.as_secs_f64() * 1e3,
        default_output.execution_time.as_secs_f64() * 1e3
    );

    // Re-optimization, materialize mode (the paper's simulation).
    let config = ReoptConfig::with_threshold(32.0);
    let report = execute_with_reoptimization(&mut db, &query.sql, &config)?;
    println!("\n---- re-optimized script (threshold 32) ----\n{}", report.final_sql);
    for (idx, round) in report.rounds.iter().enumerate() {
        println!(
            "round {}: [{}] estimated {:.0} vs actual {} rows (q-error {:.1}), materialization {:.3} ms",
            idx + 1,
            round.materialized_aliases.join(", "),
            round.estimated_rows,
            round.actual_rows,
            round.q_error,
            round.materialization_time.as_secs_f64() * 1e3
        );
    }
    println!(
        "re-optimized: planning {:.3} ms, execution {:.3} ms (detection runs excluded: {:.3} ms)",
        report.planning_time.as_secs_f64() * 1e3,
        report.execution_time.as_secs_f64() * 1e3,
        report.detection_time.as_secs_f64() * 1e3
    );

    // Inject-only ablation: re-plan with the observed cardinality, no materialization.
    let inject = execute_with_reoptimization(
        &mut db,
        &query.sql,
        &ReoptConfig {
            mode: ReoptMode::InjectOnly,
            ..ReoptConfig::with_threshold(32.0)
        },
    )?;
    println!(
        "inject-only ablation: planning {:.3} ms, execution {:.3} ms ({} re-planning rounds)",
        inject.planning_time.as_secs_f64() * 1e3,
        inject.execution_time.as_secs_f64() * 1e3,
        inject.rounds.len()
    );

    // Perfect estimates as the upper bound.
    let statement = parse_sql(&query.sql)?;
    let select = statement.query().expect("SELECT").clone();
    let mut oracle = PerfectOracle::new();
    let overrides = oracle.overrides_for(&mut db, &select, 17, "2b")?;
    db.set_overrides(overrides);
    let perfect_output = db.execute_select(&select)?;
    db.clear_overrides();
    println!(
        "perfect estimates: planning {:.3} ms, execution {:.3} ms",
        perfect_output.planning_time.as_secs_f64() * 1e3,
        perfect_output.execution_time.as_secs_f64() * 1e3
    );

    // The modes above are thin constructors over the pluggable policy API; the same
    // query can run under a hand-written `ReoptPolicy`. This one re-plans mid-flight
    // on the very first executor event — breaker completion or streaming progress
    // report — that proves an estimate wrong by more than 16x.
    struct FirstViolation;
    impl ReoptPolicy for FirstViolation {
        fn name(&self) -> &str {
            "first-violation"
        }
        fn wants_events(&self) -> bool {
            true
        }
        fn on_event(&mut self, event: &ExecEvent, ctx: &PolicyContext) -> PolicyDecision {
            let rel_set = event.rel_set();
            let observed = event.observed_rows();
            let proven_underestimate = observed as f64 > 16.0 * event.estimated_rows().max(1.0);
            if !rel_set.is_empty()
                && rel_set.is_proper_subset_of(ctx.all_relations)
                && (proven_underestimate
                    || (event.is_exact() && q_error(event.estimated_rows(), observed as f64) > 16.0))
            {
                PolicyDecision::ReplanMidQuery {
                    violation: Violation {
                        rel_set,
                        estimated_rows: event.estimated_rows(),
                        actual_rows: observed,
                        trigger: if matches!(event, ExecEvent::Progress(_)) {
                            ReoptTrigger::Progress
                        } else {
                            ReoptTrigger::BreakerComplete
                        },
                    },
                }
            } else {
                PolicyDecision::Continue
            }
        }
        fn on_complete(
            &mut self,
            _: &reopt_repro::executor::QueryMetrics,
            _: &reopt_repro::planner::QuerySpec,
            _: &PolicyContext,
        ) -> PolicyDecision {
            PolicyDecision::Continue
        }
    }
    let custom = db.execute_with_policy(&query.sql, &mut FirstViolation)?;
    println!("\n---- custom policy ({}) ----\n{}", custom.policy, custom.render());

    assert_eq!(report.final_rows, default_output.rows);
    assert_eq!(inject.final_rows, default_output.rows);
    assert_eq!(perfect_output.rows, default_output.rows);
    assert_eq!(custom.final_rows, default_output.rows);
    println!("all five strategies returned identical results");
    Ok(())
}
