//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! See `shims/README.md`. The generator is xoshiro256++ seeded via SplitMix64:
//! deterministic for a fixed seed, statistically fine for workload generation
//! and ANALYZE row sampling, and dependency-free. The value stream differs
//! from the real `rand` crate.

use std::ops::Range;

/// Core source of randomness (shim of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding (shim of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform u64 in `[0, bound)` without modulo bias (Lemire's method would be
/// overkill here; rejection sampling keeps it exact).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {:?}..{:?}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty f64 range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// User-facing random-value methods (shim of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        f64::sample_range(self, 0.0..1.0) < p
    }

    /// Only `f64` (uniform in `[0, 1)`) and the integer primitives are supported.
    fn gen<T: Generatable>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Generatable {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generatable for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_range(rng, 0.0..1.0)
    }
}

impl Generatable for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generatable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Shim of `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::{Rng, RngCore};

        /// Shim of `rand::seq::index::IndexVec`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly at
        /// random, in sampling order (shim of `rand::seq::index::sample`).
        ///
        /// Partial Fisher–Yates: O(length) memory, O(amount) swaps. The
        /// call sites sample row ids from in-memory tables, so the O(length)
        /// scratch allocation is dwarfed by the table itself.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a population of {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
                picked.push(pool[i]);
            }
            IndexVec(picked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(3..4);
            assert_eq!(u, 3);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sample_yields_distinct_in_range_indices() {
        let mut rng = StdRng::seed_from_u64(13);
        let ids = sample(&mut rng, 1_000, 100).into_vec();
        assert_eq!(ids.len(), 100);
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 100);
        assert!(ids.iter().all(|&i| i < 1_000));
    }

    #[test]
    fn sample_full_population_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut ids = sample(&mut rng, 50, 50).into_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Each of 100 indices should be picked ~500 times over 5 000 draws of 10.
        let mut counts = [0usize; 100];
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5_000 {
            for id in sample(&mut rng, 100, 10) {
                counts[id] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((300..700).contains(&c), "index {i} drawn {c} times");
        }
    }
}
