//! Offline shim for the subset of the `criterion` API used by this workspace.
//!
//! See `shims/README.md`. Benches compile unchanged against it; running them
//! performs a warm-up pass plus a fixed-budget timing loop and prints the
//! mean wall-clock time per iteration — enough for coarse regression checks,
//! without criterion's statistical machinery or report output.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Shim of `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Shim of `criterion::Bencher`: runs the closure under a timing loop.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and a rough per-iteration estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let per_iter = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Fit the measured iterations into a ~1s budget.
        let budget = Duration::from_secs(1);
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, self.iters as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.iters = iters;
        self.mean = start.elapsed() / iters as u32;
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.iter(routine)
    }
}

/// Shim of `criterion::BenchmarkGroup` (measurement type erased).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size;
        self.criterion.run_one(&full, samples, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Shim of `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Shim of `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().to_string();
        let samples = self.default_sample_size;
        self.run_one(&id, samples, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n as u64;
        self
    }

    /// Final-summary hook emitted by `criterion_main!`; a no-op in the shim.
    pub fn final_summary(&mut self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: u64, mut f: F) {
        let mut bencher = Bencher {
            iters: sample_size.max(1),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "{id:<60} {:>12.3} µs/iter ({} iters)",
            bencher.mean.as_nanos() as f64 / 1_000.0,
            bencher.iters
        );
    }
}

/// Shim of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_and_records_mean() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.sample_size(5).bench_function("shim_smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 2, "warm-up plus at least one measured iteration");
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
