//! # reopt-bench
//!
//! The experiment harness: one module per table and figure of the paper, plus a shared
//! [`Harness`] that loads the synthetic IMDB database, runs the JOB-style suite under a
//! configuration (default estimator, perfect-(n), re-optimization at a threshold) and
//! returns per-query timings.
//!
//! Run everything with
//!
//! ```text
//! cargo run --release -p reopt-bench --bin experiments -- all
//! ```
//!
//! Environment variables: `REOPT_SCALE` (default 0.05), `REOPT_QUERY_STRIDE`
//! (default 3: run every third query for the execution-heavy experiments; set to 1 for
//! the full suite), `REOPT_THRESHOLD` (default 32), and `REOPT_MAX_TABLES` (default
//! unlimited: cap the per-query relation count — the perfect-(n) oracle computes a true
//! COUNT(*) for every connected relation subset, which is combinatorially explosive on
//! the 14- and 17-table families even though the pipelined executor runs each count in
//! bounded memory).

pub mod experiments;

use reopt_core::{
    execute_with_reoptimization, Database, DbError, PerfectOracle, QueryRun, ReoptConfig,
    WorkloadRun,
};
use reopt_workload::{job_queries, load_imdb, ImdbConfig, JobQuery};
use std::time::Duration;

// Re-export for the experiment modules and the binary.
pub use reopt_core::reopt::execute_with_reoptimization as run_reoptimized_query;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// IMDB generator scale factor.
    pub scale: f64,
    /// Run every `stride`-th query of the suite (1 = all 113).
    pub stride: usize,
    /// Q-error threshold for re-optimization runs.
    pub threshold: f64,
    /// RNG seed for the generator.
    pub seed: u64,
    /// Only run queries joining at most this many relations (`usize::MAX` = all).
    pub max_tables: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.05,
            stride: 3,
            threshold: 32.0,
            seed: 42,
            max_tables: usize::MAX,
        }
    }
}

impl HarnessConfig {
    /// Read the configuration from the environment (`REOPT_SCALE`, `REOPT_QUERY_STRIDE`,
    /// `REOPT_THRESHOLD`), falling back to the defaults.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(scale) = std::env::var("REOPT_SCALE") {
            if let Ok(scale) = scale.parse() {
                config.scale = scale;
            }
        }
        if let Ok(stride) = std::env::var("REOPT_QUERY_STRIDE") {
            if let Ok(stride) = stride.parse() {
                config.stride = std::cmp::max(1, stride);
            }
        }
        if let Ok(threshold) = std::env::var("REOPT_THRESHOLD") {
            if let Ok(threshold) = threshold.parse() {
                config.threshold = threshold;
            }
        }
        if let Ok(max_tables) = std::env::var("REOPT_MAX_TABLES") {
            if let Ok(max_tables) = max_tables.parse() {
                config.max_tables = std::cmp::max(2, max_tables);
            }
        }
        config
    }
}

/// The shared experiment harness: a loaded database, the query suite and a memoized
/// perfect-cardinality oracle.
pub struct Harness {
    /// The database with the synthetic IMDB data loaded and analyzed.
    pub db: Database,
    /// The full 113-query suite.
    pub queries: Vec<JobQuery>,
    /// The perfect-(n) oracle (cross-run memo of true cardinalities).
    pub oracle: PerfectOracle,
    /// The configuration.
    pub config: HarnessConfig,
}

impl Harness {
    /// Build a harness: generate the data, build indexes, ANALYZE.
    pub fn new(config: HarnessConfig) -> Result<Self, DbError> {
        let mut db = Database::new();
        load_imdb(
            &mut db,
            &ImdbConfig {
                scale: config.scale,
                seed: config.seed,
            },
        )?;
        Ok(Self {
            db,
            queries: job_queries(),
            oracle: PerfectOracle::new(),
            config,
        })
    }

    /// The queries selected by the configured stride and relation-count cap.
    pub fn selected_queries(&self) -> Vec<JobQuery> {
        self.queries
            .iter()
            .enumerate()
            .filter(|(idx, q)| {
                idx % self.config.stride == 0 && q.table_count <= self.config.max_tables
            })
            .map(|(_, q)| q.clone())
            .collect()
    }

    /// Run the selected queries with the default (PostgreSQL-style) estimator.
    pub fn run_default(&mut self) -> Result<WorkloadRun, DbError> {
        self.run_perfect(0, "PostgreSQL-style")
    }

    /// Run the selected queries with perfect-(n) cardinalities injected.
    pub fn run_perfect(&mut self, n: usize, label: &str) -> Result<WorkloadRun, DbError> {
        let mut run = WorkloadRun::new(label);
        for query in self.selected_queries() {
            run.queries.push(self.run_query_perfect(&query, n)?);
        }
        Ok(run)
    }

    /// Run one query with perfect-(n) cardinalities injected.
    pub fn run_query_perfect(&mut self, query: &JobQuery, n: usize) -> Result<QueryRun, DbError> {
        let statement = reopt_sql::parse_sql(&query.sql).map_err(DbError::Parse)?;
        let select = statement.query().expect("suite queries are SELECTs").clone();
        let overrides = self
            .oracle
            .overrides_for(&mut self.db, &select, n, &query.id)?;
        self.db.set_overrides(overrides);
        let output = self.db.execute_select(&select);
        self.db.clear_overrides();
        let output = output?;
        Ok(QueryRun {
            query_id: query.id.clone(),
            planning: output.planning_time,
            execution: output.execution_time,
            output_rows: output.row_count(),
        })
    }

    /// Run the selected queries under the re-optimization scheme at a threshold.
    pub fn run_reoptimized(&mut self, threshold: f64, label: &str) -> Result<WorkloadRun, DbError> {
        let mut run = WorkloadRun::new(label);
        for query in self.selected_queries() {
            run.queries.push(self.run_query_reoptimized(&query, threshold)?);
        }
        Ok(run)
    }

    /// Run one query under re-optimization.
    pub fn run_query_reoptimized(
        &mut self,
        query: &JobQuery,
        threshold: f64,
    ) -> Result<QueryRun, DbError> {
        let config = ReoptConfig::with_threshold(threshold);
        let report = execute_with_reoptimization(&mut self.db, &query.sql, &config)?;
        Ok(QueryRun {
            query_id: query.id.clone(),
            planning: report.planning_time,
            execution: report.execution_time,
            output_rows: report.final_rows.len(),
        })
    }

    /// Run the selected queries with perfect-(n) *plus* re-optimization (Figure 8).
    pub fn run_perfect_with_reopt(
        &mut self,
        n: usize,
        threshold: f64,
        label: &str,
    ) -> Result<WorkloadRun, DbError> {
        let mut run = WorkloadRun::new(label);
        for query in self.selected_queries() {
            let statement = reopt_sql::parse_sql(&query.sql).map_err(DbError::Parse)?;
            let select = statement.query().expect("suite queries are SELECTs").clone();
            let overrides = self
                .oracle
                .overrides_for(&mut self.db, &select, n, &query.id)?;
            self.db.set_overrides(overrides);
            let config = ReoptConfig::with_threshold(threshold);
            let report = execute_with_reoptimization(&mut self.db, &query.sql, &config);
            self.db.clear_overrides();
            let report = report?;
            run.queries.push(QueryRun {
                query_id: query.id.clone(),
                planning: report.planning_time,
                execution: report.execution_time,
                output_rows: report.final_rows.len(),
            });
        }
        Ok(run)
    }
}

/// Format a duration as fractional seconds for the experiment tables.
pub fn secs(duration: Duration) -> f64 {
    duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness::new(HarnessConfig {
            scale: 0.02,
            stride: 23,
            threshold: 32.0,
            seed: 3,
            ..HarnessConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn harness_runs_default_and_reoptimized() {
        let mut harness = tiny_harness();
        let selected = harness.selected_queries();
        assert!(!selected.is_empty() && selected.len() < 113);
        let default_run = harness.run_default().unwrap();
        assert_eq!(default_run.queries.len(), selected.len());
        let reopt_run = harness.run_reoptimized(32.0, "Re-optimized").unwrap();
        assert_eq!(reopt_run.queries.len(), selected.len());
        // Result cardinalities must agree between the two modes.
        for (a, b) in default_run.queries.iter().zip(&reopt_run.queries) {
            assert_eq!(a.query_id, b.query_id);
            assert_eq!(a.output_rows, b.output_rows);
        }
    }

    #[test]
    fn perfect_runs_share_the_oracle_cache() {
        let mut harness = tiny_harness();
        let _ = harness.run_perfect(2, "Perfect-(2)").unwrap();
        let size_after_two = harness.oracle.cache_size();
        assert!(size_after_two > 0);
        let _ = harness.run_perfect(1, "Perfect-(1)").unwrap();
        // Perfect-(1) needs a subset of what perfect-(2) already computed.
        assert_eq!(harness.oracle.cache_size(), size_after_two);
    }

    #[test]
    fn config_from_env_defaults() {
        let config = HarnessConfig::default();
        assert_eq!(config.stride, 3);
        assert!(secs(Duration::from_millis(1500)) > 1.0);
    }
}
