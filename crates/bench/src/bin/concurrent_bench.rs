//! Multi-client server benchmark: N concurrent sessions × a JOB query mix over
//! one shared database and the process-wide resident worker pool.
//!
//! Three phases, in order:
//!
//! 1. **Sequential reference** — every mix query runs single-threaded; its sorted
//!    rows become the identity oracle for everything after.
//! 2. **Client sweep** — for each client count in the sweep, N threads each open
//!    a [`Session`](reopt_core::Session) and walk the mix (offset-rotated so
//!    distinct queries overlap) for a fixed number of passes, recording per-query
//!    wall latencies. Every result is checked against the reference; any
//!    divergence fails the run (this is the CI row-identity gate).
//! 3. **Mid-query isolation** — one session re-optimizes a skewed query mid-query
//!    while a background session loops an unrelated query on the same pool; the
//!    run must correct the skewed plan *and* the background session must keep
//!    completing with identical rows.
//!
//! The tail-latency distributions land in `BENCH_SERVER.json` (schema in
//! `docs/benchmarks.md`). Knobs: `REOPT_SCALE` (default 0.02), `REOPT_THREADS`
//! (pool size, default 2), `REOPT_BENCH_CLIENTS` (comma-separated sweep, default
//! `1,2,4,8`), `REOPT_BENCH_PASSES` (mix passes per client, default 3).
//!
//! ```text
//! cargo run --release -p reopt-bench --bin concurrent_bench
//! ```

use reopt_core::{execute_with_reoptimization, Database, ReoptConfig, ReoptMode};
use reopt_planner::OptimizerConfig;
use reopt_storage::Row;
use reopt_workload::{job_queries, job_query, load_imdb, ImdbConfig, JobQuery};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn client_sweep() -> Vec<usize> {
    std::env::var("REOPT_BENCH_CLIENTS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|sweep: &Vec<usize>| !sweep.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn sorted(rows: &[Row]) -> Vec<String> {
    let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row}")).collect();
    rendered.sort();
    rendered
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One variant per JOB family with at most 8 tables: varied operator shapes,
/// small enough that a sweep pass stays in milliseconds.
fn query_mix() -> Vec<JobQuery> {
    let mut seen = HashSet::new();
    job_queries()
        .into_iter()
        .filter(|q| q.table_count <= 8 && seen.insert(q.family))
        .collect()
}

struct SweepPoint {
    clients: usize,
    total_queries: usize,
    wall_seconds: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    peak_inflight: u64,
}

fn main() {
    let scale = env_f64("REOPT_SCALE", 0.02);
    let passes = env_usize("REOPT_BENCH_PASSES", 3).max(1);
    let sweep = client_sweep();

    let mut db = Database::new();
    if let Err(error) = load_imdb(&mut db, &ImdbConfig { scale, seed: 13 }) {
        eprintln!("concurrent_bench: data load failed: {error}");
        std::process::exit(1);
    }
    let threads = env_usize("REOPT_THREADS", 2).max(1);
    db.set_threads(Some(threads));
    // Shrink batches so bench-scale tables split into multi-worker morsel chains
    // (the default 1024-row batches clamp everything to one inline worker here).
    db.set_batch_size(Some(64));

    let mix = query_mix();
    eprintln!(
        "concurrent_bench: scale {scale}, {} rows, {} mix queries, pool {threads} thread(s), \
         {passes} pass(es), sweep {sweep:?}",
        db.storage().total_rows(),
        mix.len(),
    );

    // Phase 1: sequential single-threaded reference.
    db.set_threads(Some(1));
    let reference: Vec<Vec<String>> = mix
        .iter()
        .map(|query| match db.execute(&query.sql) {
            Ok(output) => sorted(&output.rows),
            Err(error) => {
                eprintln!("concurrent_bench: reference run of {} failed: {error}", query.id);
                std::process::exit(1);
            }
        })
        .collect();
    db.set_threads(Some(threads));

    let mix = Arc::new(mix);
    let reference = Arc::new(reference);
    let mut failed = false;

    // Phase 2: the client sweep.
    let mut points = Vec::new();
    for &clients in &sweep {
        // A fresh admission semaphore per point so peak_inflight is per-point.
        db.set_max_inflight(clients.max(reopt_core::DEFAULT_MAX_INFLIGHT));
        let wall_start = Instant::now();
        let mut handles = Vec::new();
        for client in 0..clients {
            let mut session = db.connect();
            let mix = Arc::clone(&mix);
            let reference = Arc::clone(&reference);
            handles.push(std::thread::spawn(move || {
                let mut latencies_ms = Vec::new();
                let mut mismatches = Vec::new();
                for pass in 0..passes {
                    for step in 0..mix.len() {
                        let idx = (client + pass + step) % mix.len();
                        let query = &mix[idx];
                        let start = Instant::now();
                        match session.execute(&query.sql) {
                            Ok(output) => {
                                latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                                if sorted(&output.rows) != reference[idx] {
                                    mismatches.push(format!(
                                        "client {client}: {} diverged from sequential reference",
                                        query.id
                                    ));
                                }
                            }
                            Err(error) => mismatches
                                .push(format!("client {client}: {} failed: {error}", query.id)),
                        }
                    }
                }
                (latencies_ms, mismatches)
            }));
        }
        let mut latencies_ms = Vec::new();
        for handle in handles {
            let (client_latencies, mismatches) = handle.join().expect("client thread panicked");
            latencies_ms.extend(client_latencies);
            for mismatch in mismatches {
                eprintln!("concurrent_bench: ROW IDENTITY VIOLATION: {mismatch}");
                failed = true;
            }
        }
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let point = SweepPoint {
            clients,
            total_queries: latencies_ms.len(),
            wall_seconds,
            p50_ms: percentile(&latencies_ms, 0.50),
            p95_ms: percentile(&latencies_ms, 0.95),
            p99_ms: percentile(&latencies_ms, 0.99),
            max_ms: latencies_ms.last().copied().unwrap_or(0.0),
            peak_inflight: db.server().peak_inflight(),
        };
        eprintln!(
            "concurrent_bench: {} client(s): {} queries in {:.2}s  p50 {:.2}ms  p95 {:.2}ms  \
             p99 {:.2}ms  max {:.2}ms  peak inflight {}",
            point.clients,
            point.total_queries,
            point.wall_seconds,
            point.p50_ms,
            point.p95_ms,
            point.p99_ms,
            point.max_ms,
            point.peak_inflight,
        );
        points.push(point);
    }

    // Phase 3: mid-query re-optimization corrects one session's query while a
    // concurrent session keeps completing unaffected (hash-joins-only config so
    // the mis-estimated subtree deterministically lands on a build side).
    let mut reopt_db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    let isolation = (|| -> Result<(bool, usize, u64), String> {
        load_imdb(&mut reopt_db, &ImdbConfig { scale: scale.max(0.03), seed: 9 })
            .map_err(|e| e.to_string())?;
        reopt_db.set_threads(Some(threads.max(2)));
        reopt_db.set_batch_size(Some(64));
        let skewed = job_query("10a").ok_or("missing 10a")?;
        let background_query = job_query("1a").ok_or("missing 1a")?;
        reopt_db.set_threads(Some(1));
        let expected_skewed = sorted(&reopt_db.execute(&skewed.sql).map_err(|e| e.to_string())?.rows);
        let expected_background =
            sorted(&reopt_db.execute(&background_query.sql).map_err(|e| e.to_string())?.rows);
        reopt_db.set_threads(Some(threads.max(2)));

        let stop = Arc::new(AtomicBool::new(false));
        let stop_bg = Arc::clone(&stop);
        let mut background = reopt_db.connect();
        let bg_handle = std::thread::spawn(move || -> Result<u64, String> {
            let mut completed = 0u64;
            while !stop_bg.load(Ordering::SeqCst) {
                let out = background
                    .execute(&background_query.sql)
                    .map_err(|e| e.to_string())?;
                if sorted(&out.rows) != expected_background {
                    return Err("background rows corrupted during re-optimization".into());
                }
                completed += 1;
            }
            Ok(completed)
        });

        let config = ReoptConfig {
            threshold: 8.0,
            mode: ReoptMode::MidQuery,
            ..ReoptConfig::default()
        };
        let report = execute_with_reoptimization(&mut reopt_db, &skewed.sql, &config)
            .map_err(|e| e.to_string());
        stop.store(true, Ordering::SeqCst);
        let completed = bg_handle
            .join()
            .map_err(|_| "background session panicked".to_string())??;
        let report = report?;
        if sorted(&report.final_rows) != expected_skewed {
            return Err("mid-query re-optimization changed the skewed result".into());
        }
        if !report.reoptimized() {
            return Err("the skewed query did not trigger re-optimization".into());
        }
        if completed == 0 {
            return Err("the background session completed no queries".into());
        }
        Ok((true, report.rounds.len(), completed))
    })();
    let (isolation_ok, isolation_rounds, background_completed) = match isolation {
        Ok(triple) => {
            eprintln!(
                "concurrent_bench: mid-query isolation verified — {} round(s), background \
                 completed {} quer(ies) unaffected",
                triple.1, triple.2
            );
            triple
        }
        Err(error) => {
            eprintln!("concurrent_bench: MID-QUERY ISOLATION FAILED: {error}");
            failed = true;
            (false, 0, 0)
        }
    };

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"clients\": {}, \"total_queries\": {}, \"wall_seconds\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \
                 \"peak_inflight\": {} }}",
                p.clients,
                p.total_queries,
                p.wall_seconds,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.max_ms,
                p.peak_inflight
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"pool_threads\": {threads},\n  \"mix_queries\": {},\n  \
         \"passes\": {passes},\n  \"row_identity\": \"{}\",\n  \"sweep\": [\n{}\n  ],\n  \
         \"mid_query_isolation\": {{ \"verified\": {isolation_ok}, \"rounds\": \
         {isolation_rounds}, \"background_completed\": {background_completed} }}\n}}\n",
        mix.len(),
        if failed { "VIOLATED" } else { "verified" },
        sweep_json.join(",\n"),
    );
    let path =
        std::env::var("REOPT_SERVER_JSON").unwrap_or_else(|_| "BENCH_SERVER.json".to_string());
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("concurrent_bench: failed to write {path}: {error}");
        failed = true;
    } else {
        eprintln!("concurrent_bench: wrote {path}");
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "concurrent_bench: row identity and mid-query isolation verified across \
         {:?} client(s)",
        sweep
    );
}
