//! One-off measurement backing the `greedy_threshold` default: for suite queries of
//! increasing relation count, plan with exhaustive DPccp and with greedy enumeration,
//! and compare planning latency against the execution time of the produced plans.
//! See `OptimizerConfig::greedy_threshold` for the recorded conclusions.

use reopt_bench::{Harness, HarnessConfig};
use reopt_executor::Executor;
use reopt_planner::{CardinalityOverrides, Optimizer, OptimizerConfig};
use reopt_sql::parse_sql;
use std::time::Instant;

fn main() {
    let harness = Harness::new(HarnessConfig {
        scale: 0.03,
        stride: 1,
        threshold: 32.0,
        seed: 7,
        ..HarnessConfig::default()
    })
    .expect("harness builds");

    println!("id tables | dp_plan_ms dp_exec_ms dp_cost | greedy_plan_ms greedy_exec_ms greedy_cost");
    for id in ["2a", "6a", "8a", "10a", "13a", "17a", "20a", "21a"] {
        let Some(query) = harness.queries.iter().find(|q| q.id == id) else {
            continue;
        };
        let statement = parse_sql(&query.sql).unwrap();
        let select = statement.query().unwrap().clone();
        let overrides = CardinalityOverrides::new();
        let mut record = Vec::new();
        for greedy_threshold in [64usize, 2] {
            let optimizer = Optimizer::new(OptimizerConfig {
                greedy_threshold,
                ..OptimizerConfig::default()
            });
            let plan_start = Instant::now();
            let planned = optimizer
                .plan_select(&select, harness.db.storage(), harness.db.catalog(), &overrides)
                .unwrap();
            let plan_ms = plan_start.elapsed().as_secs_f64() * 1e3;
            let exec_start = Instant::now();
            let result = Executor::new(harness.db.storage())
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            let exec_ms = exec_start.elapsed().as_secs_f64() * 1e3;
            record.push((plan_ms, exec_ms, planned.plan.cost.total, result.rows.len()));
        }
        println!(
            "{id} {:2} | {:9.2} {:9.1} {:12.0} | {:9.2} {:9.1} {:12.0}",
            query.table_count,
            record[0].0,
            record[0].1,
            record[0].2,
            record[1].0,
            record[1].1,
            record[1].2,
        );
    }
}
