//! Out-of-core execution benchmark — the source of `BENCH_SPILL.json`.
//!
//! Two sections, both gated on row identity against an unlimited-budget run of
//! the same SQL on the same loaded `Database` (exits non-zero on any divergence):
//!
//! * **Spill overhead** — the tracked large-family queries **JOB 20a** (14
//!   relations) and **21a** (17 relations) run unlimited and then under a memory
//!   budget of half their own unlimited peak buffered footprint, so the largest
//!   hash-join build cannot fit and the governor forces grace-hash partitioned
//!   builds and external sorts. Reported: median runtime per setting, bytes and
//!   partitions spilled, and the out-of-core slowdown. Both sections plan with
//!   hash joins only: the default greedy plans favour index-nested-loop joins at
//!   bench scales, which buffer almost nothing — there would be no build
//!   footprint to govern.
//! * **Re-plan instead of spill** — the skewed **JOB 10a** under a hash-join-only
//!   optimizer (the setup of the end-to-end mid-query tests), same half-footprint
//!   budget, compared two ways: a plain run that pays for the full spill versus a
//!   mid-query policy run whose `MemoryPressure` suspension re-plans the
//!   remainder before the spill commits. The policy run must spill strictly
//!   fewer bytes.
//!
//! ```text
//! cargo run --release -p reopt-bench --bin spill_bench
//! REOPT_SCALE=0.05 REOPT_BENCH_ITERS=9 REOPT_SPILL_JSON=BENCH_SPILL.json \
//!     cargo run --release -p reopt-bench --bin spill_bench
//! ```
//!
//! `REOPT_SCALE` (default 0.01 — hash-only plans pay the full join fan-out, and
//! family 21's 17-table graph is super-linear in scale) sizes the dataset;
//! timings are the executor's own `execution_time` (median over
//! `REOPT_BENCH_ITERS` iterations after one warmup).
//! Set `REOPT_SPILL_JSON` to a path to also dump the measurements as JSON.

use reopt_core::{execute_with_reoptimization, Database, ReoptConfig, ReoptMode};
use reopt_planner::OptimizerConfig;
use reopt_workload::{job_query, load_imdb, ImdbConfig};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sorted_rows(rows: &[reopt_storage::Row]) -> Vec<String> {
    let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row}")).collect();
    rendered.sort();
    rendered
}

/// One out-of-core measurement for a tracked query.
struct SpillMeasurement {
    label: String,
    unlimited_us: f64,
    budget_bytes: u64,
    constrained_us: f64,
    spilled_bytes: u64,
    spill_partitions: u64,
}

impl SpillMeasurement {
    fn slowdown(&self) -> f64 {
        self.constrained_us / self.unlimited_us
    }
}

/// Median execution time, sorted rows, peak buffered bytes, and
/// `(spilled_bytes, spill_partitions)` of a timed query.
type TimedRun = (Duration, Vec<String>, u64, (u64, u64));

/// Median execution time of `iters` runs of `sql` under the database's current
/// budget, plus the sorted rows, peak buffered bytes and spill totals of the
/// last run (spill amounts are deterministic per plan and budget).
fn time_query(db: &mut Database, sql: &str, iters: usize) -> Result<TimedRun, String> {
    let mut times = Vec::with_capacity(iters);
    let mut rows = Vec::new();
    let mut peak = 0u64;
    let mut spilled = (0u64, 0u64);
    for i in 0..=iters {
        let output = db.execute(sql).map_err(|e| e.to_string())?;
        if i > 0 {
            times.push(output.execution_time);
        }
        rows = sorted_rows(&output.rows);
        peak = output.peak_buffered_bytes;
        spilled = output
            .metrics
            .as_ref()
            .map(|m| m.root.total_spilled())
            .unwrap_or((0, 0));
    }
    times.sort();
    Ok((times[times.len() / 2], rows, peak, spilled))
}

/// Run one tracked query unlimited, derive the half-footprint budget, re-run
/// constrained, and gate on row identity plus an actual spill.
fn measure_spill(
    db: &mut Database,
    id: &str,
    iters: usize,
) -> Result<SpillMeasurement, String> {
    let query = job_query(id).ok_or_else(|| format!("suite is missing {id}"))?;
    db.set_mem_budget(None);
    let (unlimited_time, reference, peak, _) = time_query(db, &query.sql, iters)?;
    if peak == 0 {
        return Err(format!("{id}: unlimited run buffered nothing"));
    }
    let budget = peak / 2;
    db.set_mem_budget(Some(budget));
    let constrained = time_query(db, &query.sql, iters);
    db.set_mem_budget(None);
    let (constrained_time, rows, _, (spilled_bytes, spill_partitions)) = constrained?;
    if rows != reference {
        return Err(format!(
            "RESULT MISMATCH on {id}: out-of-core run diverged from the unlimited run"
        ));
    }
    if spilled_bytes == 0 || spill_partitions == 0 {
        return Err(format!(
            "{id}: budget {budget} below peak {peak} never spilled — the measurement is vacuous"
        ));
    }
    Ok(SpillMeasurement {
        label: format!("job_{id}"),
        unlimited_us: unlimited_time.as_secs_f64() * 1e6,
        budget_bytes: budget,
        constrained_us: constrained_time.as_secs_f64() * 1e6,
        spilled_bytes,
        spill_partitions,
    })
}

/// Hash joins only (no index scans, index-NL or merge joins): out-of-core
/// execution needs plans with real build sides.
fn hash_only_config() -> OptimizerConfig {
    OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    }
}

fn main() {
    let scale = env_f64("REOPT_SCALE", 0.01);
    let iters = env_usize("REOPT_BENCH_ITERS", 3).max(2);

    let build_start = Instant::now();
    let mut db = Database::with_config(hash_only_config());
    if let Err(error) = load_imdb(&mut db, &ImdbConfig { scale, seed: 13 }) {
        eprintln!("spill_bench: failed to load the dataset: {error}");
        std::process::exit(1);
    }
    db.set_threads(Some(1));
    eprintln!(
        "spill_bench: scale {scale}: {} rows loaded in {:.1}s",
        db.storage().total_rows(),
        build_start.elapsed().as_secs_f64(),
    );

    let mut failed = false;
    let mut results: Vec<SpillMeasurement> = Vec::new();
    for id in ["20a", "21a"] {
        match measure_spill(&mut db, id, iters) {
            Ok(m) => {
                println!(
                    "spill_bench: {:<10} unlimited {:>10.1}us  budget {:>9} B  out-of-core \
                     {:>10.1}us  {:.2}x  spilled {} B in {} partitions (row-identical)",
                    m.label,
                    m.unlimited_us,
                    m.budget_bytes,
                    m.constrained_us,
                    m.slowdown(),
                    m.spilled_bytes,
                    m.spill_partitions,
                );
                results.push(m);
            }
            Err(error) => {
                eprintln!("spill_bench: {id} failed: {error}");
                failed = true;
            }
        }
    }

    // --- Re-plan instead of spill ---------------------------------------------
    // Hash joins only, so the mis-estimated skewed subtree of 10a lands on a
    // build side (the end-to-end mid-query setup). The q-error threshold is out
    // of reach: memory pressure is the only signal that can trigger a round.
    let mut hash_db = Database::with_config(hash_only_config());
    if let Err(error) = load_imdb(&mut hash_db, &ImdbConfig { scale: scale.max(0.03), seed: 9 }) {
        eprintln!("spill_bench: failed to load the hash-only dataset: {error}");
        std::process::exit(1);
    }
    hash_db.set_threads(Some(1));
    let mut replan = None;
    match measure_spill(&mut hash_db, "10a", iters) {
        Ok(plain) => {
            hash_db.set_mem_budget(Some(plain.budget_bytes));
            let config = ReoptConfig {
                threshold: 1e9,
                mode: ReoptMode::MidQuery,
                feedback: false,
                ..ReoptConfig::default()
            };
            let query = job_query("10a").expect("suite contains 10a");
            let start = Instant::now();
            match execute_with_reoptimization(&mut hash_db, &query.sql, &config) {
                Ok(report) => {
                    let elapsed = start.elapsed();
                    hash_db.set_mem_budget(None);
                    let reference = sorted_rows(&hash_db.execute(&query.sql).unwrap().rows);
                    if sorted_rows(&report.final_rows) != reference {
                        eprintln!("spill_bench: RESULT MISMATCH on the re-planned 10a run");
                        failed = true;
                    }
                    if report.spilled_bytes >= plain.spilled_bytes {
                        eprintln!(
                            "spill_bench: REGRESSION: re-planning spilled {} B, not fewer than \
                             the plain run's {} B",
                            report.spilled_bytes, plain.spilled_bytes
                        );
                        failed = true;
                    }
                    println!(
                        "spill_bench: job_10a     plain spill {} B vs re-plan spill {} B \
                         ({} round(s), {:.1}ms end to end) under a {} B budget",
                        plain.spilled_bytes,
                        report.spilled_bytes,
                        report.rounds.len(),
                        elapsed.as_secs_f64() * 1e3,
                        plain.budget_bytes,
                    );
                    replan = Some((plain, report.spilled_bytes, report.rounds.len()));
                }
                Err(error) => {
                    eprintln!("spill_bench: re-planned 10a run failed: {error}");
                    failed = true;
                }
            }
        }
        Err(error) => {
            eprintln!("spill_bench: plain 10a under budget failed: {error}");
            failed = true;
        }
    }

    if let Ok(path) = std::env::var("REOPT_SPILL_JSON") {
        let mut body = format!("{{\n  \"scale\": {scale},\n  \"iters\": {iters},\n");
        for m in &results {
            body.push_str(&format!(
                "  \"{}\": {{ \"unlimited_us\": {:.1}, \"budget_bytes\": {}, \
                 \"out_of_core_us\": {:.1}, \"slowdown\": {:.2}, \"spilled_bytes\": {}, \
                 \"spill_partitions\": {} }},\n",
                m.label,
                m.unlimited_us,
                m.budget_bytes,
                m.constrained_us,
                m.slowdown(),
                m.spilled_bytes,
                m.spill_partitions,
            ));
        }
        if let Some((plain, replan_bytes, rounds)) = &replan {
            body.push_str(&format!(
                "  \"replan_instead_of_spill_10a\": {{ \"budget_bytes\": {}, \
                 \"plain_spilled_bytes\": {}, \"replan_spilled_bytes\": {}, \
                 \"replan_rounds\": {} }}\n",
                plain.budget_bytes, plain.spilled_bytes, replan_bytes, rounds,
            ));
        } else {
            body.push_str("  \"replan_instead_of_spill_10a\": null\n");
        }
        body.push_str("}\n");
        if let Err(error) = std::fs::write(&path, body) {
            eprintln!("spill_bench: failed to write {path}: {error}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "spill_bench: every out-of-core run is row-identical to its unlimited reference"
    );
}
