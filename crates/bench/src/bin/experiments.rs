//! The experiment driver: reproduce the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p reopt-bench --bin experiments -- all
//! cargo run --release -p reopt-bench --bin experiments -- figure1 figure7
//! REOPT_SCALE=0.2 REOPT_QUERY_STRIDE=1 cargo run --release -p reopt-bench --bin experiments -- all
//! ```

use reopt_bench::experiments::{run_experiment, ALL_EXPERIMENTS};
use reopt_bench::{Harness, HarnessConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let config = HarnessConfig::from_env();
    eprintln!(
        "# building synthetic IMDB (scale {}, stride {}, threshold {})",
        config.scale, config.stride, config.threshold
    );
    let build_start = Instant::now();
    let mut harness = match Harness::new(config) {
        Ok(harness) => harness,
        Err(error) => {
            eprintln!("failed to build the harness: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "# data loaded: {} tables, {} rows, in {:.1}s",
        harness.db.storage().table_count(),
        harness.db.storage().total_rows(),
        build_start.elapsed().as_secs_f64()
    );

    let mut failures = 0;
    for name in requested {
        let start = Instant::now();
        match run_experiment(&name, &mut harness) {
            Ok(output) => {
                println!("==================== {name} ====================");
                println!("{output}");
                eprintln!("# {name} finished in {:.1}s", start.elapsed().as_secs_f64());
            }
            Err(error) => {
                eprintln!("experiment {name} failed: {error}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
