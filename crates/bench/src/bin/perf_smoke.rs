//! Release-mode perf/correctness smoke for CI.
//!
//! Walks the JOB suite family by family (up to `REOPT_SMOKE_PER_FAMILY` queries per
//! family, default 3, skipping queries joining more than `REOPT_SMOKE_MAX_TABLES`
//! relations, default 12) and executes every selected query under plain execution and
//! under all three built-in re-optimization policies (materialize-restart,
//! inject-only, mid-query) through the policy driver, checking that all four agree on
//! the result. The first query of every family additionally runs the
//! selective-improvement policy to completion. Exits non-zero on any divergence,
//! which is what gates result-correctness regressions in CI — a concrete step from
//! the old single-query smoke toward full 113-query suite coverage.
//!
//! ```text
//! cargo run --release -p reopt-bench --bin perf_smoke
//! REOPT_SMOKE_PER_FAMILY=5 REOPT_SMOKE_MAX_TABLES=17 REOPT_SCALE=0.05 \
//!     cargo run --release -p reopt-bench --bin perf_smoke
//! ```

use reopt_bench::{Harness, HarnessConfig};
use reopt_core::{
    execute_with_reoptimization, selective_improvement, ReoptConfig, ReoptMode, SelectiveConfig,
};
use reopt_workload::JobQuery;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let per_family = env_usize("REOPT_SMOKE_PER_FAMILY", 3).max(1);
    let max_tables = env_usize("REOPT_SMOKE_MAX_TABLES", 12).max(2);
    let scale = env_f64("REOPT_SCALE", 0.02);

    let config = HarnessConfig {
        scale,
        stride: 1,
        threshold: 8.0,
        seed: 13,
        ..HarnessConfig::default()
    };
    let build_start = Instant::now();
    let mut harness = match Harness::new(config) {
        Ok(harness) => harness,
        Err(error) => {
            eprintln!("perf_smoke: failed to build the harness: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "perf_smoke: data loaded ({} rows) in {:.1}s",
        harness.db.storage().total_rows(),
        build_start.elapsed().as_secs_f64()
    );

    // Up to `per_family` queries of every family, smallest variants first as listed.
    let mut selected: Vec<JobQuery> = Vec::new();
    let mut family_counts = std::collections::HashMap::new();
    for query in &harness.queries {
        if query.table_count > max_tables {
            continue;
        }
        let count = family_counts.entry(query.family).or_insert(0usize);
        if *count < per_family {
            *count += 1;
            selected.push(query.clone());
        }
    }
    eprintln!(
        "perf_smoke: {} queries across {} families (<= {per_family}/family, <= {max_tables} tables)",
        selected.len(),
        family_counts.len()
    );

    let modes = [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery];
    let mut mode_time = [Duration::ZERO; 3];
    let mut mode_rounds = [0usize; 3];
    let mut plain_time = Duration::ZERO;
    let mut selective_runs = 0usize;
    let mut seen_families = std::collections::HashSet::new();
    let mut failed = false;

    for query in &selected {
        let id = &query.id;
        let plain_start = Instant::now();
        let plain = match harness.db.execute(&query.sql) {
            Ok(output) => output,
            Err(error) => {
                eprintln!("perf_smoke: plain execution of {id} failed: {error}");
                failed = true;
                continue;
            }
        };
        plain_time += plain_start.elapsed();

        for (idx, mode) in modes.iter().enumerate() {
            let config = ReoptConfig {
                threshold: 8.0,
                mode: *mode,
                ..ReoptConfig::default()
            };
            let start = Instant::now();
            match execute_with_reoptimization(&mut harness.db, &query.sql, &config) {
                Ok(report) => {
                    mode_time[idx] += start.elapsed();
                    mode_rounds[idx] += report.rounds.len();
                    if report.final_rows != plain.rows {
                        eprintln!(
                            "perf_smoke: RESULT MISMATCH for {id} under {} ({mode:?}): \
                             {:?} vs plain {:?}",
                            report.policy, report.final_rows, plain.rows
                        );
                        failed = true;
                    }
                }
                Err(error) => {
                    eprintln!("perf_smoke: re-optimized run of {id} ({mode:?}) failed: {error}");
                    failed = true;
                }
            }
        }

        // The selective-improvement policy re-executes up to its iteration budget;
        // run it once per family to keep the smoke's runtime linear in the suite.
        if seen_families.insert(query.family) {
            let selective = SelectiveConfig {
                threshold: 8.0,
                max_iterations: 8,
            };
            match selective_improvement(&mut harness.db, &query.sql, &selective) {
                Ok(iterations) => {
                    selective_runs += 1;
                    if iterations.is_empty() {
                        eprintln!("perf_smoke: selective improvement of {id} recorded no runs");
                        failed = true;
                    }
                }
                Err(error) => {
                    eprintln!("perf_smoke: selective improvement of {id} failed: {error}");
                    failed = true;
                }
            }
        }
    }

    println!(
        "perf_smoke: {} queries  plain {:>7.2}s",
        selected.len(),
        plain_time.as_secs_f64()
    );
    for (idx, mode) in modes.iter().enumerate() {
        println!(
            "perf_smoke: {mode:?}  {:>7.2}s  ({} rounds total)",
            mode_time[idx].as_secs_f64(),
            mode_rounds[idx]
        );
    }
    println!("perf_smoke: selective improvement converged on {selective_runs} families");

    if failed {
        std::process::exit(1);
    }
    println!("perf_smoke: plain + all policies agree on every query");
}
