//! Release-mode perf/correctness smoke for CI.
//!
//! Walks the JOB suite family by family (up to `REOPT_SMOKE_PER_FAMILY` queries per
//! family, default 3, skipping queries joining more than `REOPT_SMOKE_MAX_TABLES`
//! relations, default 12) and executes every selected query under plain execution and
//! under all three built-in re-optimization policies (materialize-restart,
//! inject-only, mid-query) through the policy driver, checking that all four agree on
//! the result. The first query of every family additionally runs the
//! selective-improvement policy to completion. Exits non-zero on any divergence,
//! which is what gates result-correctness regressions in CI — a concrete step from
//! the old single-query smoke toward full 113-query suite coverage.
//!
//! The smoke also gates the `REOPT_THREADS` and `REOPT_COLUMNAR` dimensions: every
//! query's reference result is computed by a **forced single-threaded, row-engine**
//! plain run (columnar execution disabled), and every other execution (plain and
//! re-optimizing alike) runs at the configured thread count with the configured
//! columnar setting. Running the smoke with `REOPT_THREADS=4` proves that
//! morsel-driven parallel execution — including mid-query re-optimization over
//! parallel pipelines — produces exactly the single-threaded results; running it
//! with the default columnar engine proves the vectorized scan/filter kernels are
//! row-identical to the row engine, and `REOPT_COLUMNAR=0` exercises the kill
//! switch end to end. Rows are compared in sorted order when the query has no
//! ORDER BY (output order is not plan-defined there, and parallel morsel interleaving
//! legitimately permutes it); ORDER BY queries are compared exactly.
//!
//! At `REOPT_THREADS>1` the smoke additionally asserts **zero single-engine
//! fallbacks** (the parallel engine implements every plan shape the planner emits;
//! a plan regressing onto the denylist fails the leg) and — in the resident-pool
//! phase — that suspension-heavy mid-query rounds **start strictly fewer build
//! pipelines than were planned** (lazy build scheduling skips the builds an
//! abandoned plan never probed).
//!
//! `REOPT_MEM_BUDGET` adds the out-of-core dimension: with a finite byte budget the
//! measured runs spill breaker state to disk (grace-hash partitioned builds,
//! external sorts) while every reference run is pinned to an unlimited budget, so
//! the smoke gates out-of-core execution against the in-memory truth. The run
//! fails if a budget is configured but never denies a single grant (the budget was
//! too large to prove anything).
//!
//! ```text
//! cargo run --release -p reopt-bench --bin perf_smoke
//! REOPT_THREADS=4 REOPT_SMOKE_PER_FAMILY=5 REOPT_SMOKE_MAX_TABLES=17 REOPT_SCALE=0.05 \
//!     cargo run --release -p reopt-bench --bin perf_smoke
//! ```

use reopt_bench::{Harness, HarnessConfig};
use reopt_core::{
    execute_with_reoptimization, feedback_enabled_by_default, selective_improvement, ReoptConfig,
    ReoptMode, SelectiveConfig,
};
use reopt_storage::Row;
use reopt_workload::JobQuery;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Canonicalize rows for comparison: sorted unless the query pins its output order
/// with an ORDER BY.
fn canonical(rows: &[Row], order_sensitive: bool) -> Vec<String> {
    let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row}")).collect();
    if !order_sensitive {
        rendered.sort();
    }
    rendered
}

/// Whether the query's output order is plan-defined (ORDER BY present).
fn is_order_sensitive(sql: &str) -> bool {
    reopt_sql::parse_sql(sql)
        .ok()
        .and_then(|statement| statement.query().map(|select| !select.order_by.is_empty()))
        .unwrap_or(false)
}

fn main() {
    let per_family = env_usize("REOPT_SMOKE_PER_FAMILY", 3).max(1);
    let max_tables = env_usize("REOPT_SMOKE_MAX_TABLES", 12).max(2);
    let scale = env_f64("REOPT_SCALE", 0.02);

    let config = HarnessConfig {
        scale,
        stride: 1,
        threshold: 8.0,
        seed: 13,
        ..HarnessConfig::default()
    };
    let build_start = Instant::now();
    let mut harness = match Harness::new(config) {
        Ok(harness) => harness,
        Err(error) => {
            eprintln!("perf_smoke: failed to build the harness: {error}");
            std::process::exit(1);
        }
    };
    let threads = harness.db.threads();
    // The governor was initialised from REOPT_MEM_BUDGET; remember the configured
    // budget so reference runs (always unlimited) can restore it afterwards.
    let mem_budget = harness.db.mem_budget();
    eprintln!(
        "perf_smoke: data loaded ({} rows) in {:.1}s; executing at {} thread{}{}",
        harness.db.storage().total_rows(),
        build_start.elapsed().as_secs_f64(),
        threads,
        if threads == 1 { "" } else { "s" },
        match mem_budget {
            Some(bytes) => format!(", memory budget {bytes} bytes"),
            None => String::new(),
        },
    );

    // Up to `per_family` queries of every family, smallest variants first as listed.
    let mut selected: Vec<JobQuery> = Vec::new();
    let mut family_counts = std::collections::HashMap::new();
    for query in &harness.queries {
        if query.table_count > max_tables {
            continue;
        }
        let count = family_counts.entry(query.family).or_insert(0usize);
        if *count < per_family {
            *count += 1;
            selected.push(query.clone());
        }
    }
    eprintln!(
        "perf_smoke: {} queries across {} families (<= {per_family}/family, <= {max_tables} tables)",
        selected.len(),
        family_counts.len()
    );

    // Every measured run below executes at the configured thread count; at
    // threads > 1 not a single plan shape may silently degrade to the
    // single-threaded engine (the denylist is empty — a fallback is a regression).
    let fallbacks_before = reopt_executor::plan_fallbacks_total();

    let modes = [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery];
    let mut mode_time = [Duration::ZERO; 3];
    let mut mode_rounds = [0usize; 3];
    let mut plain_time = Duration::ZERO;
    let mut single_time = Duration::ZERO;
    let mut selective_runs = 0usize;
    let mut seen_families = std::collections::HashSet::new();
    let mut failed = false;

    for query in &selected {
        let id = &query.id;
        let order_sensitive = is_order_sensitive(&query.sql);

        // The reference result: a forced single-threaded, row-engine plain
        // execution at an unlimited memory budget. Everything else below runs at
        // the configured thread count with the configured columnar setting under
        // the configured budget and must match it.
        harness.db.set_threads(Some(1));
        harness.db.set_columnar(Some(false));
        harness.db.set_mem_budget(None);
        let single_start = Instant::now();
        let reference = match harness.db.execute(&query.sql) {
            Ok(output) => canonical(&output.rows, order_sensitive),
            Err(error) => {
                eprintln!("perf_smoke: single-threaded execution of {id} failed: {error}");
                failed = true;
                harness.db.set_threads(None);
                harness.db.set_columnar(None);
                harness.db.set_mem_budget(mem_budget);
                continue;
            }
        };
        single_time += single_start.elapsed();
        harness.db.set_threads(None);
        harness.db.set_columnar(None);
        harness.db.set_mem_budget(mem_budget);

        let plain_start = Instant::now();
        match harness.db.execute(&query.sql) {
            Ok(output) => {
                plain_time += plain_start.elapsed();
                let got = canonical(&output.rows, order_sensitive);
                if got != reference {
                    eprintln!(
                        "perf_smoke: RESULT MISMATCH for {id}: plain at {threads} threads \
                         {got:?} vs single-threaded {reference:?}"
                    );
                    failed = true;
                }
            }
            Err(error) => {
                eprintln!("perf_smoke: plain execution of {id} failed: {error}");
                failed = true;
                continue;
            }
        }

        for (idx, mode) in modes.iter().enumerate() {
            // Feedback stays off here no matter what REOPT_FEEDBACK says: this
            // phase compares the policies against each other, and cross-query
            // seeding (mode N learning from mode N-1 on the same query) would
            // blur exactly that comparison. The feedback phase below is the
            // one that exercises the cache.
            let config = ReoptConfig {
                threshold: 8.0,
                mode: *mode,
                feedback: false,
                ..ReoptConfig::default()
            };
            let start = Instant::now();
            match execute_with_reoptimization(&mut harness.db, &query.sql, &config) {
                Ok(report) => {
                    mode_time[idx] += start.elapsed();
                    mode_rounds[idx] += report.rounds.len();
                    let got = canonical(&report.final_rows, order_sensitive);
                    if got != reference {
                        eprintln!(
                            "perf_smoke: RESULT MISMATCH for {id} under {} ({mode:?}, \
                             {} threads): {got:?} vs single-threaded {reference:?}",
                            report.policy, report.threads
                        );
                        failed = true;
                    }
                }
                Err(error) => {
                    eprintln!("perf_smoke: re-optimized run of {id} ({mode:?}) failed: {error}");
                    failed = true;
                }
            }
        }

        // The selective-improvement policy re-executes up to its iteration budget;
        // run it once per family to keep the smoke's runtime linear in the suite.
        if seen_families.insert(query.family) {
            let selective = SelectiveConfig {
                threshold: 8.0,
                max_iterations: 8,
            };
            match selective_improvement(&mut harness.db, &query.sql, &selective) {
                Ok(iterations) => {
                    selective_runs += 1;
                    if iterations.is_empty() {
                        eprintln!("perf_smoke: selective improvement of {id} recorded no runs");
                        failed = true;
                    }
                }
                Err(error) => {
                    eprintln!("perf_smoke: selective improvement of {id} failed: {error}");
                    failed = true;
                }
            }
        }
    }

    // --- Cross-query feedback phase -------------------------------------------
    // Run the whole selected set twice under the materialize-restart policy with
    // the catalog's feedback cache cleared first. Pass 1 pays for discovery and
    // fills the cache; pass 2 must be row-identical to the single-threaded plain
    // reference while needing strictly fewer re-optimization rounds with a
    // strictly lower median violation q-error — the cross-query payoff the cache
    // exists for. Skipped when REOPT_FEEDBACK=0 (the cache is then off
    // everywhere and there is nothing to measure). Set REOPT_FEEDBACK_JSON to a
    // path to dump the pass data (the source of BENCH_FEEDBACK.json).
    let mut feedback_passes: Vec<(usize, f64, Duration)> = Vec::new();
    if feedback_enabled_by_default() {
        harness.db.catalog_mut().feedback_mut().clear();
        // The recorded/hits totals are lifetime counters (clear() drops entries,
        // not history); snapshot them so the printed stats cover this phase only
        // and not the earlier selective-improvement runs.
        let recorded_before = harness.db.catalog().feedback().total_recorded();
        let hits_before = harness.db.catalog().feedback().total_hits();
        for pass in 1..=2usize {
            let mut rounds = 0usize;
            let mut q_errors: Vec<f64> = Vec::new();
            let mut elapsed = Duration::ZERO;
            for query in &selected {
                let id = &query.id;
                let order_sensitive = is_order_sensitive(&query.sql);
                harness.db.set_threads(Some(1));
                harness.db.set_columnar(Some(false));
                harness.db.set_mem_budget(None);
                let reference = match harness.db.execute(&query.sql) {
                    Ok(output) => canonical(&output.rows, order_sensitive),
                    Err(error) => {
                        eprintln!("perf_smoke: feedback reference run of {id} failed: {error}");
                        failed = true;
                        harness.db.set_threads(None);
                        harness.db.set_columnar(None);
                        harness.db.set_mem_budget(mem_budget);
                        continue;
                    }
                };
                harness.db.set_threads(None);
                harness.db.set_columnar(None);
                harness.db.set_mem_budget(mem_budget);
                let config = ReoptConfig {
                    threshold: 8.0,
                    mode: ReoptMode::Materialize,
                    feedback: true,
                    ..ReoptConfig::default()
                };
                let start = Instant::now();
                match execute_with_reoptimization(&mut harness.db, &query.sql, &config) {
                    Ok(report) => {
                        elapsed += start.elapsed();
                        rounds += report.rounds.len();
                        q_errors.extend(report.rounds.iter().map(|round| round.q_error));
                        let got = canonical(&report.final_rows, order_sensitive);
                        if got != reference {
                            eprintln!(
                                "perf_smoke: RESULT MISMATCH for {id} on feedback pass {pass}: \
                                 {got:?} vs single-threaded {reference:?}"
                            );
                            failed = true;
                        }
                    }
                    Err(error) => {
                        eprintln!("perf_smoke: feedback pass {pass} of {id} failed: {error}");
                        failed = true;
                    }
                }
            }
            q_errors.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
            let median = if q_errors.is_empty() {
                1.0
            } else {
                q_errors[q_errors.len() / 2]
            };
            println!(
                "perf_smoke: feedback pass {pass}: {rounds} rounds, median violation \
                 q-error {median:.2}, {:.2}s",
                elapsed.as_secs_f64()
            );
            feedback_passes.push((rounds, median, elapsed));
        }
        let (rounds_1, median_1, _) = feedback_passes[0];
        let (rounds_2, median_2, _) = feedback_passes[1];
        if rounds_2 >= rounds_1 {
            eprintln!(
                "perf_smoke: FEEDBACK REGRESSION: pass 2 rounds did not decrease \
                 ({rounds_2} vs {rounds_1})"
            );
            failed = true;
        }
        if median_2 >= median_1 {
            eprintln!(
                "perf_smoke: FEEDBACK REGRESSION: pass 2 median q-error did not decrease \
                 ({median_2} vs {median_1})"
            );
            failed = true;
        }
        let cache = harness.db.catalog().feedback();
        let recorded = cache.total_recorded() - recorded_before;
        let hits = cache.total_hits() - hits_before;
        println!(
            "perf_smoke: feedback cache holds {} entries ({recorded} recorded, {hits} hits)",
            cache.len(),
        );
        if let Ok(path) = std::env::var("REOPT_FEEDBACK_JSON") {
            let json = format!(
                "{{\n  \"queries\": {},\n  \"threads\": {threads},\n  \"policy\": \
                 \"materialize-restart\",\n  \"threshold\": 8.0,\n  \"pass1\": {{ \"rounds\": {}, \
                 \"median_q_error\": {:.3}, \"seconds\": {:.3} }},\n  \"pass2\": {{ \"rounds\": {}, \
                 \"median_q_error\": {:.3}, \"seconds\": {:.3} }},\n  \"cache\": {{ \"entries\": {}, \
                 \"recorded\": {}, \"hits\": {} }}\n}}\n",
                selected.len(),
                rounds_1,
                median_1,
                feedback_passes[0].2.as_secs_f64(),
                rounds_2,
                median_2,
                feedback_passes[1].2.as_secs_f64(),
                cache.len(),
                recorded,
                hits,
            );
            if let Err(error) = std::fs::write(&path, json) {
                eprintln!("perf_smoke: failed to write {path}: {error}");
                failed = true;
            }
        }
    } else {
        println!("perf_smoke: feedback phase skipped (REOPT_FEEDBACK=0)");
    }

    // --- Resident-pool phase ---------------------------------------------------
    // PR 5 logged suspension-heavy policies paying a fresh thread-spawn per worker
    // per pipeline at threads>1 (ms-scale mid-query corrections dominated by spawn
    // cost). The resident pool closes that follow-up: once a warm-up has grown the
    // process-wide pool, suspension-heavy mid-query rounds must not spawn a single
    // new thread. Batches shrink for this phase so smoke-scale tables still split
    // into multi-worker morsel chains (at the default 1024-row batches one morsel
    // swallows every table at this scale and the pool never runs).
    if threads > 1 {
        harness.db.set_batch_size(Some(64));
        // Pinned unlimited for this phase: a denied grant makes the parallel
        // engine fall back to the single-threaded spill path, which would never
        // touch the pool — the zero-spawn assertion only means something when the
        // morsel chains actually run. The spill fallback itself is gated by the
        // budgeted main phase above.
        harness.db.set_mem_budget(None);
        // The whole phase — warm-up included — runs on hash-join-only plans: index-NL
        // joins probe an index and register no build, so the typical JOB spine would
        // carry zero or one build and the lazy-scheduling assertion below would have
        // nothing to skip.
        harness.db.set_optimizer_config(reopt_planner::OptimizerConfig {
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..reopt_planner::OptimizerConfig::default()
        });
        let config = ReoptConfig {
            threshold: 8.0,
            mode: ReoptMode::MidQuery,
            feedback: false,
            ..ReoptConfig::default()
        };
        let pool = reopt_executor::WorkerPool::global();
        pool.ensure_available(threads);
        // Warm-up runs the measured workload once — same queries, same mid-query
        // config — so the pool reaches this workload's steady-state concurrency
        // (including suspension/re-plan transients and blocked-sender replacement
        // spawns, which plain executions never trigger) before the zero-spawn
        // window opens.
        for query in selected.iter().take(8) {
            if let Err(error) = execute_with_reoptimization(&mut harness.db, &query.sql, &config) {
                eprintln!("perf_smoke: pool warm-up of {} failed: {error}", query.id);
                failed = true;
            }
        }
        let spawned_before = pool.threads_spawned_total();
        if spawned_before == 0 {
            eprintln!("perf_smoke: POOL REGRESSION: warm-up never reached the resident pool");
            failed = true;
        }
        let mut suspension_rounds = 0usize;
        // Lazy build scheduling: eager assembly would start every registered build
        // before the first probe; suspension-heavy rounds abandon plans whose outer
        // builds were never needed, so strictly fewer builds must start than were
        // planned across the phase.
        let lazy_planned_before = reopt_executor::lazy_builds_planned_total();
        let lazy_started_before = reopt_executor::lazy_builds_started_total();
        for query in selected.iter().take(8) {
            match execute_with_reoptimization(&mut harness.db, &query.sql, &config) {
                Ok(report) => suspension_rounds += report.rounds.len(),
                Err(error) => {
                    eprintln!(
                        "perf_smoke: pool-phase mid-query run of {} failed: {error}",
                        query.id
                    );
                    failed = true;
                }
            }
        }
        let lazy_planned = reopt_executor::lazy_builds_planned_total() - lazy_planned_before;
        let lazy_started = reopt_executor::lazy_builds_started_total() - lazy_started_before;
        if lazy_started > lazy_planned {
            eprintln!(
                "perf_smoke: LAZY BUILD REGRESSION: {lazy_started} builds started but only \
                 {lazy_planned} were planned"
            );
            failed = true;
        }
        if suspension_rounds > 0 && lazy_started >= lazy_planned {
            eprintln!(
                "perf_smoke: LAZY BUILD REGRESSION: {suspension_rounds} mid-query suspension \
                 round(s) but every planned build started ({lazy_started} of {lazy_planned}) — \
                 abandoned plans must skip the builds a re-plan discards"
            );
            failed = true;
        }
        println!(
            "perf_smoke: lazy build scheduling started {lazy_started} of {lazy_planned} planned \
             build(s) across {suspension_rounds} mid-query round(s)"
        );
        harness.db.set_optimizer_config(reopt_planner::OptimizerConfig::default());
        let spawned_after = pool.threads_spawned_total();
        if spawned_after != spawned_before {
            eprintln!(
                "perf_smoke: POOL REGRESSION: suspension-heavy rounds spawned \
                 {} new thread(s) ({spawned_before} -> {spawned_after}) — the worker \
                 pool must be resident across queries and re-optimization rounds",
                spawned_after - spawned_before
            );
            failed = true;
        }
        println!(
            "perf_smoke: resident pool held at {spawned_after} thread(s) across \
             {suspension_rounds} mid-query round(s) — zero spawns after warm-up"
        );
        harness.db.set_batch_size(None);
        harness.db.set_mem_budget(mem_budget);
    } else {
        println!("perf_smoke: resident-pool phase skipped (single-threaded run)");
    }

    // --- Out-of-core gate -------------------------------------------------------
    // When a budget is configured the smoke must have actually exercised spilling:
    // at least one reservation denied, and no spill file left on disk. A budget
    // that never denies proves nothing — fail loudly so CI legs don't rot.
    if let Some(budget) = mem_budget {
        let denials = harness.db.governor().denials();
        let live = reopt_storage::live_spill_files();
        println!(
            "perf_smoke: memory budget {budget} bytes: {denials} denied grant(s), \
             peak reserved {} bytes, {live} live spill file(s)",
            harness.db.governor().peak_reserved()
        );
        if denials == 0 {
            eprintln!(
                "perf_smoke: SPILL REGRESSION: budget {budget} bytes never denied a \
                 grant — raise the workload scale or lower the budget"
            );
            failed = true;
        }
        if live != 0 {
            eprintln!("perf_smoke: SPILL LEAK: {live} spill file(s) still live after the run");
            failed = true;
        }
    }

    // --- Zero-fallback gate -----------------------------------------------------
    // The parallel engine implements every plan shape the planner emits; any plan
    // that regressed onto the denylist during the smoke is a silent single-core run.
    if threads > 1 {
        let fallbacks = reopt_executor::plan_fallbacks_total() - fallbacks_before;
        if fallbacks > 0 {
            eprintln!(
                "perf_smoke: ENGINE FALLBACK REGRESSION: {fallbacks} plan(s) fell back to \
                 the single-threaded engine at {threads} threads — the denylist must stay empty"
            );
            failed = true;
        } else {
            println!("perf_smoke: zero single-engine fallbacks at {threads} threads");
        }
    }

    println!(
        "perf_smoke: {} queries  single-threaded row engine {:>7.2}s  plain at {threads} thread(s) {:>7.2}s",
        selected.len(),
        single_time.as_secs_f64(),
        plain_time.as_secs_f64()
    );
    for (idx, mode) in modes.iter().enumerate() {
        println!(
            "perf_smoke: {mode:?}  {:>7.2}s  ({} rounds total)",
            mode_time[idx].as_secs_f64(),
            mode_rounds[idx]
        );
    }
    println!("perf_smoke: selective improvement converged on {selective_runs} families");

    if failed {
        std::process::exit(1);
    }
    println!(
        "perf_smoke: single-threaded row-engine reference, plain at {threads} thread(s) and all \
         policies agree on every query"
    );
}
