//! Release-mode perf/correctness smoke for CI.
//!
//! Executes one mid-size JOB query (12 tables) under plain execution and under all
//! three re-optimization modes (Materialize, InjectOnly, MidQuery), checks that all
//! four agree on the result, and prints the timings plus the executor's peak
//! buffered-row count. Exits non-zero on any divergence, which is what gates
//! result-correctness regressions in CI.
//!
//! ```text
//! cargo run --release -p reopt-bench --bin perf_smoke
//! ```

use reopt_bench::{Harness, HarnessConfig};
use reopt_core::{execute_with_reoptimization, ReoptConfig, ReoptMode};
use std::time::Instant;

const QUERY_ID: &str = "11a";

fn main() {
    let config = HarnessConfig {
        scale: 0.02,
        stride: 1,
        threshold: 8.0,
        seed: 13,
        ..HarnessConfig::default()
    };
    let build_start = Instant::now();
    let mut harness = match Harness::new(config) {
        Ok(harness) => harness,
        Err(error) => {
            eprintln!("perf_smoke: failed to build the harness: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "perf_smoke: data loaded ({} rows) in {:.1}s",
        harness.db.storage().total_rows(),
        build_start.elapsed().as_secs_f64()
    );

    let query = harness
        .queries
        .iter()
        .find(|q| q.id == QUERY_ID)
        .expect("suite contains the smoke query")
        .clone();

    // Plain (default-optimizer) execution is the reference result.
    let plain_start = Instant::now();
    let plain = match harness.db.execute(&query.sql) {
        Ok(output) => output,
        Err(error) => {
            eprintln!("perf_smoke: plain execution of {QUERY_ID} failed: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "perf_smoke: {QUERY_ID} plain        {:>8.3}s  (peak buffered rows {})",
        plain_start.elapsed().as_secs_f64(),
        plain.peak_buffered_rows
    );

    let mut failed = false;
    for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
        let config = ReoptConfig {
            threshold: 8.0,
            mode,
            ..ReoptConfig::default()
        };
        let start = Instant::now();
        match execute_with_reoptimization(&mut harness.db, &query.sql, &config) {
            Ok(report) => {
                let reused: u64 = report
                    .rounds
                    .iter()
                    .filter_map(|round| round.reused_rows)
                    .sum();
                println!(
                    "perf_smoke: {QUERY_ID} {mode:?}  {:>8.3}s  (rounds {}, reused rows {}, peak buffered rows {})",
                    start.elapsed().as_secs_f64(),
                    report.rounds.len(),
                    reused,
                    report.peak_buffered_rows
                );
                if report.final_rows != plain.rows {
                    eprintln!(
                        "perf_smoke: RESULT MISMATCH for {QUERY_ID} under {mode:?}: \
                         {:?} vs plain {:?}",
                        report.final_rows, plain.rows
                    );
                    failed = true;
                }
            }
            Err(error) => {
                eprintln!("perf_smoke: re-optimized run ({mode:?}) failed: {error}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("perf_smoke: all four modes agree");
}
