//! Columnar-vs-row engine benchmark — the source of `BENCH_COLUMNAR.json`.
//!
//! Measures the vectorized scan/filter kernels against the row engine on the tables
//! and predicates of the tracked query **JOB 20a** (14 relations: the genre/keyword/
//! company/kind join graph), plus the full 20a query itself. Every measurement runs
//! the same SQL twice through the same loaded `Database`: once with
//! `set_columnar(Some(false))` (the row engine, equivalent to `REOPT_COLUMNAR=0`) and
//! once with `Some(true)` (the vectorized default), asserting the results are
//! row-identical before reporting timings. Exits non-zero on any divergence.
//!
//! The micro section isolates scan+filter throughput with single-table filtered
//! `count(*)` queries so join and aggregation costs cannot dilute the kernel speedup:
//! dictionary equality, dictionary IN, a native i64 comparison and an unfiltered scan.
//! The full-query section runs 20a end to end, where joins dominate and the expected
//! speedup is correspondingly smaller.
//!
//! ```text
//! cargo run --release -p reopt-bench --bin columnar_bench
//! REOPT_SCALE=0.5 REOPT_FULL_SCALE=0.05 REOPT_BENCH_ITERS=25 \
//!     cargo run --release -p reopt-bench --bin columnar_bench
//! ```
//!
//! `REOPT_SCALE` (default 0.5) sizes the micro-bench tables; `REOPT_FULL_SCALE`
//! (default 0.05) sizes the end-to-end 20a run, whose 14-relation joins are
//! super-linear in scale. Timings are the executor's own `execution_time`
//! (median over `REOPT_BENCH_ITERS` iterations after one warmup) so the shared
//! parse/plan path is excluded from the throughput comparison.
//!
//! Set `REOPT_COLUMNAR_JSON` to a path to also dump the measurements as JSON.

use reopt_bench::{Harness, HarnessConfig};
use reopt_workload::job_query;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measurement: median-of-iters wall time per engine plus the speedup.
struct Measurement {
    label: &'static str,
    row_us: f64,
    columnar_us: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.row_us / self.columnar_us
    }
}

/// Time `iters` runs of `sql` under one engine setting and return the median
/// per-iteration time plus the (sorted) result rows of the last run.
fn time_engine(
    harness: &mut Harness,
    sql: &str,
    columnar: bool,
    iters: usize,
) -> Result<(Duration, Vec<String>), String> {
    harness.db.set_columnar(Some(columnar));
    let mut times = Vec::with_capacity(iters);
    let mut rows = Vec::new();
    // One warmup iteration so first-touch effects don't land on either engine.
    // Timing uses the executor's own execution_time (parse and plan excluded):
    // the engines share the planner byte for byte, and the criterion under test
    // is scan/filter *throughput*, not planning overhead.
    for i in 0..=iters {
        let output = harness.db.execute(sql).map_err(|e| e.to_string())?;
        if i > 0 {
            times.push(output.execution_time);
        }
        rows = output.rows.iter().map(|row| format!("{row}")).collect();
        rows.sort();
    }
    harness.db.set_columnar(None);
    times.sort();
    Ok((times[times.len() / 2], rows))
}

/// Run one SQL text under both engines, assert row identity, return the measurement.
fn measure(
    harness: &mut Harness,
    label: &'static str,
    sql: &str,
    iters: usize,
) -> Result<Measurement, String> {
    let (row_time, row_rows) = time_engine(harness, sql, false, iters)?;
    let (col_time, col_rows) = time_engine(harness, sql, true, iters)?;
    if row_rows != col_rows {
        return Err(format!(
            "RESULT MISMATCH on {label}: row engine {row_rows:?} vs columnar {col_rows:?}"
        ));
    }
    Ok(Measurement {
        label,
        row_us: row_time.as_secs_f64() * 1e6,
        columnar_us: col_time.as_secs_f64() * 1e6,
    })
}

/// Build a harness at `scale` with the bench's fixed seed, pinned to one thread:
/// the micro benches isolate the single-threaded kernels; parallel row-identity
/// is gated separately by perf_smoke at REOPT_THREADS=4.
fn build_harness(scale: f64) -> Harness {
    let config = HarnessConfig {
        scale,
        stride: 1,
        threshold: 8.0,
        seed: 13,
        ..HarnessConfig::default()
    };
    let build_start = Instant::now();
    let mut harness = match Harness::new(config) {
        Ok(harness) => harness,
        Err(error) => {
            eprintln!("columnar_bench: failed to build the harness: {error}");
            std::process::exit(1);
        }
    };
    harness.db.set_threads(Some(1));
    eprintln!(
        "columnar_bench: scale {scale}: {} rows loaded in {:.1}s",
        harness.db.storage().total_rows(),
        build_start.elapsed().as_secs_f64(),
    );
    harness
}

fn main() {
    // The micro benches want tables large enough that the scan/filter loop, not
    // per-query fixed costs, is what's measured; the full 14-relation 20a joins
    // are super-linear in scale, so the end-to-end run uses a smaller one.
    let scale = env_f64("REOPT_SCALE", 0.5);
    let full_scale = env_f64("REOPT_FULL_SCALE", 0.05);
    let iters = env_usize("REOPT_BENCH_ITERS", 25).max(3);

    let mut harness = build_harness(scale);

    // Scan/filter micro benches over JOB 20a's tables, using 20a's own predicates
    // (variant 0: genre 'Action', the superhero keyword set, year > 2000).
    let micro: &[(&'static str, &'static str)] = &[
        (
            "scan_unfiltered_cast_info",
            "SELECT count(*) FROM cast_info",
        ),
        (
            "filter_dict_eq_movie_info",
            "SELECT count(*) FROM movie_info WHERE info = 'Action'",
        ),
        (
            "filter_dict_in_keyword",
            "SELECT count(*) FROM keyword WHERE keyword IN \
             ('superhero', 'sequel', 'based-on-comic', 'marvel-comics')",
        ),
        (
            "filter_dict_eq_company_name",
            "SELECT count(*) FROM company_name WHERE country_code = '[us]'",
        ),
        (
            "filter_native_i64_title",
            "SELECT count(*) FROM title WHERE production_year > 2000",
        ),
        (
            "filter_conj_title",
            "SELECT count(*) FROM title WHERE production_year > 2000 AND kind_id = 1",
        ),
    ];

    let mut failed = false;
    let mut results: Vec<Measurement> = Vec::new();
    for (label, sql) in micro {
        match measure(&mut harness, label, sql, iters) {
            Ok(m) => {
                println!(
                    "columnar_bench: {label:<32} row {:>10.1}us  columnar {:>10.1}us  {:>5.2}x",
                    m.row_us,
                    m.columnar_us,
                    m.speedup()
                );
                results.push(m);
            }
            Err(error) => {
                eprintln!("columnar_bench: {label} failed: {error}");
                failed = true;
            }
        }
    }

    // The full tracked query, end to end, on its own smaller harness (fewer
    // iterations: the 14-relation joins dominate).
    drop(harness);
    let mut harness = build_harness(full_scale);
    let job20a = job_query("20a").expect("suite contains 20a");
    let full_iters = (iters / 8).max(2);
    match measure(&mut harness, "job_20a_full", &job20a.sql, full_iters) {
        Ok(m) => {
            println!(
                "columnar_bench: {:<32} row {:>10.1}us  columnar {:>10.1}us  {:>5.2}x \
                 (row-identical)",
                m.label,
                m.row_us,
                m.columnar_us,
                m.speedup()
            );
            results.push(m);
        }
        Err(error) => {
            eprintln!("columnar_bench: job_20a_full failed: {error}");
            failed = true;
        }
    }

    // The headline gate: the geometric-mean scan/filter speedup over the filtered
    // micro benches must clear 3x for the PR's acceptance criterion.
    let filters: Vec<&Measurement> = results
        .iter()
        .filter(|m| m.label.starts_with("filter_"))
        .collect();
    if !filters.is_empty() {
        let geo =
            (filters.iter().map(|m| m.speedup().ln()).sum::<f64>() / filters.len() as f64).exp();
        println!(
            "columnar_bench: geometric-mean scan/filter speedup {:.2}x over {} predicates",
            geo,
            filters.len()
        );
    }

    if let Ok(path) = std::env::var("REOPT_COLUMNAR_JSON") {
        let mut body = String::from("{\n");
        for (idx, m) in results.iter().enumerate() {
            body.push_str(&format!(
                "  \"{}\": {{ \"row_us\": {:.1}, \"columnar_us\": {:.1}, \"speedup\": {:.2} }}{}\n",
                m.label,
                m.row_us,
                m.columnar_us,
                m.speedup(),
                if idx + 1 == results.len() { "" } else { "," }
            ));
        }
        body.push_str("}\n");
        if let Err(error) = std::fs::write(&path, body) {
            eprintln!("columnar_bench: failed to write {path}: {error}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("columnar_bench: row engine and columnar engine agree on every measurement");
}
