//! Figure 5: execution time under iterative (LEO-style) selective improvement of
//! cardinality estimates, for the three slowest queries of the suite.
//!
//! The paper plots queries 16b, 25c and 30a; here the three queries with the longest
//! default execution time play that role. The dotted "perfect" line of the figure is the
//! execution time with perfect-(17) estimates, printed alongside.

use crate::{secs, Harness};
use reopt_core::{selective_improvement, DbError, SelectiveConfig};

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let default_run = harness.run_default()?;
    let slowest: Vec<String> = default_run
        .longest_running(3)
        .iter()
        .map(|q| q.query_id.clone())
        .collect();

    let mut out = String::from(
        "Figure 5: execution time per iteration of selective estimate improvement\n",
    );
    let config = SelectiveConfig {
        threshold: harness.config.threshold,
        max_iterations: 48,
    };
    for query_id in slowest {
        let query = harness
            .queries
            .iter()
            .find(|q| q.query_id_matches(&query_id))
            .cloned()
            .expect("query came from the suite");
        let perfect = harness.run_query_perfect(&query, 17)?;
        let iterations = selective_improvement(&mut harness.db, &query.sql, &config)?;
        out.push_str(&format!(
            "query {query_id} (perfect-estimate execution: {:.4}s, {} iterations to converge)\n",
            secs(perfect.execution),
            iterations.len()
        ));
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>22}\n",
            "iteration", "execute (s)", "q-error", "corrected estimates"
        ));
        for record in &iterations {
            out.push_str(&format!(
                "{:<10} {:>14.4} {:>12.1} {:>22}\n",
                record.iteration,
                secs(record.execution_time),
                record.q_error,
                record.corrections_so_far
            ));
        }
    }
    Ok(out)
}

/// Helper so `JobQuery` can be matched by id without exposing internals here.
trait QueryIdMatch {
    fn query_id_matches(&self, id: &str) -> bool;
}

impl QueryIdMatch for reopt_workload::JobQuery {
    fn query_id_matches(&self, id: &str) -> bool {
        self.id == id
    }
}
