//! Figure 6: an example of the re-optimization rewrite — the original query next to the
//! CREATE TEMP TABLE + rewritten SELECT script the controller produced.

use crate::Harness;
use reopt_core::{execute_with_reoptimization, DbError, ReoptConfig};

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    // The paper's Figure 6 query filters on the 'character-name-in-title' keyword and a
    // name prefix; family 2 variant 'b' of the suite has the same shape. Use a low
    // threshold so the rewrite always triggers on the skewed keyword join.
    let query = harness
        .queries
        .iter()
        .find(|q| q.id == "2b")
        .cloned()
        .expect("suite contains query 2b");
    let config = ReoptConfig::with_threshold(4.0);
    let report = execute_with_reoptimization(&mut harness.db, &query.sql, &config)?;

    let mut out = String::from("Figure 6: example of the re-optimization rewrite\n");
    out.push_str("---- original query ----\n");
    out.push_str(query.sql.trim());
    out.push_str("\n---- re-optimized script ----\n");
    out.push_str(&report.final_sql);
    out.push('\n');
    for (idx, round) in report.rounds.iter().enumerate() {
        out.push_str(&format!(
            "round {}: materialized [{}] (estimated {:.0} rows, actual {} rows, q-error {:.1})\n",
            idx + 1,
            round.materialized_aliases.join(", "),
            round.estimated_rows,
            round.actual_rows,
            round.q_error
        ));
    }
    if report.rounds.is_empty() {
        out.push_str("no join exceeded the threshold; the original plan was kept\n");
    }
    Ok(out)
}
