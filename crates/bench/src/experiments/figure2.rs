//! Figure 2: total planning + execution time of the suite for perfect-(n), n = 0 … 17.

use crate::{secs, Harness};
use reopt_core::DbError;

/// The n values swept (0 = default estimator, 17 = fully perfect).
pub const SWEEP: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17];

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let mut out = String::from(
        "Figure 2: total planning and execution time of the suite with perfect-(n)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12}\n",
        "perfect-(n)", "plan (s)", "execute (s)", "total (s)"
    ));
    for &n in SWEEP {
        let run = harness.run_perfect(n, &format!("Perfect-({n})"))?;
        let plan = secs(run.total_planning());
        let exec = secs(run.total_execution());
        out.push_str(&format!(
            "{n:<12} {plan:>12.3} {exec:>12.3} {:>12.3}\n",
            plan + exec
        ));
    }
    Ok(out)
}
