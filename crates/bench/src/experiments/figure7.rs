//! Figure 7: total planning + execution time of the suite for different re-optimization
//! thresholds, next to the default estimator and perfect-(17).

use crate::experiments::render_timing_table;
use crate::{secs, Harness};
use reopt_core::DbError;

/// The thresholds the paper sweeps.
pub const THRESHOLDS: &[f64] = &[
    2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0, 16384.0,
];

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for &threshold in THRESHOLDS {
        let run = harness.run_reoptimized(threshold, &format!("threshold {threshold}"))?;
        rows.push((
            format!("re-opt @ {threshold}"),
            secs(run.total_planning()),
            secs(run.total_execution()),
        ));
    }
    let default_run = harness.run_default()?;
    rows.push((
        "PostgreSQL-style".to_string(),
        secs(default_run.total_planning()),
        secs(default_run.total_execution()),
    ));
    let perfect = harness.run_perfect(17, "Perfect")?;
    rows.push((
        "Perfect".to_string(),
        secs(perfect.total_planning()),
        secs(perfect.total_execution()),
    ));
    Ok(render_timing_table(
        "Figure 7: planning and execution time vs. re-optimization threshold (Q-error)",
        &rows,
    ))
}
