//! Figure 1: planning + execution time of the top-20 longest running queries under the
//! default estimator, perfect-(3), perfect-(4), re-optimization, and perfect estimates.

use crate::experiments::render_timing_table;
use crate::{secs, Harness};
use reopt_core::DbError;
use std::collections::HashSet;

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    // Identify the top-20 longest running queries under the default estimator.
    let default_run = harness.run_default()?;
    let top: HashSet<String> = default_run
        .longest_running(20)
        .iter()
        .map(|q| q.query_id.clone())
        .collect();

    let sum_over_top = |run: &reopt_core::WorkloadRun| -> (f64, f64) {
        run.queries
            .iter()
            .filter(|q| top.contains(&q.query_id))
            .fold((0.0, 0.0), |(plan, exec), q| {
                (plan + secs(q.planning), exec + secs(q.execution))
            })
    };

    let threshold = harness.config.threshold;
    let perfect3 = harness.run_perfect(3, "Perfect-(3)")?;
    let perfect4 = harness.run_perfect(4, "Perfect-(4)")?;
    let reopt = harness.run_reoptimized(threshold, "Re-optimized")?;
    let perfect = harness.run_perfect(17, "Perfect")?;

    let rows = vec![
        ("PostgreSQL-style".to_string(), sum_over_top(&default_run)),
        ("Perfect-(3)".to_string(), sum_over_top(&perfect3)),
        ("Perfect-(4)".to_string(), sum_over_top(&perfect4)),
        ("Re-optimized".to_string(), sum_over_top(&reopt)),
        ("Perfect".to_string(), sum_over_top(&perfect)),
    ];
    let rows: Vec<(String, f64, f64)> = rows
        .into_iter()
        .map(|(label, (plan, exec))| (label, plan, exec))
        .collect();
    let mut out = render_timing_table(
        &format!(
            "Figure 1: planning + execution time of the top-{} longest running queries",
            top.len()
        ),
        &rows,
    );
    let default_total = rows[0].1 + rows[0].2;
    let reopt_total = rows[3].1 + rows[3].2;
    let perfect_total = rows[4].1 + rows[4].2;
    out.push_str(&format!(
        "re-optimized end-to-end improvement over default: {:.1}%\n",
        (1.0 - reopt_total / default_total.max(1e-9)) * 100.0
    ));
    out.push_str(&format!(
        "perfect end-to-end improvement over default:      {:.1}%\n",
        (1.0 - perfect_total / default_total.max(1e-9)) * 100.0
    ));
    Ok(out)
}
