//! Table III: number of queries in the suite with a given number of tables.

use crate::Harness;
use reopt_core::DbError;
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for query in &harness.queries {
        *histogram.entry(query.table_count).or_default() += 1;
    }
    let mut out = String::from("Table III: number of queries with a given number of tables\n");
    out.push_str(&format!("{:<10} {:>10}\n", "# tables", "# queries"));
    for (tables, count) in &histogram {
        out.push_str(&format!("{tables:<10} {count:>10}\n"));
    }
    out.push_str(&format!(
        "{:<10} {:>10}\n",
        "total",
        histogram.values().sum::<usize>()
    ));
    Ok(out)
}
