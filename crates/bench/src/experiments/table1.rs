//! Table I: number of cardinality estimates on joins of N tables across the whole suite.
//!
//! The paper counts how many distinct cardinality estimates the (modified) PostgreSQL
//! planner requests per join size while optimizing all 113 JOB queries. Here we plan
//! every query of the suite with the default estimator and merge the per-query
//! estimation logs.

use crate::Harness;
use reopt_core::DbError;
use reopt_planner::EstimationLog;

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let mut merged = EstimationLog::default();
    for query in harness.queries.clone() {
        let statement = reopt_sql::parse_sql(&query.sql).map_err(DbError::Parse)?;
        let select = statement.query().expect("suite queries are SELECTs").clone();
        let (planned, _) = harness.db.plan_select(&select)?;
        merged.merge(&planned.estimation_log);
    }

    let mut out = String::from(
        "Table I: number of cardinality estimates on joins of N tables (all 113 queries)\n",
    );
    out.push_str(&format!("{:<18} {:>12}\n", "# tables in join", "# estimates"));
    let mut total = 0u64;
    for size in 1..=merged.max_size() {
        let count = merged.count_for_size(size);
        total += count;
        out.push_str(&format!("{size:<18} {count:>12}\n"));
    }
    out.push_str(&format!("{:<18} {total:>12}\n", "total"));
    Ok(out)
}
