//! Figure 9: per-query execution time under the default estimator, re-optimization and
//! perfect estimates, ordered by the default execution time (ascending, as in the
//! paper's stacked per-query view).

use crate::{secs, Harness};
use reopt_core::DbError;

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let threshold = harness.config.threshold;
    let default_run = harness.run_default()?;
    let reopt_run = harness.run_reoptimized(threshold, "Re-optimized")?;
    let perfect_run = harness.run_perfect(17, "Perfect")?;

    let mut order: Vec<usize> = (0..default_run.queries.len()).collect();
    order.sort_by(|&a, &b| default_run.queries[a].execution.cmp(&default_run.queries[b].execution));

    let mut out = String::from(
        "Figure 9: per-query execution time (s), ordered by default execution time\n",
    );
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>14}\n",
        "query", "default", "re-optimized", "perfect"
    ));
    for idx in order {
        let d = &default_run.queries[idx];
        let r = &reopt_run.queries[idx];
        let p = &perfect_run.queries[idx];
        out.push_str(&format!(
            "{:<8} {:>14.4} {:>14.4} {:>14.4}\n",
            d.query_id,
            secs(d.execution),
            secs(r.execution),
            secs(p.execution)
        ));
    }
    out.push_str(&format!(
        "totals   {:>14.3} {:>14.3} {:>14.3}\n",
        secs(default_run.total_execution()),
        secs(reopt_run.total_execution()),
        secs(perfect_run.total_execution())
    ));
    out.push_str(&format!(
        "re-optimization improves total execution by {:.1}% over the default estimator\n",
        (1.0 - secs(reopt_run.total_execution()) / secs(default_run.total_execution()).max(1e-9))
            * 100.0
    ));
    Ok(out)
}
