//! Figures 3 and 4: the join graphs of the deep-dive queries (6d and 18a in the paper;
//! their analogues 2d and 7a in the suite), rendered as adjacency lists and Graphviz DOT.

use crate::Harness;
use reopt_core::DbError;
use reopt_planner::{bind_select, JoinGraph};

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let mut out = String::new();
    for (figure, query_id, paper_query) in [(3, "2d", "6d"), (4, "7a", "18a")] {
        let query = harness
            .queries
            .iter()
            .find(|q| q.id == query_id)
            .cloned()
            .expect("deep-dive query exists");
        let statement = reopt_sql::parse_sql(&query.sql).map_err(DbError::Parse)?;
        let spec = bind_select(statement.query().expect("SELECT"), harness.db.storage())?;
        let graph = JoinGraph::new(&spec);
        out.push_str(&format!(
            "Figure {figure}: join graph of query {query_id} (paper query {paper_query})\n"
        ));
        out.push_str(&graph.to_ascii(&spec));
        out.push_str(&graph.to_dot(&spec));
        out.push('\n');
    }
    Ok(out)
}
