//! Table II: execution time of the suite's queries with the default (PostgreSQL-style)
//! cardinality estimation, relative to perfect-(17).

use crate::Harness;
use reopt_core::{relative_runtime_buckets, DbError};

/// Render the bucket table shared by Tables II and VI.
pub(crate) fn render_buckets(title: &str, ratios: &[f64]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:<18} {:>18}\n", "relative runtime", "number of queries"));
    for bucket in relative_runtime_buckets(ratios) {
        out.push_str(&format!("{:<18} {:>18}\n", bucket.label, bucket.count));
    }
    out
}

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let default_run = harness.run_default()?;
    let perfect_run = harness.run_perfect(17, "Perfect-(17)")?;
    let ratios: Vec<f64> = default_run
        .queries
        .iter()
        .zip(&perfect_run.queries)
        .map(|(default, perfect)| {
            default.execution.as_secs_f64() / perfect.execution.as_secs_f64().max(1e-9)
        })
        .collect();
    Ok(render_buckets(
        "Table II: execution time with default estimates relative to perfect-(17)",
        &ratios,
    ))
}
