//! Table VI: execution time of the suite's queries with re-optimization, relative to
//! perfect-(17).

use crate::experiments::table2::render_buckets;
use crate::Harness;
use reopt_core::DbError;

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let threshold = harness.config.threshold;
    let reopt_run = harness.run_reoptimized(threshold, "Re-optimized")?;
    let perfect_run = harness.run_perfect(17, "Perfect-(17)")?;
    let ratios: Vec<f64> = reopt_run
        .queries
        .iter()
        .zip(&perfect_run.queries)
        .map(|(reopt, perfect)| {
            reopt.execution.as_secs_f64() / perfect.execution.as_secs_f64().max(1e-9)
        })
        .collect();
    Ok(render_buckets(
        &format!(
            "Table VI: execution time with re-optimization (threshold {threshold}) relative to perfect-(17)"
        ),
        &ratios,
    ))
}
