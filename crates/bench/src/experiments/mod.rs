//! One module per table / figure of the paper. Every experiment takes the shared
//! [`Harness`] and returns the text it printed, so the binary can both
//! display and archive results.

pub mod figure1;
pub mod figure2;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod figures3_4;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table6;

use crate::Harness;
use reopt_core::DbError;

/// The experiments in the order the paper presents them.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "figures3_4", "figure1", "figure2", "figure5", "figure6",
    "figure7", "figure8", "figure9", "table6",
];

/// Run one experiment by name.
pub fn run_experiment(name: &str, harness: &mut Harness) -> Result<String, DbError> {
    match name {
        "table1" => table1::run(harness),
        "table2" => table2::run(harness),
        "table3" => table3::run(harness),
        "table6" => table6::run(harness),
        "figure1" => figure1::run(harness),
        "figure2" => figure2::run(harness),
        "figure5" => figure5::run(harness),
        "figure6" => figure6::run(harness),
        "figure7" => figure7::run(harness),
        "figure8" => figure8::run(harness),
        "figure9" => figure9::run(harness),
        "figures3_4" => figures3_4::run(harness),
        other => Err(DbError::Reoptimization(format!(
            "unknown experiment '{other}' (known: {})",
            ALL_EXPERIMENTS.join(", ")
        ))),
    }
}

/// Render a two-column table of `(label, seconds)` rows.
pub(crate) fn render_timing_table(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>12}\n",
        "configuration", "plan (s)", "execute (s)", "total (s)"
    ));
    for (label, plan, execute) in rows {
        out.push_str(&format!(
            "{label:<24} {plan:>12.3} {execute:>12.3} {:>12.3}\n",
            plan + execute
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HarnessConfig;

    /// One smoke test drives a handful of experiments end-to-end on a tiny instance,
    /// checking they produce the paper-shaped output without errors.
    #[test]
    fn experiments_run_on_a_tiny_instance() {
        let mut harness = Harness::new(HarnessConfig {
            scale: 0.02,
            stride: 29,
            threshold: 32.0,
            seed: 5,
            ..HarnessConfig::default()
        })
        .unwrap();
        for name in ["table3", "figures3_4", "figure6"] {
            let output = run_experiment(name, &mut harness).unwrap();
            assert!(!output.is_empty(), "{name} produced no output");
        }
        assert!(run_experiment("nope", &mut harness).is_err());
    }

    #[test]
    fn timing_table_renders_rows() {
        let text = render_timing_table(
            "Figure X",
            &[("PostgreSQL".to_string(), 1.0, 2.0), ("Perfect".to_string(), 0.5, 1.0)],
        );
        assert!(text.contains("Figure X"));
        assert!(text.contains("PostgreSQL"));
        assert!(text.contains("3.000"));
    }
}
