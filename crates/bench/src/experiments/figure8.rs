//! Figure 8: total execution time of the suite with perfect-(n) estimates, with and
//! without re-optimization on top, for n = 0 … 17.

use crate::{secs, Harness};
use reopt_core::DbError;

/// Run the experiment.
pub fn run(harness: &mut Harness) -> Result<String, DbError> {
    let threshold = harness.config.threshold;
    let mut out = String::from(
        "Figure 8: execution time of perfect-(n) with and without re-optimization\n",
    );
    out.push_str(&format!(
        "{:<12} {:>18} {:>26}\n",
        "perfect-(n)", "execute (s)", "execute + re-opt (s)"
    ));
    for &n in super::figure2::SWEEP {
        let plain = harness.run_perfect(n, &format!("Perfect-({n})"))?;
        let reopt =
            harness.run_perfect_with_reopt(n, threshold, &format!("Perfect-({n})+reopt"))?;
        out.push_str(&format!(
            "{n:<12} {:>18.3} {:>26.3}\n",
            secs(plain.total_execution()),
            secs(reopt.total_execution())
        ));
    }
    Ok(out)
}
