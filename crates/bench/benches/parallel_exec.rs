//! Morsel-driven parallel execution benchmarks: join-heavy JOB queries executed at
//! 1/2/4/8 worker threads through `Executor::with_threads`. Thread count 1 takes the
//! single-threaded engine (the exact code path of the `job_join_heavy` group in
//! `execution.rs`), so the 1-thread numbers double as the baseline for the speedup
//! ratios recorded in `BENCH_PARALLEL.json`.
//!
//! Interpreting results requires knowing the core count of the box: on a single-vCPU
//! machine the >1-thread numbers measure pure coordination overhead (workers
//! time-slice one core), not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_executor::Executor;
use reopt_sql::parse_sql;

/// Join-heavy JOB queries whose plans the parallel engine fully supports (hash and
/// index-NL joins under a single-row aggregate).
const QUERIES: &[&str] = &["2a", "6a", "20a"];

fn parallel_exec(c: &mut Criterion) {
    let harness = Harness::new(HarnessConfig {
        scale: 0.03,
        stride: 1,
        threshold: 32.0,
        seed: 7,
        ..HarnessConfig::default()
    })
    .expect("harness builds");
    let mut group = c.benchmark_group("parallel_exec");
    group.sample_size(10);
    for id in QUERIES {
        let query = harness
            .queries
            .iter()
            .find(|q| &q.id == id)
            .expect("query exists")
            .clone();
        let statement = parse_sql(&query.sql).unwrap();
        let select = statement.query().unwrap().clone();
        let (planned, _) = harness.db.plan_select(&select).expect("plans");
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(*id, threads), |b| {
                let executor = Executor::new(harness.db.storage()).with_threads(threads);
                b.iter(|| executor.execute(&planned.plan).expect("executes"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, parallel_exec);
criterion_main!(benches);
