//! Morsel-driven parallel execution benchmarks: join-heavy JOB queries executed at
//! 1/2/4/8 worker threads through `Executor::with_threads`. Thread count 1 takes the
//! single-threaded engine (the exact code path of the `job_join_heavy` group in
//! `execution.rs`), so the 1-thread numbers double as the baseline for the speedup
//! ratios recorded in `BENCH_PARALLEL.json`.
//!
//! Interpreting results requires knowing the core count of the box: on a single-vCPU
//! machine the >1-thread numbers measure pure coordination overhead (workers
//! time-slice one core), not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_executor::Executor;
use reopt_planner::{CardinalityOverrides, Optimizer, OptimizerConfig, PlannedQuery};
use reopt_sql::parse_sql;

/// Join-heavy JOB queries whose plans the parallel engine fully supports (hash and
/// index-NL joins under a single-row aggregate).
const QUERIES: &[&str] = &["2a", "6a", "20a"];

/// Plan `sql` over the harness data under a specific optimizer configuration
/// (how the merge-join and NL-join scenarios force their plan family).
fn plan_with(harness: &Harness, sql: &str, config: OptimizerConfig) -> PlannedQuery {
    let statement = parse_sql(sql).expect("scenario SQL parses");
    let select = statement.query().expect("scenario SQL is a query");
    Optimizer::new(config)
        .plan_select(
            select,
            harness.db.storage(),
            harness.db.catalog(),
            &CardinalityOverrides::new(),
        )
        .expect("scenario plans")
}

/// The formerly-denylisted plan shapes, now parallel-supported: a merge join
/// (hash/index-NL disabled), a plain NL join (only NL enabled), and LIMIT roots
/// with and without a plan-defined order. All must scale with threads — or on a
/// single-vCPU box, cost only coordination overhead.
fn shape_scenarios(harness: &Harness) -> Vec<(&'static str, PlannedQuery)> {
    let merge_only = OptimizerConfig {
        enable_index_scans: false,
        enable_hash_joins: false,
        enable_index_nl_joins: false,
        ..OptimizerConfig::default()
    };
    let nl_only = OptimizerConfig {
        enable_index_scans: false,
        enable_hash_joins: false,
        enable_merge_joins: false,
        enable_index_nl_joins: false,
        ..OptimizerConfig::default()
    };
    vec![
        (
            "merge_join",
            plan_with(
                harness,
                "SELECT t.id AS id, mk.keyword_id AS kid
                 FROM title AS t, movie_keyword AS mk
                 WHERE t.id = mk.movie_id",
                merge_only,
            ),
        ),
        (
            "nl_join",
            plan_with(
                harness,
                "SELECT mk.movie_id AS mid, k.keyword AS kw
                 FROM movie_keyword AS mk, keyword AS k
                 WHERE mk.keyword_id = k.id",
                nl_only,
            ),
        ),
        (
            "limit_scan",
            plan_with(
                harness,
                "SELECT t.id AS id FROM title AS t LIMIT 100",
                OptimizerConfig::default(),
            ),
        ),
        (
            "limit_order_by",
            plan_with(
                harness,
                "SELECT t.id AS id FROM title AS t ORDER BY id DESC LIMIT 100",
                OptimizerConfig::default(),
            ),
        ),
    ]
}

fn parallel_exec(c: &mut Criterion) {
    let harness = Harness::new(HarnessConfig {
        scale: 0.03,
        stride: 1,
        threshold: 32.0,
        seed: 7,
        ..HarnessConfig::default()
    })
    .expect("harness builds");
    let mut group = c.benchmark_group("parallel_exec");
    group.sample_size(10);
    for id in QUERIES {
        let query = harness
            .queries
            .iter()
            .find(|q| &q.id == id)
            .expect("query exists")
            .clone();
        let statement = parse_sql(&query.sql).unwrap();
        let select = statement.query().unwrap().clone();
        let (planned, _) = harness.db.plan_select(&select).expect("plans");
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(*id, threads), |b| {
                let executor = Executor::new(harness.db.storage()).with_threads(threads);
                b.iter(|| executor.execute(&planned.plan).expect("executes"));
            });
        }
    }
    for (name, planned) in shape_scenarios(&harness) {
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(name, threads), |b| {
                let executor = Executor::new(harness.db.storage()).with_threads(threads);
                b.iter(|| executor.execute(&planned.plan).expect("executes"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, parallel_exec);
criterion_main!(benches);
