//! Optimizer micro-benchmarks: planning latency vs. number of relations, DPccp vs.
//! greedy enumeration (the ablation called out in DESIGN.md), and planning with the
//! perfect oracle's override table in place.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_planner::enumerate::enumerate_csg_cmp_pairs;
use reopt_planner::{bind_select, CardinalityOverrides, JoinGraph, Optimizer, OptimizerConfig};
use reopt_sql::parse_sql;

fn harness() -> Harness {
    Harness::new(HarnessConfig {
        scale: 0.02,
        stride: 1,
        threshold: 32.0,
        seed: 11,
        ..HarnessConfig::default()
    })
    .expect("harness builds")
}

fn planning_by_relation_count(c: &mut Criterion) {
    let harness = harness();
    let mut group = c.benchmark_group("planning_by_relation_count");
    group.sample_size(10);
    for table_count in [4usize, 7, 10, 12, 17] {
        let query = harness
            .queries
            .iter()
            .find(|q| q.table_count == table_count)
            .expect("suite covers this size")
            .clone();
        let statement = parse_sql(&query.sql).unwrap();
        let select = statement.query().unwrap().clone();

        // The estimator memoizes join-edge selectivities across DP pairs: every
        // subset estimate beyond the first touch of an edge must be a memo hit, and
        // the bigger the join graph the more the memo carries (a 17-relation DPccp
        // run walks each edge thousands of times). Above `greedy_threshold`
        // (empirically 12 — see `OptimizerConfig::greedy_threshold` for the
        // measurements behind the crossover) the default configuration enumerates
        // greedily instead, which makes far fewer subset estimates; the DP-strength
        // hit-rate floor only applies inside the DP regime.
        let (planned, _) = harness.db.plan_select(&select).expect("plans");
        let log = &planned.estimation_log;
        let hit_rate = log.selectivity_memo_hit_rate();
        assert!(
            hit_rate > 0.5,
            "{table_count}-relation planning: selectivity memo hit rate {hit_rate:.3} \
             ({} hits / {} misses) — memoization across DP pairs regressed",
            log.selectivity_memo_hits,
            log.selectivity_memo_misses,
        );
        let dp_regime = table_count <= OptimizerConfig::default().greedy_threshold;
        if table_count >= 10 && dp_regime {
            assert!(
                hit_rate > 0.9,
                "{table_count}-relation planning: expected >90% memo hits, got {hit_rate:.3}"
            );
        }

        group.bench_with_input(
            BenchmarkId::from_parameter(table_count),
            &select,
            |b, select| {
                b.iter(|| harness.db.plan_select(select).expect("plans"));
            },
        );
    }
    group.finish();
}

fn dpccp_vs_greedy(c: &mut Criterion) {
    let harness = harness();
    let query = harness
        .queries
        .iter()
        .find(|q| q.table_count == 12)
        .unwrap()
        .clone();
    let statement = parse_sql(&query.sql).unwrap();
    let select = statement.query().unwrap().clone();
    let overrides = CardinalityOverrides::new();

    let mut group = c.benchmark_group("enumeration_algorithm");
    group.sample_size(10);
    group.bench_function("dpccp_12_relations", |b| {
        let optimizer = Optimizer::new(OptimizerConfig::default());
        b.iter(|| {
            optimizer
                .plan_select(&select, harness.db.storage(), harness.db.catalog(), &overrides)
                .expect("plans")
        });
    });
    group.bench_function("greedy_12_relations", |b| {
        let optimizer = Optimizer::new(OptimizerConfig {
            greedy_threshold: 2,
            ..OptimizerConfig::default()
        });
        b.iter(|| {
            optimizer
                .plan_select(&select, harness.db.storage(), harness.db.catalog(), &overrides)
                .expect("plans")
        });
    });
    group.finish();
}

/// Raw csg-cmp-pair enumeration over the biggest JOB join graphs: the component the
/// bitset neighborhood-mask fast path targets (planning latency minus costing).
fn csg_cmp_pair_enumeration(c: &mut Criterion) {
    let harness = harness();
    let mut group = c.benchmark_group("csg_cmp_pair_enumeration");
    group.sample_size(10);
    for table_count in [12usize, 14, 17] {
        let query = harness
            .queries
            .iter()
            .find(|q| q.table_count == table_count)
            .expect("suite covers this size")
            .clone();
        let statement = parse_sql(&query.sql).unwrap();
        let spec = bind_select(statement.query().unwrap(), harness.db.storage()).unwrap();
        let graph = JoinGraph::new(&spec);
        let n = spec.relation_count();
        group.bench_function(BenchmarkId::from_parameter(table_count), |b| {
            b.iter(|| black_box(enumerate_csg_cmp_pairs(&graph, n)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    planning_by_relation_count,
    dpccp_vs_greedy,
    csg_cmp_pair_enumeration
);
criterion_main!(benches);
