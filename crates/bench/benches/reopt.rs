//! Re-optimization overhead benchmarks: the cost of a plain execution vs. the
//! materialize-and-replan scheme vs. the inject-only ablation, on a query with a badly
//! under-estimated skewed join.

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_core::{execute_with_reoptimization, ReoptConfig, ReoptMode};

fn harness() -> Harness {
    Harness::new(HarnessConfig {
        scale: 0.03,
        stride: 1,
        threshold: 32.0,
        seed: 19,
        ..HarnessConfig::default()
    })
    .expect("harness builds")
}

fn reoptimization_modes(c: &mut Criterion) {
    let mut harness = harness();
    // Family 2 (the 6d analogue) filters on the popular-keyword class, which the default
    // estimator underestimates by orders of magnitude.
    let query = harness
        .queries
        .iter()
        .find(|q| q.id == "2a")
        .unwrap()
        .clone();

    let mut group = c.benchmark_group("reoptimization_modes");
    group.sample_size(10);
    group.bench_function("plain_execution", |b| {
        b.iter(|| harness.db.execute(&query.sql).expect("runs"));
    });
    group.bench_function("materialize_and_replan", |b| {
        let config = ReoptConfig::with_threshold(8.0);
        b.iter(|| execute_with_reoptimization(&mut harness.db, &query.sql, &config).expect("runs"));
    });
    group.bench_function("inject_only", |b| {
        let config = ReoptConfig {
            threshold: 8.0,
            mode: ReoptMode::InjectOnly,
            ..ReoptConfig::default()
        };
        b.iter(|| execute_with_reoptimization(&mut harness.db, &query.sql, &config).expect("runs"));
    });
    group.finish();
}

fn threshold_sensitivity(c: &mut Criterion) {
    let mut harness = harness();
    let query = harness
        .queries
        .iter()
        .find(|q| q.id == "2c")
        .unwrap()
        .clone();
    let mut group = c.benchmark_group("reopt_threshold");
    group.sample_size(10);
    for threshold in [2.0f64, 32.0, 16384.0] {
        group.bench_function(format!("threshold_{threshold}"), |b| {
            let config = ReoptConfig::with_threshold(threshold);
            b.iter(|| {
                execute_with_reoptimization(&mut harness.db, &query.sql, &config).expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, reoptimization_modes, threshold_sensitivity);
criterion_main!(benches);
