//! Re-optimization overhead benchmarks: the cost of a plain execution vs. the
//! materialize-and-replan scheme vs. the inject-only ablation vs. true mid-query
//! re-optimization (suspend at the breaker, reuse the build state, re-plan the
//! remainder), on a query with a badly under-estimated skewed join.

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_core::{execute_with_reoptimization, Database, ReoptConfig, ReoptMode};
use reopt_planner::OptimizerConfig;
use reopt_workload::{job_queries, load_imdb, ImdbConfig};

fn harness() -> Harness {
    Harness::new(HarnessConfig {
        scale: 0.03,
        stride: 1,
        threshold: 32.0,
        seed: 19,
        ..HarnessConfig::default()
    })
    .expect("harness builds")
}

fn reoptimization_modes(c: &mut Criterion) {
    let mut harness = harness();
    // Family 2 (the 6d analogue) filters on the popular-keyword class, which the default
    // estimator underestimates by orders of magnitude.
    let query = harness
        .queries
        .iter()
        .find(|q| q.id == "2a")
        .unwrap()
        .clone();

    let mut group = c.benchmark_group("reoptimization_modes");
    group.sample_size(10);
    group.bench_function("plain_execution", |b| {
        b.iter(|| harness.db.execute(&query.sql).expect("runs"));
    });
    group.bench_function("materialize_and_replan", |b| {
        let config = ReoptConfig::with_threshold(8.0);
        b.iter(|| execute_with_reoptimization(&mut harness.db, &query.sql, &config).expect("runs"));
    });
    group.bench_function("inject_only", |b| {
        let config = ReoptConfig {
            threshold: 8.0,
            mode: ReoptMode::InjectOnly,
            ..ReoptConfig::default()
        };
        b.iter(|| execute_with_reoptimization(&mut harness.db, &query.sql, &config).expect("runs"));
    });
    group.finish();
}

/// Mid-query re-optimization against the restart-based scheme on the same skewed
/// query: the mode pays one partial run up to the suspension (whose breaker build is
/// *reused* as a virtual leaf) instead of a full detection restart plus a
/// re-materialization. Hash-join-only plans are forced so the mis-estimated subtree
/// lands on a build side — the default plans here lean on index-nested-loop joins,
/// whose base-table inners give a mid-query monitor nothing to suspend on.
fn mid_query(c: &mut Criterion) {
    let mut db = Database::with_config(OptimizerConfig {
        enable_index_scans: false,
        enable_index_nl_joins: false,
        enable_merge_joins: false,
        ..Default::default()
    });
    load_imdb(&mut db, &ImdbConfig { scale: 0.03, seed: 19 }).expect("imdb loads");
    // Family 10's join-crossing correlation mis-estimates a mid-plan hash build by
    // three orders of magnitude.
    let query = job_queries()
        .into_iter()
        .find(|q| q.id == "10a")
        .unwrap();

    let mut group = c.benchmark_group("mid_query");
    group.sample_size(10);
    group.bench_function("plain_execution", |b| {
        b.iter(|| db.execute(&query.sql).expect("runs"));
    });
    for (label, mode) in [
        ("materialize_and_replan", ReoptMode::Materialize),
        ("mid_query_replan", ReoptMode::MidQuery),
    ] {
        group.bench_function(label, |b| {
            let config = ReoptConfig {
                threshold: 8.0,
                mode,
                ..ReoptConfig::default()
            };
            b.iter(|| {
                let report =
                    execute_with_reoptimization(&mut db, &query.sql, &config).expect("runs");
                assert!(report.reoptimized(), "{label} must trigger on 10a");
                report
            });
        });
    }

    // The index-NL scenario: under the *default* optimizer configuration the same
    // query plans as a pure index-nested-loop pipeline — no breaker state exists, so
    // the old breaker-only monitor never fired here and MidQuery silently degenerated
    // to plain execution. Streaming Progress events close that gap: the skewed join
    // overshoots its estimate after a few batches and the policy re-plans mid-flight,
    // where the restart policy pays a full detection execution per round.
    let mut default_db = Database::new();
    load_imdb(&mut default_db, &ImdbConfig { scale: 0.03, seed: 19 }).expect("imdb loads");
    group.bench_function("index_nl_plain", |b| {
        b.iter(|| default_db.execute(&query.sql).expect("runs"));
    });
    group.bench_function("index_nl_materialize_restart", |b| {
        // The paper's threshold (32): only the two-orders-of-magnitude violation
        // triggers, so both policies perform exactly one corrective round.
        let config = ReoptConfig::with_threshold(32.0);
        b.iter(|| {
            let report = execute_with_reoptimization(&mut default_db, &query.sql, &config)
                .expect("runs");
            assert!(report.reoptimized(), "restart must trigger on index-NL 10a");
            report
        });
    });
    group.bench_function("index_nl_progress_replan", |b| {
        let config = ReoptConfig {
            threshold: 32.0,
            mode: ReoptMode::MidQuery,
            ..ReoptConfig::default()
        };
        b.iter(|| {
            let report = execute_with_reoptimization(&mut default_db, &query.sql, &config)
                .expect("runs");
            assert!(
                report
                    .rounds
                    .iter()
                    .any(|round| round.trigger == reopt_core::ReoptTrigger::Progress),
                "a streaming progress event must trigger on index-NL 10a"
            );
            report
        });
    });
    group.finish();
}

fn threshold_sensitivity(c: &mut Criterion) {
    let mut harness = harness();
    let query = harness
        .queries
        .iter()
        .find(|q| q.id == "2c")
        .unwrap()
        .clone();
    let mut group = c.benchmark_group("reopt_threshold");
    group.sample_size(10);
    for threshold in [2.0f64, 32.0, 16384.0] {
        group.bench_function(format!("threshold_{threshold}"), |b| {
            let config = ReoptConfig::with_threshold(threshold);
            b.iter(|| {
                execute_with_reoptimization(&mut harness.db, &query.sql, &config).expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, reoptimization_modes, mid_query, threshold_sensitivity);
criterion_main!(benches);
