//! Cardinality-estimation micro-benchmarks: per-subset estimation cost and the cost of
//! the ANALYZE pass that feeds the estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_catalog::{analyze_table, AnalyzeOptions};
use reopt_planner::{bind_select, CardinalityEstimator, CardinalityOverrides, RelSet};
use reopt_sql::parse_sql;

fn harness() -> Harness {
    Harness::new(HarnessConfig {
        scale: 0.02,
        stride: 1,
        threshold: 32.0,
        seed: 13,
        ..HarnessConfig::default()
    })
    .expect("harness builds")
}

fn estimate_all_subsets(c: &mut Criterion) {
    let harness = harness();
    let query = harness
        .queries
        .iter()
        .find(|q| q.table_count == 8)
        .unwrap()
        .clone();
    let statement = parse_sql(&query.sql).unwrap();
    let spec = bind_select(statement.query().unwrap(), harness.db.storage()).unwrap();
    let overrides = CardinalityOverrides::new();

    let mut group = c.benchmark_group("cardinality_estimation");
    group.sample_size(20);
    group.bench_function("estimate_8_relation_query", |b| {
        b.iter(|| {
            let estimator =
                CardinalityEstimator::new(&spec, harness.db.catalog(), &overrides);
            // Ask for every pair and the full set, as the DP enumerator would.
            let n = spec.relation_count();
            let mut total = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    total += estimator.estimate(RelSet::from_indexes([i, j]));
                }
            }
            total += estimator.estimate(spec.all_relations());
            total
        });
    });
    group.finish();
}

fn analyze_cost(c: &mut Criterion) {
    let harness = harness();
    let table = harness.db.storage().table("cast_info").unwrap().clone();
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    for target in [10usize, 100] {
        group.bench_function(format!("cast_info_target_{target}"), |b| {
            let options = AnalyzeOptions {
                statistics_target: target,
                ..AnalyzeOptions::default()
            };
            b.iter(|| analyze_table(&table, &options));
        });
    }
    group.finish();
}

criterion_group!(benches, estimate_all_subsets, analyze_cost);
criterion_main!(benches);
