//! Executor micro-benchmarks: the join algorithms on the Nasdaq skew example, which is
//! exactly the plan-flip scenario the paper's deep dives describe (a mis-estimated
//! intermediate makes the nested-loop strategy catastrophically slower than a hash join).

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_bench::{Harness, HarnessConfig};
use reopt_core::Database;
use reopt_executor::Executor;
use reopt_planner::{CardinalityOverrides, Optimizer, OptimizerConfig};
use reopt_sql::parse_sql;
use reopt_workload::{load_nasdaq, NasdaqConfig};

/// Every group in this file pins the single-threaded engine: these benches continue
/// the BENCH_BASELINE → BENCH_PIPELINED → BENCH_MIDQUERY trajectory, whose numbers
/// would become incomparable if `default_thread_count()` silently switched engines
/// with the host's core count. The thread dimension is benchmarked explicitly in
/// `parallel_exec.rs`.
fn execute_single_threaded(
    plan: &reopt_planner::PhysicalPlan,
    storage: &reopt_storage::Storage,
) -> reopt_executor::ExecutionResult {
    Executor::new(storage)
        .with_threads(1)
        .execute(plan)
        .expect("executes")
}

const VOLUME_QUERY: &str = "SELECT count(*) AS c
FROM company AS c, trades AS tr
WHERE c.id = tr.company_id AND c.symbol = 'APPL'";

fn database() -> Database {
    let mut db = Database::new();
    load_nasdaq(
        &mut db,
        &NasdaqConfig {
            companies: 1_000,
            trades: 30_000,
            ..NasdaqConfig::default()
        },
    )
    .unwrap();
    db
}

fn join_algorithms(c: &mut Criterion) {
    let db = database();
    let statement = parse_sql(VOLUME_QUERY).unwrap();
    let select = statement.query().unwrap().clone();
    let overrides = CardinalityOverrides::new();

    let mut group = c.benchmark_group("join_algorithms_nasdaq");
    group.sample_size(10);
    for (label, hash, merge, inl) in [
        ("hash_join", true, false, false),
        ("merge_join", false, true, false),
        ("index_nested_loop", false, false, true),
    ] {
        let optimizer = Optimizer::new(OptimizerConfig {
            enable_hash_joins: hash,
            enable_merge_joins: merge,
            enable_index_nl_joins: inl,
            ..OptimizerConfig::default()
        });
        let planned = optimizer
            .plan_select(&select, db.storage(), db.catalog(), &overrides)
            .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| execute_single_threaded(&planned.plan, db.storage()));
        });
    }
    group.finish();
}

fn full_query_execution(c: &mut Criterion) {
    let mut db = database();
    db.set_threads(Some(1));
    let mut group = c.benchmark_group("end_to_end_nasdaq");
    group.sample_size(10);
    group.bench_function("plan_and_execute", |b| {
        b.iter(|| db.execute(VOLUME_QUERY).expect("runs"));
    });
    group.finish();
}

/// Join-heavy JOB queries: many-to-many fan-out through several joins under an
/// aggregate, where the pipelined executor's win (no materialized intermediates) shows.
fn job_join_heavy(c: &mut Criterion) {
    let harness = Harness::new(HarnessConfig {
        scale: 0.03,
        stride: 1,
        threshold: 32.0,
        seed: 7,
        ..HarnessConfig::default()
    })
    .expect("harness builds");
    let mut group = c.benchmark_group("job_join_heavy");
    group.sample_size(10);
    for id in ["2a", "2d", "6a", "11a", "20a"] {
        let query = harness.queries.iter().find(|q| q.id == id).unwrap().clone();
        let statement = parse_sql(&query.sql).unwrap();
        let select = statement.query().unwrap().clone();
        let (planned, _) = harness.db.plan_select(&select).expect("plans");
        group.bench_function(id, |b| {
            b.iter(|| execute_single_threaded(&planned.plan, harness.db.storage()));
        });
    }
    group.finish();
}

criterion_group!(benches, join_algorithms, full_query_execution, job_join_heavy);
criterion_main!(benches);
