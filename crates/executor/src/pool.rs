//! The resident worker pool: one process-lifetime set of threads multiplexing
//! morsels from every in-flight query.
//!
//! Before this module existed, every parallel pipeline spawned scoped
//! `std::thread`s and joined them before returning — acceptable for one query at
//! a time, but it (a) pays thread-spawn latency on every pipeline of every
//! mid-query re-optimization round (milliseconds that the paper's ms-scale
//! rounds cannot hide), and (b) gives the OS scheduler, not the engine, control
//! over how concurrent queries share cores. Here, queries register as **tasks**;
//! each task owns a FIFO queue of jobs (one job processes one morsel, then
//! re-enqueues itself at the back of its task's queue), and the pool's workers
//! pick the next job by:
//!
//! 1. **priority** — the highest-priority task with queued work wins;
//! 2. **round-robin** — among tasks of equal priority, the least-recently-served
//!    task wins, so equal-priority queries interleave at morsel granularity
//!    instead of running back-to-back.
//!
//! Job closures are `'static`: pipelines hand them `Arc`-owned compiled state
//! (see `parallel::Compiled`), so a query that is dropped mid-stream leaves its
//! jobs to drain harmlessly — they observe the query's quiesce flag and exit.
//! Quiesce scoping is therefore per-task by construction: suspending one query
//! stops *its* jobs at the next morsel boundary while every other task's queue
//! keeps draining.
//!
//! The pool grows on demand (`ensure_available`) up to [`MAX_POOL_THREADS`] and
//! never shrinks; [`WorkerPool::threads_spawned_total`] exposes the lifetime spawn count so
//! regression tests can pin "repeated re-optimization rounds reuse the resident
//! workers instead of spawning".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Cap on resident worker threads *actively eligible for work*. Workers parked
/// inside a [`TaskHandle::blocking`] section (e.g. a root-exchange send to a slow
/// client) are exempted from this count: if they were not, a pool full of
/// slow-client senders would starve every other query's queued jobs — coordinators
/// waiting on their [`Gate`] would never see a worker again. Total thread count is
/// therefore bounded by `MAX_POOL_THREADS + concurrently-blocked senders`, which
/// admission control keeps finite.
pub const MAX_POOL_THREADS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct TaskSlot {
    id: u64,
    priority: u8,
    queue: VecDeque<Job>,
    /// Live [`TaskHandle`]s (clones included). The slot is removed when the last
    /// handle drops; queued jobs hold a handle inside their closure, so a zero
    /// refcount implies an empty queue.
    refs: usize,
    /// Serve-clock stamp of the last job a worker took from this task; the
    /// round-robin tie-break picks the smallest stamp.
    last_served: u64,
}

#[derive(Default)]
struct PoolState {
    slots: Vec<TaskSlot>,
    serve_clock: u64,
    /// Workers currently parked on the condvar waiting for work.
    idle: usize,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work: Condvar,
    spawned_total: AtomicUsize,
    /// Workers currently parked inside a [`TaskHandle::blocking`] section; they
    /// hold a thread but cannot serve the queue, so the spawn cap excludes them.
    blocked: AtomicUsize,
}

impl PoolInner {
    /// Pick the next job: highest priority first, least-recently-served among
    /// equals. Returns `None` when no task has queued work.
    fn pick(state: &mut PoolState) -> Option<Job> {
        let mut best: Option<usize> = None;
        for (idx, slot) in state.slots.iter().enumerate() {
            if slot.queue.is_empty() {
                continue;
            }
            best = match best {
                None => Some(idx),
                Some(current) => {
                    let cur = &state.slots[current];
                    if slot.priority > cur.priority
                        || (slot.priority == cur.priority && slot.last_served < cur.last_served)
                    {
                        Some(idx)
                    } else {
                        Some(current)
                    }
                }
            };
        }
        let idx = best?;
        state.serve_clock += 1;
        state.slots[idx].last_served = state.serve_clock;
        state.slots[idx].queue.pop_front()
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool state");
                loop {
                    if let Some(job) = Self::pick(&mut state) {
                        break job;
                    }
                    state.idle += 1;
                    state = self.work.wait(state).expect("pool state");
                    state.idle -= 1;
                }
            };
            // A panicking job must not kill the resident worker: the thread (and
            // its MAX_POOL_THREADS slot) would leak for the process lifetime and
            // its query's gate would never count down. Jobs signal failure through
            // their own shared query state (see `parallel::run_chain_slice`); the
            // payload is already reported there, so it is dropped here.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        }
    }

    /// Spawn one worker unless the cap is reached. The cap check and the counter
    /// bump happen under the state lock, so concurrent callers cannot both pass
    /// the check and overshoot [`MAX_POOL_THREADS`]. Workers inside a blocking
    /// section are exempt from the cap (see [`MAX_POOL_THREADS`]).
    fn try_spawn_worker(self: &Arc<Self>) -> bool {
        let n = {
            let _state = self.state.lock().expect("pool state");
            let spawned = self.spawned_total.load(Ordering::SeqCst);
            let blocked = self.blocked.load(Ordering::SeqCst);
            if spawned.saturating_sub(blocked) >= MAX_POOL_THREADS {
                return false;
            }
            self.spawned_total.fetch_add(1, Ordering::SeqCst)
        };
        let inner = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("reopt-worker-{n}"))
            .spawn(move || inner.worker_loop())
            .expect("spawn pool worker");
        true
    }
}

/// The process-wide worker pool. Obtain it with [`WorkerPool::global`].
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// A private pool instance. Production code shares [`WorkerPool::global`];
    /// tests needing deterministic worker counts build their own.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState::default()),
                work: Condvar::new(),
                spawned_total: AtomicUsize::new(0),
                blocked: AtomicUsize::new(0),
            }),
        }
    }

    /// The one resident pool, created on first use with zero threads (workers are
    /// spawned on demand by [`WorkerPool::ensure_available`]).
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Register a new task (one query pipeline run) at the given priority and
    /// return its submission handle.
    pub fn register(&self, priority: u8) -> TaskHandle {
        static NEXT_TASK: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT_TASK.fetch_add(1, Ordering::SeqCst) as u64;
        let mut state = self.inner.state.lock().expect("pool state");
        state.slots.push(TaskSlot {
            id,
            priority,
            queue: VecDeque::new(),
            refs: 1,
            last_served: 0,
        });
        TaskHandle {
            pool: Arc::clone(&self.inner),
            id,
        }
    }

    /// Grow the pool so at least `n` workers are idle right now (best-effort:
    /// concurrent submissions may grab them), without exceeding
    /// [`MAX_POOL_THREADS`] total. Workers blocked inside jobs do not count as
    /// idle, so a task queued behind long-running work still gets fresh threads
    /// up to the cap.
    pub fn ensure_available(&self, n: usize) {
        let deficit = {
            let state = self.inner.state.lock().expect("pool state");
            n.saturating_sub(state.idle)
        };
        for _ in 0..deficit {
            if !self.inner.try_spawn_worker() {
                break;
            }
        }
    }

    /// Lifetime count of threads this pool has spawned. Monotonic; the
    /// perf-smoke regression assertion pins that repeated re-optimization rounds
    /// leave this unchanged once the pool is warm.
    pub fn threads_spawned_total(&self) -> usize {
        self.inner.spawned_total.load(Ordering::SeqCst)
    }

    /// Number of tasks currently registered (live handles or queued work).
    pub fn task_count(&self) -> usize {
        self.inner.state.lock().expect("pool state").slots.len()
    }
}

/// A handle for submitting jobs under one registered task. Clones share the
/// task; the task slot is removed when the last handle drops.
pub struct TaskHandle {
    pool: Arc<PoolInner>,
    id: u64,
}

impl TaskHandle {
    /// Enqueue a job at the back of this task's queue.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let needs_worker = {
            let mut state = self.pool.state.lock().expect("pool state");
            if let Some(slot) = state.slots.iter_mut().find(|slot| slot.id == self.id) {
                slot.queue.push_back(Box::new(job));
            }
            // With every worker either busy or parked in a blocking section, this
            // job could otherwise wait behind sends that only unblock when some
            // client pulls; a replacement keeps the queue draining.
            state.idle == 0 && self.pool.blocked.load(Ordering::SeqCst) > 0
        };
        self.pool.work.notify_one();
        if needs_worker {
            self.pool.try_spawn_worker();
        }
    }

    /// Run `f`, which may block indefinitely (e.g. a root-exchange send to a
    /// client that pulls slowly), without letting this thread starve the pool:
    /// while inside, the thread does not count against [`MAX_POOL_THREADS`], and
    /// a replacement worker is spawned when *other* tasks have queued work with
    /// no idle worker left to take it. Blocking on this task's own exchange needs
    /// no replacement — that backpressure is intentional.
    pub fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        // Guard so an unwinding `f` (workers catch panics) cannot leak the
        // blocked count and permanently inflate the cap exemption.
        struct Unblock<'a>(&'a PoolInner);
        impl Drop for Unblock<'_> {
            fn drop(&mut self) {
                self.0.blocked.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.pool.blocked.fetch_add(1, Ordering::SeqCst);
        let _unblock = Unblock(&self.pool);
        let needs_worker = {
            let state = self.pool.state.lock().expect("pool state");
            state.idle == 0
                && state
                    .slots
                    .iter()
                    .any(|slot| slot.id != self.id && !slot.queue.is_empty())
        };
        if needs_worker {
            self.pool.try_spawn_worker();
        }
        f()
    }
}

impl Clone for TaskHandle {
    fn clone(&self) -> Self {
        let mut state = self.pool.state.lock().expect("pool state");
        if let Some(slot) = state.slots.iter_mut().find(|slot| slot.id == self.id) {
            slot.refs += 1;
        }
        drop(state);
        Self {
            pool: Arc::clone(&self.pool),
            id: self.id,
        }
    }
}

impl Drop for TaskHandle {
    fn drop(&mut self) {
        let removed = {
            let mut state = self.pool.state.lock().expect("pool state");
            match state.slots.iter().position(|slot| slot.id == self.id) {
                Some(idx) => {
                    state.slots[idx].refs -= 1;
                    if state.slots[idx].refs == 0 {
                        // Queued jobs capture a handle, so refs == 0 normally
                        // implies no queued work; any stragglers are dropped
                        // below, outside the lock (their captured handles
                        // re-enter this Drop).
                        Some(state.slots.remove(idx))
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        drop(removed);
    }
}

/// A countdown barrier for one pipeline run: the coordinator waits until every
/// chain job has retired, running `pump` (the observer event drain) in between
/// so workers never stall behind an undrained event queue.
pub struct Gate {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Gate {
    pub fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    /// Retire one chain. Called by pool workers when their chain finishes.
    pub fn done_one(&self) {
        let mut remaining = self.remaining.lock().expect("gate");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    pub fn finished(&self) -> bool {
        *self.remaining.lock().expect("gate") == 0
    }

    /// Block until every chain retired, interleaving `pump` so the coordinator
    /// keeps draining observer events while it waits.
    pub fn wait_pumping(&self, pump: &dyn Fn()) {
        loop {
            pump();
            let remaining = self.remaining.lock().expect("gate");
            if *remaining == 0 {
                return;
            }
            let (remaining, _) = self
                .done
                .wait_timeout(remaining, std::time::Duration::from_micros(100))
                .expect("gate");
            if *remaining == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_gate_releases() {
        let pool = WorkerPool::new();
        pool.ensure_available(2);
        let task = pool.register(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Gate::new(8));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            let gate = Arc::clone(&gate);
            task.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                gate.done_one();
            });
        }
        gate.wait_pumping(&|| {});
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn task_slot_removed_when_handles_drop() {
        let pool = WorkerPool::new();
        let before = pool.task_count();
        let task = pool.register(1);
        let clone = task.clone();
        assert_eq!(pool.task_count(), before + 1);
        drop(task);
        assert_eq!(pool.task_count(), before + 1, "clone keeps the slot alive");
        drop(clone);
        assert_eq!(pool.task_count(), before);
    }

    #[test]
    fn higher_priority_tasks_are_served_first() {
        // A private single-worker pool makes pick order deterministic.
        let pool = WorkerPool::new();
        pool.ensure_available(1);
        let low = pool.register(0);
        let high = pool.register(5);
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let gate = Arc::new(Gate::new(3));
        // Stall the pool briefly so both queues fill before any pick happens.
        let hold = Arc::new(Gate::new(1));
        {
            let hold = Arc::clone(&hold);
            let gate = Arc::clone(&gate);
            low.submit(move || {
                hold.wait_pumping(&|| {});
                gate.done_one();
            });
        }
        for (task, tag) in [(&low, "low"), (&high, "high")] {
            let order = Arc::clone(&order);
            let gate = Arc::clone(&gate);
            task.submit(move || {
                order.lock().unwrap().push(tag);
                gate.done_one();
            });
        }
        hold.done_one();
        gate.wait_pumping(&|| {});
        let order = order.lock().unwrap();
        assert_eq!(
            order.as_slice(),
            &["high", "low"],
            "priority decides pick order"
        );
    }

    #[test]
    fn equal_priority_tasks_round_robin() {
        let pool = WorkerPool::new();
        pool.ensure_available(1);
        let a = pool.register(1);
        let b = pool.register(1);
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        let gate = Arc::new(Gate::new(5));
        let hold = Arc::new(Gate::new(1));
        {
            let hold = Arc::clone(&hold);
            let gate = Arc::clone(&gate);
            a.submit(move || {
                hold.wait_pumping(&|| {});
                gate.done_one();
            });
        }
        // Queue a,a then b,b while the pool is held; round-robin should
        // interleave them a,b,a,b rather than draining one task first.
        for (task, tag) in [(&a, 1u64), (&a, 1), (&b, 2), (&b, 2)] {
            let order = Arc::clone(&order);
            let gate = Arc::clone(&gate);
            task.submit(move || {
                order.lock().unwrap().push(tag);
                gate.done_one();
            });
        }
        hold.done_one();
        gate.wait_pumping(&|| {});
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 4);
        assert_ne!(
            order.as_slice(),
            &[1, 1, 2, 2],
            "equal-priority tasks must interleave, got {order:?}"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new();
        pool.ensure_available(1);
        let task = pool.register(1);
        let gate = Arc::new(Gate::new(1));
        task.submit(|| panic!("job bug"));
        {
            let gate = Arc::clone(&gate);
            task.submit(move || gate.done_one());
        }
        // The second job only runs if the worker survived the first one's panic
        // (the pool spawned exactly one worker and never replaces dead threads).
        gate.wait_pumping(&|| {});
        assert_eq!(pool.threads_spawned_total(), 1);
    }

    #[test]
    fn blocked_worker_gets_a_replacement_for_other_tasks_work() {
        let pool = WorkerPool::new();
        pool.ensure_available(1);
        let blocker = pool.register(1);
        let other = pool.register(1);
        let release = Arc::new(Gate::new(1));
        let entered = Arc::new(Gate::new(1));
        {
            let release = Arc::clone(&release);
            let entered = Arc::clone(&entered);
            let handle = blocker.clone();
            blocker.submit(move || {
                handle.blocking(|| {
                    entered.done_one();
                    release.wait_pumping(&|| {});
                });
            });
        }
        entered.wait_pumping(&|| {});
        // The only worker is parked in the blocking section; submitting another
        // task's job must spawn a replacement rather than queue forever.
        let done = Arc::new(Gate::new(1));
        {
            let done = Arc::clone(&done);
            other.submit(move || done.done_one());
        }
        done.wait_pumping(&|| {});
        assert!(pool.threads_spawned_total() >= 2, "replacement was spawned");
        release.done_one();
    }

    #[test]
    fn spawn_counter_is_monotonic_and_idle_workers_are_reused() {
        let pool = WorkerPool::new();
        pool.ensure_available(2);
        let after = pool.threads_spawned_total();
        assert!(after >= 2);
        assert!(after <= MAX_POOL_THREADS);
        // Once the workers park, an identical request spawns nothing new.
        for _ in 0..100 {
            if pool.inner.state.lock().unwrap().idle >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        pool.ensure_available(2);
        assert_eq!(pool.threads_spawned_total(), after);
    }
}
