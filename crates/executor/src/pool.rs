//! The resident worker pool: one process-lifetime set of threads multiplexing
//! morsels from every in-flight query.
//!
//! Before this module existed, every parallel pipeline spawned scoped
//! `std::thread`s and joined them before returning — acceptable for one query at
//! a time, but it (a) pays thread-spawn latency on every pipeline of every
//! mid-query re-optimization round (milliseconds that the paper's ms-scale
//! rounds cannot hide), and (b) gives the OS scheduler, not the engine, control
//! over how concurrent queries share cores. Here, queries register as **tasks**;
//! each task owns a FIFO queue of jobs (one job processes one morsel, then
//! re-enqueues itself at the back of its task's queue), and the pool's workers
//! pick the next job by:
//!
//! 1. **priority** — the highest-priority task with queued work wins;
//! 2. **round-robin** — among tasks of equal priority, the least-recently-served
//!    task wins, so equal-priority queries interleave at morsel granularity
//!    instead of running back-to-back.
//!
//! Job closures are `'static`: pipelines hand them `Arc`-owned compiled state
//! (see `parallel::Compiled`), so a query that is dropped mid-stream leaves its
//! jobs to drain harmlessly — they observe the query's quiesce flag and exit.
//! Quiesce scoping is therefore per-task by construction: suspending one query
//! stops *its* jobs at the next morsel boundary while every other task's queue
//! keeps draining.
//!
//! The pool grows on demand (`ensure_available`) up to [`MAX_POOL_THREADS`] and
//! never shrinks; [`WorkerPool::threads_spawned_total`] exposes the lifetime spawn count so
//! regression tests can pin "repeated re-optimization rounds reuse the resident
//! workers instead of spawning".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on resident worker threads. Blocked workers (e.g. waiting on a root
/// exchange whose client pulls slowly) do not count as available, so the pool can
/// temporarily hold more threads than cores; the cap bounds that growth.
pub const MAX_POOL_THREADS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct TaskSlot {
    id: u64,
    priority: u8,
    queue: VecDeque<Job>,
    /// Live [`TaskHandle`]s (clones included). The slot is removed when the last
    /// handle drops; queued jobs hold a handle inside their closure, so a zero
    /// refcount implies an empty queue.
    refs: usize,
    /// Serve-clock stamp of the last job a worker took from this task; the
    /// round-robin tie-break picks the smallest stamp.
    last_served: u64,
}

#[derive(Default)]
struct PoolState {
    slots: Vec<TaskSlot>,
    serve_clock: u64,
    /// Workers currently parked on the condvar waiting for work.
    idle: usize,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work: Condvar,
    spawned_total: AtomicUsize,
}

impl PoolInner {
    /// Pick the next job: highest priority first, least-recently-served among
    /// equals. Returns `None` when no task has queued work.
    fn pick(state: &mut PoolState) -> Option<Job> {
        let mut best: Option<usize> = None;
        for (idx, slot) in state.slots.iter().enumerate() {
            if slot.queue.is_empty() {
                continue;
            }
            best = match best {
                None => Some(idx),
                Some(current) => {
                    let cur = &state.slots[current];
                    if slot.priority > cur.priority
                        || (slot.priority == cur.priority && slot.last_served < cur.last_served)
                    {
                        Some(idx)
                    } else {
                        Some(current)
                    }
                }
            };
        }
        let idx = best?;
        state.serve_clock += 1;
        state.slots[idx].last_served = state.serve_clock;
        state.slots[idx].queue.pop_front()
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool state");
                loop {
                    if let Some(job) = Self::pick(&mut state) {
                        break job;
                    }
                    state.idle += 1;
                    state = self.work.wait(state).expect("pool state");
                    state.idle -= 1;
                }
            };
            job();
        }
    }

    fn spawn_worker(self: &Arc<Self>) {
        let n = self.spawned_total.fetch_add(1, Ordering::SeqCst);
        let inner = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("reopt-worker-{n}"))
            .spawn(move || inner.worker_loop())
            .expect("spawn pool worker");
    }
}

/// The process-wide worker pool. Obtain it with [`WorkerPool::global`].
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// A private pool instance. Production code shares [`WorkerPool::global`];
    /// tests needing deterministic worker counts build their own.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState::default()),
                work: Condvar::new(),
                spawned_total: AtomicUsize::new(0),
            }),
        }
    }

    /// The one resident pool, created on first use with zero threads (workers are
    /// spawned on demand by [`WorkerPool::ensure_available`]).
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Register a new task (one query pipeline run) at the given priority and
    /// return its submission handle.
    pub fn register(&self, priority: u8) -> TaskHandle {
        static NEXT_TASK: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT_TASK.fetch_add(1, Ordering::SeqCst) as u64;
        let mut state = self.inner.state.lock().expect("pool state");
        state.slots.push(TaskSlot {
            id,
            priority,
            queue: VecDeque::new(),
            refs: 1,
            last_served: 0,
        });
        TaskHandle {
            pool: Arc::clone(&self.inner),
            id,
        }
    }

    /// Grow the pool so at least `n` workers are idle right now (best-effort:
    /// concurrent submissions may grab them), without exceeding
    /// [`MAX_POOL_THREADS`] total. Workers blocked inside jobs do not count as
    /// idle, so a task queued behind long-running work still gets fresh threads
    /// up to the cap.
    pub fn ensure_available(&self, n: usize) {
        let deficit = {
            let state = self.inner.state.lock().expect("pool state");
            n.saturating_sub(state.idle)
        };
        for _ in 0..deficit {
            if self.inner.spawned_total.load(Ordering::SeqCst) >= MAX_POOL_THREADS {
                break;
            }
            self.inner.spawn_worker();
        }
    }

    /// Lifetime count of threads this pool has spawned. Monotonic; the
    /// perf-smoke regression assertion pins that repeated re-optimization rounds
    /// leave this unchanged once the pool is warm.
    pub fn threads_spawned_total(&self) -> usize {
        self.inner.spawned_total.load(Ordering::SeqCst)
    }

    /// Number of tasks currently registered (live handles or queued work).
    pub fn task_count(&self) -> usize {
        self.inner.state.lock().expect("pool state").slots.len()
    }
}

/// A handle for submitting jobs under one registered task. Clones share the
/// task; the task slot is removed when the last handle drops.
pub struct TaskHandle {
    pool: Arc<PoolInner>,
    id: u64,
}

impl TaskHandle {
    /// Enqueue a job at the back of this task's queue.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.pool.state.lock().expect("pool state");
        if let Some(slot) = state.slots.iter_mut().find(|slot| slot.id == self.id) {
            slot.queue.push_back(Box::new(job));
        }
        drop(state);
        self.pool.work.notify_one();
    }
}

impl Clone for TaskHandle {
    fn clone(&self) -> Self {
        let mut state = self.pool.state.lock().expect("pool state");
        if let Some(slot) = state.slots.iter_mut().find(|slot| slot.id == self.id) {
            slot.refs += 1;
        }
        drop(state);
        Self {
            pool: Arc::clone(&self.pool),
            id: self.id,
        }
    }
}

impl Drop for TaskHandle {
    fn drop(&mut self) {
        let removed = {
            let mut state = self.pool.state.lock().expect("pool state");
            match state.slots.iter().position(|slot| slot.id == self.id) {
                Some(idx) => {
                    state.slots[idx].refs -= 1;
                    if state.slots[idx].refs == 0 {
                        // Queued jobs capture a handle, so refs == 0 normally
                        // implies no queued work; any stragglers are dropped
                        // below, outside the lock (their captured handles
                        // re-enter this Drop).
                        Some(state.slots.remove(idx))
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        drop(removed);
    }
}

/// A countdown barrier for one pipeline run: the coordinator waits until every
/// chain job has retired, running `pump` (the observer event drain) in between
/// so workers never stall behind an undrained event queue.
pub struct Gate {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Gate {
    pub fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    /// Retire one chain. Called by pool workers when their chain finishes.
    pub fn done_one(&self) {
        let mut remaining = self.remaining.lock().expect("gate");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    pub fn finished(&self) -> bool {
        *self.remaining.lock().expect("gate") == 0
    }

    /// Block until every chain retired, interleaving `pump` so the coordinator
    /// keeps draining observer events while it waits.
    pub fn wait_pumping(&self, pump: &dyn Fn()) {
        loop {
            pump();
            let remaining = self.remaining.lock().expect("gate");
            if *remaining == 0 {
                return;
            }
            let (remaining, _) = self
                .done
                .wait_timeout(remaining, std::time::Duration::from_micros(100))
                .expect("gate");
            if *remaining == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_gate_releases() {
        let pool = WorkerPool::new();
        pool.ensure_available(2);
        let task = pool.register(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Gate::new(8));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            let gate = Arc::clone(&gate);
            task.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                gate.done_one();
            });
        }
        gate.wait_pumping(&|| {});
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn task_slot_removed_when_handles_drop() {
        let pool = WorkerPool::new();
        let before = pool.task_count();
        let task = pool.register(1);
        let clone = task.clone();
        assert_eq!(pool.task_count(), before + 1);
        drop(task);
        assert_eq!(pool.task_count(), before + 1, "clone keeps the slot alive");
        drop(clone);
        assert_eq!(pool.task_count(), before);
    }

    #[test]
    fn higher_priority_tasks_are_served_first() {
        // A private single-worker pool makes pick order deterministic.
        let pool = WorkerPool::new();
        pool.ensure_available(1);
        let low = pool.register(0);
        let high = pool.register(5);
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let gate = Arc::new(Gate::new(3));
        // Stall the pool briefly so both queues fill before any pick happens.
        let hold = Arc::new(Gate::new(1));
        {
            let hold = Arc::clone(&hold);
            let gate = Arc::clone(&gate);
            low.submit(move || {
                hold.wait_pumping(&|| {});
                gate.done_one();
            });
        }
        for (task, tag) in [(&low, "low"), (&high, "high")] {
            let order = Arc::clone(&order);
            let gate = Arc::clone(&gate);
            task.submit(move || {
                order.lock().unwrap().push(tag);
                gate.done_one();
            });
        }
        hold.done_one();
        gate.wait_pumping(&|| {});
        let order = order.lock().unwrap();
        assert_eq!(
            order.as_slice(),
            &["high", "low"],
            "priority decides pick order"
        );
    }

    #[test]
    fn equal_priority_tasks_round_robin() {
        let pool = WorkerPool::new();
        pool.ensure_available(1);
        let a = pool.register(1);
        let b = pool.register(1);
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        let gate = Arc::new(Gate::new(5));
        let hold = Arc::new(Gate::new(1));
        {
            let hold = Arc::clone(&hold);
            let gate = Arc::clone(&gate);
            a.submit(move || {
                hold.wait_pumping(&|| {});
                gate.done_one();
            });
        }
        // Queue a,a then b,b while the pool is held; round-robin should
        // interleave them a,b,a,b rather than draining one task first.
        for (task, tag) in [(&a, 1u64), (&a, 1), (&b, 2), (&b, 2)] {
            let order = Arc::clone(&order);
            let gate = Arc::clone(&gate);
            task.submit(move || {
                order.lock().unwrap().push(tag);
                gate.done_one();
            });
        }
        hold.done_one();
        gate.wait_pumping(&|| {});
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 4);
        assert_ne!(
            order.as_slice(),
            &[1, 1, 2, 2],
            "equal-priority tasks must interleave, got {order:?}"
        );
    }

    #[test]
    fn spawn_counter_is_monotonic_and_idle_workers_are_reused() {
        let pool = WorkerPool::new();
        pool.ensure_available(2);
        let after = pool.threads_spawned_total();
        assert!(after >= 2);
        assert!(after <= MAX_POOL_THREADS);
        // Once the workers park, an identical request spawns nothing new.
        for _ in 0..100 {
            if pool.inner.state.lock().unwrap().idle >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        pool.ensure_available(2);
        assert_eq!(pool.threads_spawned_total(), after);
    }
}
