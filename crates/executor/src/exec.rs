//! The operators.

use crate::error::ExecError;
use crate::metrics::{MetricsNode, OperatorMetrics, QueryMetrics};
use reopt_expr::Expr;
use reopt_planner::plan::IndexLookup;
use reopt_planner::{PhysicalPlan, PlanKind};
use reopt_sql::AggregateFunc;
use reopt_storage::{Row, Schema, Storage, Table, Value};
use std::collections::HashMap;
use std::ops::Bound;
use std::time::Instant;

/// The result of executing one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// Output rows.
    pub rows: Vec<Row>,
    /// Output schema (same as the plan root's schema).
    pub schema: Schema,
    /// Per-operator metrics.
    pub metrics: QueryMetrics,
}

/// Execute a plan against storage.
pub fn execute_plan(plan: &PhysicalPlan, storage: &Storage) -> Result<ExecutionResult, ExecError> {
    Executor::new(storage).execute(plan)
}

/// The plan executor.
pub struct Executor<'a> {
    storage: &'a Storage,
}

impl<'a> Executor<'a> {
    /// Create an executor over the given storage.
    pub fn new(storage: &'a Storage) -> Self {
        Self { storage }
    }

    /// Execute a plan, returning rows and metrics.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<ExecutionResult, ExecError> {
        let (rows, root) = self.run(plan)?;
        let execution_time = root.total_elapsed();
        Ok(ExecutionResult {
            rows,
            schema: plan.schema.clone(),
            metrics: QueryMetrics {
                root,
                execution_time,
            },
        })
    }

    fn run(&self, plan: &PhysicalPlan) -> Result<(Vec<Row>, MetricsNode), ExecError> {
        // Run children first so that each operator's elapsed time excludes its inputs.
        let mut child_rows = Vec::with_capacity(plan.children.len());
        let mut child_metrics = Vec::with_capacity(plan.children.len());
        for child in &plan.children {
            let (rows, metrics) = self.run(child)?;
            child_rows.push(rows);
            child_metrics.push(metrics);
        }

        let start = Instant::now();
        let rows = match &plan.kind {
            PlanKind::SeqScan {
                alias: _,
                table,
                predicate,
                ..
            } => self.seq_scan(plan, table, predicate.as_ref())?,
            PlanKind::IndexScan {
                table,
                column,
                lookup,
                residual,
                ..
            } => self.index_scan(plan, table, column, lookup, residual.as_ref())?,
            PlanKind::HashJoin { keys, residual } => {
                let build_rows = child_rows.pop().expect("hash join has two children");
                let probe_rows = child_rows.pop().expect("hash join has two children");
                self.hash_join(plan, probe_rows, build_rows, keys, residual.as_ref())?
            }
            PlanKind::IndexNestedLoopJoin {
                inner_table,
                outer_key,
                inner_key,
                inner_predicate,
                residual,
                inner_alias,
                ..
            } => {
                let outer_rows = child_rows.pop().expect("index nested loop has one child");
                self.index_nl_join(
                    plan,
                    outer_rows,
                    inner_table,
                    inner_alias,
                    outer_key,
                    inner_key,
                    inner_predicate.as_ref(),
                    residual.as_ref(),
                )?
            }
            PlanKind::NestedLoopJoin { predicate } => {
                let inner_rows = child_rows.pop().expect("nested loop has two children");
                let outer_rows = child_rows.pop().expect("nested loop has two children");
                self.nested_loop_join(plan, outer_rows, inner_rows, predicate.as_ref())?
            }
            PlanKind::MergeJoin { keys, residual } => {
                let right_rows = child_rows.pop().expect("merge join has two children");
                let left_rows = child_rows.pop().expect("merge join has two children");
                self.merge_join(plan, left_rows, right_rows, keys, residual.as_ref())?
            }
            PlanKind::Filter { predicate } => {
                let input = child_rows.pop().expect("filter has one child");
                self.filter(plan, input, predicate)?
            }
            PlanKind::Aggregate {
                group_by,
                aggregates,
            } => {
                let input = child_rows.pop().expect("aggregate has one child");
                let input_schema = &plan.children[0].schema;
                self.aggregate(input, input_schema, group_by, aggregates)?
            }
            PlanKind::Project { exprs } => {
                let input = child_rows.pop().expect("project has one child");
                let input_schema = &plan.children[0].schema;
                self.project(input, input_schema, exprs)?
            }
            PlanKind::Sort { keys } => {
                let input = child_rows.pop().expect("sort has one child");
                let input_schema = &plan.children[0].schema;
                self.sort(input, input_schema, keys)?
            }
            PlanKind::Limit { count } => {
                let mut input = child_rows.pop().expect("limit has one child");
                input.truncate(*count);
                input
            }
        };
        let elapsed = start.elapsed();

        let metrics = MetricsNode {
            metrics: OperatorMetrics {
                label: plan.label(),
                rel_set: plan.rel_set,
                is_join: plan.is_join(),
                estimated_rows: plan.estimated_rows,
                actual_rows: rows.len() as u64,
                elapsed,
            },
            children: child_metrics,
        };
        Ok((rows, metrics))
    }

    fn table(&self, name: &str) -> Result<&Table, ExecError> {
        self.storage
            .table(name)
            .map_err(|_| ExecError::TableNotFound(name.to_string()))
    }

    fn bind(expr: &Expr, schema: &Schema) -> Result<Expr, ExecError> {
        expr.bind(schema)
            .map_err(|e| ExecError::BindError(e.to_string()))
    }

    fn seq_scan(
        &self,
        plan: &PhysicalPlan,
        table: &str,
        predicate: Option<&Expr>,
    ) -> Result<Vec<Row>, ExecError> {
        let table = self.table(table)?;
        let predicate = predicate
            .map(|p| Self::bind(p, &plan.schema))
            .transpose()?;
        let mut out = Vec::new();
        for row in table.rows() {
            if let Some(p) = &predicate {
                if !p.eval_predicate(row)? {
                    continue;
                }
            }
            out.push(row.clone());
        }
        Ok(out)
    }

    fn index_scan(
        &self,
        plan: &PhysicalPlan,
        table: &str,
        column: &str,
        lookup: &IndexLookup,
        residual: Option<&Expr>,
    ) -> Result<Vec<Row>, ExecError> {
        let table = self.table(table)?;
        let column_idx = table.schema().index_of(None, column)?;
        let needs_range = matches!(lookup, IndexLookup::Range { .. });
        let index = table
            .index_on_column(column_idx, needs_range)
            .ok_or_else(|| {
                ExecError::InvalidPlan(format!("no usable index on column '{column}'"))
            })?;

        let mut row_ids: Vec<usize> = match lookup {
            IndexLookup::Equality(value) => index.lookup(value).to_vec(),
            IndexLookup::InList(values) => {
                let mut ids = Vec::new();
                for value in values {
                    ids.extend_from_slice(index.lookup(value));
                }
                ids
            }
            IndexLookup::Range { low, high } => {
                let low_bound = match low {
                    Some((value, true)) => Bound::Included(value),
                    Some((value, false)) => Bound::Excluded(value),
                    None => Bound::Unbounded,
                };
                let high_bound = match high {
                    Some((value, true)) => Bound::Included(value),
                    Some((value, false)) => Bound::Excluded(value),
                    None => Bound::Unbounded,
                };
                index.range(low_bound, high_bound)
            }
        };
        row_ids.sort_unstable();
        row_ids.dedup();

        let residual = residual
            .map(|p| Self::bind(p, &plan.schema))
            .transpose()?;
        let mut out = Vec::new();
        for row_id in row_ids {
            let Some(row) = table.row(row_id) else {
                continue;
            };
            if let Some(p) = &residual {
                if !p.eval_predicate(row)? {
                    continue;
                }
            }
            out.push(row.clone());
        }
        Ok(out)
    }

    fn hash_join(
        &self,
        plan: &PhysicalPlan,
        probe_rows: Vec<Row>,
        build_rows: Vec<Row>,
        keys: &[(reopt_expr::ColumnRef, reopt_expr::ColumnRef)],
        residual: Option<&Expr>,
    ) -> Result<Vec<Row>, ExecError> {
        let probe_schema = &plan.children[0].schema;
        let build_schema = &plan.children[1].schema;
        let probe_keys: Vec<usize> = keys
            .iter()
            .map(|(probe, _)| {
                probe_schema
                    .index_of(probe.qualifier.as_deref(), &probe.name)
                    .map_err(ExecError::from)
            })
            .collect::<Result<_, _>>()?;
        let build_keys: Vec<usize> = keys
            .iter()
            .map(|(_, build)| {
                build_schema
                    .index_of(build.qualifier.as_deref(), &build.name)
                    .map_err(ExecError::from)
            })
            .collect::<Result<_, _>>()?;

        // Build phase.
        let mut hash_table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (row_idx, row) in build_rows.iter().enumerate() {
            let Some(key) = extract_key(row, &build_keys) else {
                continue;
            };
            hash_table.entry(key).or_default().push(row_idx);
        }

        let residual = residual
            .map(|p| Self::bind(p, &plan.schema))
            .transpose()?;

        // Probe phase.
        let mut out = Vec::new();
        for probe_row in &probe_rows {
            let Some(key) = extract_key(probe_row, &probe_keys) else {
                continue;
            };
            let Some(matches) = hash_table.get(&key) else {
                continue;
            };
            for &build_idx in matches {
                let joined = probe_row.join(&build_rows[build_idx]);
                if let Some(p) = &residual {
                    if !p.eval_predicate(&joined)? {
                        continue;
                    }
                }
                out.push(joined);
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn index_nl_join(
        &self,
        plan: &PhysicalPlan,
        outer_rows: Vec<Row>,
        inner_table: &str,
        inner_alias: &str,
        outer_key: &reopt_expr::ColumnRef,
        inner_key: &str,
        inner_predicate: Option<&Expr>,
        residual: Option<&Expr>,
    ) -> Result<Vec<Row>, ExecError> {
        let outer_schema = &plan.children[0].schema;
        let table = self.table(inner_table)?;
        let outer_key_idx = outer_schema
            .index_of(outer_key.qualifier.as_deref(), &outer_key.name)
            .map_err(ExecError::from)?;
        let inner_key_idx = table.schema().index_of(None, inner_key)?;

        let inner_schema = table.schema().qualified(inner_alias);
        let inner_predicate = inner_predicate
            .map(|p| Self::bind(p, &inner_schema))
            .transpose()?;
        let residual = residual
            .map(|p| Self::bind(p, &plan.schema))
            .transpose()?;

        // Use an existing index if present, otherwise build a transient lookup table
        // (this keeps the operator correct even if an index was dropped after planning).
        let index = table.index_on_column(inner_key_idx, false);
        let mut transient: Option<HashMap<Value, Vec<usize>>> = None;
        if index.is_none() {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (row_id, row) in table.rows().iter().enumerate() {
                let key = row.value(inner_key_idx);
                if !key.is_null() {
                    map.entry(key.clone()).or_default().push(row_id);
                }
            }
            transient = Some(map);
        }

        let mut out = Vec::new();
        let empty: Vec<usize> = Vec::new();
        for outer_row in &outer_rows {
            let key = outer_row.value(outer_key_idx);
            if key.is_null() {
                continue;
            }
            let matches: &[usize] = match (&index, &transient) {
                (Some(index), _) => index.lookup(key),
                (None, Some(map)) => map.get(key).map(Vec::as_slice).unwrap_or(&empty),
                (None, None) => &empty,
            };
            for &row_id in matches {
                let Some(inner_row) = table.row(row_id) else {
                    continue;
                };
                if let Some(p) = &inner_predicate {
                    if !p.eval_predicate(inner_row)? {
                        continue;
                    }
                }
                let joined = outer_row.join(inner_row);
                if let Some(p) = &residual {
                    if !p.eval_predicate(&joined)? {
                        continue;
                    }
                }
                out.push(joined);
            }
        }
        Ok(out)
    }

    fn nested_loop_join(
        &self,
        plan: &PhysicalPlan,
        outer_rows: Vec<Row>,
        inner_rows: Vec<Row>,
        predicate: Option<&Expr>,
    ) -> Result<Vec<Row>, ExecError> {
        let predicate = predicate
            .map(|p| Self::bind(p, &plan.schema))
            .transpose()?;
        let mut out = Vec::new();
        for outer_row in &outer_rows {
            for inner_row in &inner_rows {
                let joined = outer_row.join(inner_row);
                if let Some(p) = &predicate {
                    if !p.eval_predicate(&joined)? {
                        continue;
                    }
                }
                out.push(joined);
            }
        }
        Ok(out)
    }

    fn merge_join(
        &self,
        plan: &PhysicalPlan,
        left_rows: Vec<Row>,
        right_rows: Vec<Row>,
        keys: &[(reopt_expr::ColumnRef, reopt_expr::ColumnRef)],
        residual: Option<&Expr>,
    ) -> Result<Vec<Row>, ExecError> {
        let left_schema = &plan.children[0].schema;
        let right_schema = &plan.children[1].schema;
        let left_keys: Vec<usize> = keys
            .iter()
            .map(|(l, _)| {
                left_schema
                    .index_of(l.qualifier.as_deref(), &l.name)
                    .map_err(ExecError::from)
            })
            .collect::<Result<_, _>>()?;
        let right_keys: Vec<usize> = keys
            .iter()
            .map(|(_, r)| {
                right_schema
                    .index_of(r.qualifier.as_deref(), &r.name)
                    .map_err(ExecError::from)
            })
            .collect::<Result<_, _>>()?;

        // Sort both sides by their keys, dropping rows with NULL keys (they cannot
        // match an equi-join).
        let mut left: Vec<(Vec<Value>, Row)> = left_rows
            .into_iter()
            .filter_map(|row| extract_key(&row, &left_keys).map(|k| (k, row)))
            .collect();
        let mut right: Vec<(Vec<Value>, Row)> = right_rows
            .into_iter()
            .filter_map(|row| extract_key(&row, &right_keys).map(|k| (k, row)))
            .collect();
        left.sort_by(|a, b| a.0.cmp(&b.0));
        right.sort_by(|a, b| a.0.cmp(&b.0));

        let residual = residual
            .map(|p| Self::bind(p, &plan.schema))
            .transpose()?;

        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            match left[i].0.cmp(&right[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Find the ranges of equal keys on both sides and emit the product.
                    let key = left[i].0.clone();
                    let left_start = i;
                    while i < left.len() && left[i].0 == key {
                        i += 1;
                    }
                    let right_start = j;
                    while j < right.len() && right[j].0 == key {
                        j += 1;
                    }
                    for (_, left_row) in &left[left_start..i] {
                        for (_, right_row) in &right[right_start..j] {
                            let joined = left_row.join(right_row);
                            if let Some(p) = &residual {
                                if !p.eval_predicate(&joined)? {
                                    continue;
                                }
                            }
                            out.push(joined);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn filter(
        &self,
        plan: &PhysicalPlan,
        input: Vec<Row>,
        predicate: &Expr,
    ) -> Result<Vec<Row>, ExecError> {
        let predicate = Self::bind(predicate, &plan.children[0].schema)?;
        let mut out = Vec::new();
        for row in input {
            if predicate.eval_predicate(&row)? {
                out.push(row);
            }
        }
        Ok(out)
    }

    fn aggregate(
        &self,
        input: Vec<Row>,
        input_schema: &Schema,
        group_by: &[Expr],
        aggregates: &[reopt_planner::AggregateExpr],
    ) -> Result<Vec<Row>, ExecError> {
        let group_exprs: Vec<Expr> = group_by
            .iter()
            .map(|e| Self::bind(e, input_schema))
            .collect::<Result<_, _>>()?;
        let agg_args: Vec<Option<Expr>> = aggregates
            .iter()
            .map(|a| a.arg.as_ref().map(|e| Self::bind(e, input_schema)).transpose())
            .collect::<Result<_, _>>()?;

        if group_exprs.is_empty() {
            // Single-group aggregation always produces exactly one row.
            let mut accumulators: Vec<Accumulator> =
                aggregates.iter().map(|a| Accumulator::new(a.func)).collect();
            for row in &input {
                for (accumulator, arg) in accumulators.iter_mut().zip(&agg_args) {
                    accumulator.update(arg.as_ref(), row)?;
                }
            }
            let values: Vec<Value> = accumulators.into_iter().map(Accumulator::finish).collect();
            return Ok(vec![Row::from_values(values)]);
        }

        // Hash aggregation; groups are emitted in first-seen order for determinism.
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut states: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        for row in &input {
            let mut key = Vec::with_capacity(group_exprs.len());
            for expr in &group_exprs {
                key.push(expr.eval(row)?);
            }
            let idx = match groups.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = states.len();
                    groups.insert(key.clone(), idx);
                    states.push((
                        key,
                        aggregates.iter().map(|a| Accumulator::new(a.func)).collect(),
                    ));
                    idx
                }
            };
            for (accumulator, arg) in states[idx].1.iter_mut().zip(&agg_args) {
                accumulator.update(arg.as_ref(), row)?;
            }
        }
        Ok(states
            .into_iter()
            .map(|(mut key, accumulators)| {
                key.extend(accumulators.into_iter().map(Accumulator::finish));
                Row::from_values(key)
            })
            .collect())
    }

    fn project(
        &self,
        input: Vec<Row>,
        input_schema: &Schema,
        exprs: &[reopt_planner::OutputExpr],
    ) -> Result<Vec<Row>, ExecError> {
        let bound: Vec<Expr> = exprs
            .iter()
            .map(|e| Self::bind(&e.expr, input_schema))
            .collect::<Result<_, _>>()?;
        input
            .into_iter()
            .map(|row| {
                let values: Result<Vec<Value>, ExecError> =
                    bound.iter().map(|e| e.eval(&row).map_err(Into::into)).collect();
                Ok(Row::from_values(values?))
            })
            .collect()
    }

    fn sort(
        &self,
        input: Vec<Row>,
        input_schema: &Schema,
        keys: &[(Expr, bool)],
    ) -> Result<Vec<Row>, ExecError> {
        let bound: Vec<(Expr, bool)> = keys
            .iter()
            .map(|(e, asc)| Ok((Self::bind(e, input_schema)?, *asc)))
            .collect::<Result<_, ExecError>>()?;
        let mut keyed: Vec<(Vec<Value>, Row)> = input
            .into_iter()
            .map(|row| {
                let key: Result<Vec<Value>, ExecError> = bound
                    .iter()
                    .map(|(e, _)| e.eval(&row).map_err(Into::into))
                    .collect();
                Ok((key?, row))
            })
            .collect::<Result<_, ExecError>>()?;
        keyed.sort_by(|a, b| {
            for (idx, (_, ascending)) in bound.iter().enumerate() {
                let ordering = a.0[idx].cmp(&b.0[idx]);
                let ordering = if *ascending { ordering } else { ordering.reverse() };
                if ordering != std::cmp::Ordering::Equal {
                    return ordering;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(keyed.into_iter().map(|(_, row)| row).collect())
    }
}

/// Extract a join key from a row; returns `None` when any key column is NULL (NULL never
/// joins under equi-join semantics).
fn extract_key(row: &Row, columns: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(columns.len());
    for &idx in columns {
        let value = row.value(idx);
        if value.is_null() {
            return None;
        }
        key.push(value.clone());
    }
    Some(key)
}

/// Aggregate accumulator state.
#[derive(Debug, Clone)]
enum Accumulator {
    Min(Option<Value>),
    Max(Option<Value>),
    Count { star: bool, count: u64 },
    Sum { sum: f64, any: bool, is_float: bool },
    Avg { sum: f64, count: u64 },
}

impl Accumulator {
    fn new(func: AggregateFunc) -> Self {
        match func {
            AggregateFunc::Min => Accumulator::Min(None),
            AggregateFunc::Max => Accumulator::Max(None),
            AggregateFunc::Count => Accumulator::Count {
                star: true,
                count: 0,
            },
            AggregateFunc::Sum => Accumulator::Sum {
                sum: 0.0,
                any: false,
                is_float: false,
            },
            AggregateFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, arg: Option<&Expr>, row: &Row) -> Result<(), ExecError> {
        let value = match arg {
            Some(expr) => Some(expr.eval(row)?),
            None => None,
        };
        match self {
            Accumulator::Min(current) => {
                if let Some(v) = value {
                    if !v.is_null() && current.as_ref().map(|c| &v < c).unwrap_or(true) {
                        *current = Some(v);
                    }
                }
            }
            Accumulator::Max(current) => {
                if let Some(v) = value {
                    if !v.is_null() && current.as_ref().map(|c| &v > c).unwrap_or(true) {
                        *current = Some(v);
                    }
                }
            }
            Accumulator::Count { star, count } => match value {
                None => {
                    *star = true;
                    *count += 1;
                }
                Some(v) => {
                    *star = false;
                    if !v.is_null() {
                        *count += 1;
                    }
                }
            },
            Accumulator::Sum { sum, any, is_float } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        *sum += f;
                        *any = true;
                        if matches!(v, Value::Float(_)) {
                            *is_float = true;
                        }
                    }
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
            Accumulator::Count { count, .. } => Value::Int(count as i64),
            Accumulator::Sum { sum, any, is_float } => {
                if !any {
                    Value::Null
                } else if is_float {
                    Value::Float(sum)
                } else {
                    Value::Int(sum as i64)
                }
            }
            Accumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::Catalog;
    use reopt_planner::{CardinalityOverrides, Optimizer};
    use reopt_sql::parse_sql;
    use reopt_storage::{Column, DataType, IndexKind};

    /// A small movie database with known contents so results can be checked exactly.
    fn build_env() -> (Storage, Catalog) {
        let mut storage = Storage::new();

        let mut title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("production_year", DataType::Int),
            ]),
        );
        for i in 0..100i64 {
            title
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("movie {i:03}")),
                    Value::Int(1990 + (i % 30)),
                ]))
                .unwrap();
        }
        title.create_index("title_pkey", "id", IndexKind::BTree).unwrap();

        let mut keyword = Table::new(
            "keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ]),
        );
        for i in 0..10i64 {
            keyword
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("kw{i}")),
                ]))
                .unwrap();
        }

        let mut movie_keyword = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("movie_id", DataType::Int),
                Column::not_null("keyword_id", DataType::Int),
            ]),
        );
        // Every movie i has keywords i%10 and (i+1)%10.
        for i in 0..100i64 {
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int(i % 10)]))
                .unwrap();
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int((i + 1) % 10)]))
                .unwrap();
        }
        movie_keyword
            .create_index("mk_movie", "movie_id", IndexKind::Hash)
            .unwrap();
        movie_keyword
            .create_index("mk_keyword", "keyword_id", IndexKind::Hash)
            .unwrap();

        storage.create_table(title).unwrap();
        storage.create_table(keyword).unwrap();
        storage.create_table(movie_keyword).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        (storage, catalog)
    }

    fn run(sql: &str, storage: &Storage, catalog: &Catalog) -> ExecutionResult {
        let optimizer = Optimizer::default();
        let statement = parse_sql(sql).unwrap();
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                storage,
                catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        execute_plan(&planned.plan, storage).unwrap()
    }

    #[test]
    fn seq_scan_with_filter() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT * FROM title AS t WHERE t.production_year >= 2015",
            &storage,
            &catalog,
        );
        // Years 2015..=2019 appear for i%30 in 25..=29 → 5 values × 3 movies each.
        assert_eq!(result.rows.len(), 15);
        assert_eq!(result.schema.len(), 3);
    }

    #[test]
    fn index_scan_equality_and_range() {
        let (storage, catalog) = build_env();
        let result = run("SELECT * FROM title AS t WHERE t.id = 42", &storage, &catalog);
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].value(0), &Value::Int(42));
        let result = run(
            "SELECT * FROM title AS t WHERE t.id BETWEEN 10 AND 19",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 10);
    }

    #[test]
    fn two_way_join_counts() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c
             FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id AND k.keyword = 'kw3'",
            &storage,
            &catalog,
        );
        // keyword_id = 3 appears for movies with i%10==3 (10 movies) and (i+1)%10==3
        // (10 movies) → 20 movie_keyword rows.
        assert_eq!(result.rows[0].value(0), &Value::Int(20));
    }

    #[test]
    fn three_way_join_with_aggregate() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT min(t.title) AS first_movie, count(*) AS c
             FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
               AND k.keyword = 'kw3' AND t.production_year >= 2000",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 1);
        // Check against a brute-force count.
        let mut expected = 0;
        let mut first: Option<String> = None;
        for i in 0..100i64 {
            let year = 1990 + (i % 30);
            if year < 2000 {
                continue;
            }
            let kws = [i % 10, (i + 1) % 10];
            for kw in kws {
                if kw == 3 {
                    expected += 1;
                    let name = format!("movie {i:03}");
                    if first.as_ref().map(|f| &name < f).unwrap_or(true) {
                        first = Some(name);
                    }
                }
            }
        }
        assert_eq!(result.rows[0].value(1), &Value::Int(expected));
        assert_eq!(
            result.rows[0].value(0),
            &Value::from(first.unwrap().as_str())
        );
    }

    #[test]
    fn metrics_record_actual_cardinalities() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c
             FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows[0].value(0), &Value::Int(200));
        let joins = result.metrics.root.joins_bottom_up();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].actual_rows, 200);
        assert!(joins[0].q_error() < 10.0);
        assert!(result.metrics.execution_time.as_nanos() > 0);
        let rendered = result.metrics.root.render();
        assert!(rendered.contains("actual rows=200"));
    }

    #[test]
    fn group_by_order_by_limit() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT t.production_year, count(*) AS movies
             FROM title AS t
             GROUP BY t.production_year
             ORDER BY movies DESC, t.production_year ASC
             LIMIT 3",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 3);
        // Years 1990..=1999 have 4 movies each (i%30 in 0..10 for i in 0..100 → 4 each);
        // later years have 3. Ordered by count desc then year asc → 1990, 1991, 1992.
        assert_eq!(result.rows[0].value(0), &Value::Int(1990));
        assert_eq!(result.rows[0].value(1), &Value::Int(4));
        assert_eq!(result.rows[2].value(0), &Value::Int(1992));
    }

    #[test]
    fn projection_and_aliases() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT t.title AS name, t.production_year + 1 AS next_year
             FROM title AS t WHERE t.id = 5",
            &storage,
            &catalog,
        );
        assert_eq!(result.schema.column(0).unwrap().name(), "name");
        assert_eq!(result.rows[0].value(1), &Value::Int(1996));
    }

    #[test]
    fn aggregates_over_empty_input() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT min(t.title) AS m, count(*) AS c, sum(t.id) AS s, avg(t.id) AS a
             FROM title AS t WHERE t.production_year > 3000",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].value(0), &Value::Null);
        assert_eq!(result.rows[0].value(1), &Value::Int(0));
        assert_eq!(result.rows[0].value(2), &Value::Null);
        assert_eq!(result.rows[0].value(3), &Value::Null);
    }

    #[test]
    fn like_and_in_filters_execute() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c FROM title AS t WHERE t.title LIKE 'movie 09%'",
            &storage,
            &catalog,
        );
        // movie 090..099
        assert_eq!(result.rows[0].value(0), &Value::Int(10));
        let result = run(
            "SELECT count(*) AS c FROM keyword AS k WHERE k.keyword IN ('kw1', 'kw2', 'nope')",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows[0].value(0), &Value::Int(2));
    }

    #[test]
    fn join_results_match_across_algorithms() {
        // Force each join algorithm in turn and check identical results.
        let (storage, catalog) = build_env();
        let statement = parse_sql(
            "SELECT count(*) AS c
             FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year >= 2010",
        )
        .unwrap();

        let mut results = Vec::new();
        for (hash, merge, inl) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let config = reopt_planner::OptimizerConfig {
                enable_hash_joins: hash,
                enable_merge_joins: merge,
                enable_index_nl_joins: inl,
                ..Default::default()
            };
            let optimizer = Optimizer::new(config);
            let planned = optimizer
                .plan_select(
                    statement.query().unwrap(),
                    &storage,
                    &catalog,
                    &CardinalityOverrides::new(),
                )
                .unwrap();
            let result = execute_plan(&planned.plan, &storage).unwrap();
            results.push(result.rows[0].value(0).clone());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn missing_table_at_execution_time() {
        let (storage, catalog) = build_env();
        let optimizer = Optimizer::default();
        let statement = parse_sql("SELECT * FROM keyword AS k").unwrap();
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        let mut emptied = storage.clone();
        emptied.drop_table("keyword").unwrap();
        let err = execute_plan(&planned.plan, &emptied).unwrap_err();
        assert!(matches!(err, ExecError::TableNotFound(_)));
    }
}
