//! The pipelined operators.
//!
//! Execution is pull-based: every plan node becomes an operator with a
//! `next_batch()` method producing fixed-size batches (default
//! [`DEFAULT_BATCH_SIZE`]). Batches flow in one of two shapes: **columnar**
//! ([`ColumnBatch`], produced by sequential scans and preserved through filters and
//! column-only projections, where predicates run as vectorized mask kernels over
//! typed vectors and dictionary codes) or **row-major** (`RowBatch`, everything
//! else). Columnar batches are decoded to rows only at the root exchange, at
//! pipeline-breaker materialization points, and on entry to operators without a
//! columnar implementation. Streaming operators (scans, filters, projections, the
//! probe side of a hash join, the outer side of the nested-loop joins, limit) hold
//! no more than one batch of state; only *pipeline breakers* buffer:
//!
//! * the build side of a hash join (the hash table),
//! * the inner side of a plain nested-loop join,
//! * both sorted inputs of a merge join,
//! * the group states of an aggregate,
//! * the full input of a sort,
//! * the row-id list of an index scan (bounded by the base table).
//!
//! Buffered rows (and their decoded byte widths) are accounted in a per-query
//! `MemoryTracker`; the peaks are surfaced as
//! [`ExecutionResult::peak_buffered_rows`] / [`ExecutionResult::peak_buffered_bytes`]
//! so tests can assert that memory is bounded by pipeline-breaker output rather than
//! join fan-out.
//!
//! Every operator is wrapped in a `Metered` shell that accumulates rows, batches and
//! inclusive wall-clock time; the per-operator *self* time reported in [`QueryMetrics`]
//! is the inclusive time minus the children's inclusive time, which reproduces the
//! semantics of the old materializing executor ("elapsed excluding children").

use crate::error::ExecError;
use crate::exact::ExactSum;
use crate::metrics::{MetricsNode, OperatorMetrics, QueryMetrics};
use crate::spill::{MemoryGovernor, Reservation};
use reopt_expr::{filter_mask, Expr, MaskCache};
use reopt_planner::plan::IndexLookup;
use reopt_planner::{PhysicalPlan, PlanKind};
use reopt_sql::AggregateFunc;
use reopt_planner::RelSet;
use reopt_storage::spill_file::{SpillDir, SpillReader, SpillRun, SpillWriter};
use reopt_storage::{ColumnBatch, ColumnData, Index, Row, Schema, Storage, Table, Value};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::ops::Bound;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fan-out of one grace-hash partitioning pass (and of recursive repartitioning).
const SPILL_FANOUT: usize = 8;

/// Maximum grace-hash recursion depth. A partition that still exceeds the budget
/// this deep is dominated by one join key, which repartitioning can never split:
/// the join reports an honest [`ExecError::Spill`] instead of recursing forever.
const SPILL_MAX_DEPTH: u32 = 6;

/// Default number of rows per batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A batch of rows flowing between operators.
pub type RowBatch = Vec<Row>;

/// A batch in one of its two shapes: columnar (scans, filters and column-only
/// projections keep typed vectors and dictionary codes) or row-major (join outputs,
/// breaker emissions, and fallback paths). Decoding `Cols -> Rows` happens only at
/// the root exchange, at breaker materialization points ([`Metered::drain`]), and in
/// operators without a columnar implementation.
enum Batch {
    /// Materialized rows.
    Rows(RowBatch),
    /// Typed column vectors.
    Cols(ColumnBatch),
}

impl Batch {
    fn len(&self) -> usize {
        match self {
            Batch::Rows(rows) => rows.len(),
            Batch::Cols(cols) => cols.len(),
        }
    }

    fn into_rows(self) -> RowBatch {
        match self {
            Batch::Rows(rows) => rows,
            Batch::Cols(cols) => cols.into_rows(),
        }
    }
}

/// Which pipeline breaker finished materializing its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerKind {
    /// The build side of a hash join was fully drained into the hash table.
    HashBuild,
    /// The inner side of a plain nested-loop join was fully buffered.
    NestedLoopInner,
    /// One sorted input of a merge join was fully buffered (NULL join keys dropped).
    MergeInput,
    /// An aggregate consumed its whole input.
    AggregateInput,
    /// A sort buffered its whole input.
    SortInput,
}

/// A completed pipeline-breaker input: the first point during execution where the
/// *true* cardinality of the subtree feeding the breaker becomes known — even under a
/// LIMIT, because breakers always drain their input completely before producing
/// anything.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerEvent {
    /// Which breaker completed.
    pub kind: BreakerKind,
    /// The base relations covered by the completed input subtree.
    pub rel_set: RelSet,
    /// The optimizer's estimate for that subtree.
    pub estimated_rows: f64,
    /// The observed (true) cardinality of the subtree.
    pub actual_rows: u64,
    /// Whether the breaker's buffered state is an exact, reusable materialization of
    /// `rel_set` (true for hash-build sides and nested-loop inners; false for merge
    /// inputs, which drop NULL-key rows, and for aggregate/sort state).
    pub reusable: bool,
}

/// What prompted a streaming operator to report progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressSource {
    /// A periodic report: the operator produced another
    /// [`Executor::with_progress_interval`] output batches.
    OutputBatches,
    /// The outer side of an index nested-loop join exhausted: every outer row has been
    /// probed, so the reported count is the join's final output cardinality.
    OuterExhausted,
}

/// An in-flight report from a *streaming* join operator: produced-vs-estimated rows,
/// available long before any pipeline breaker above the operator completes. Unless
/// [`ProgressEvent::exhausted`] is set the produced count is only a **lower bound** on
/// the operator's true cardinality — an observer can conclude that an estimate is an
/// underestimate (overshoot), never that it is an overestimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// What prompted the report.
    pub source: ProgressSource,
    /// The base relations covered by the reporting operator.
    pub rel_set: RelSet,
    /// The optimizer's estimate for the operator's output.
    pub estimated_rows: f64,
    /// Rows produced so far (a lower bound unless `exhausted`).
    pub produced_rows: u64,
    /// Output batches produced so far.
    pub batches: u64,
    /// When true the operator's output is complete and `produced_rows` is its true
    /// cardinality (e.g. an index-NL join whose outer side exhausted).
    pub exhausted: bool,
}

/// A breaker sink's reservation against the [`MemoryGovernor`] was denied: the sink
/// is about to switch to its out-of-core strategy (grace-hash partitioning for a
/// hash-join build, external merge sort for sort/aggregation buffers). The event is
/// delivered *before* the spill commits, so an observer can still suspend and
/// re-plan the remainder of the query — with every in-memory buffer intact — as the
/// cheap alternative to paying disk I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPressureEvent {
    /// Which breaker sink hit the budget.
    pub kind: BreakerKind,
    /// The base relations covered by the buffering subtree.
    pub rel_set: RelSet,
    /// The optimizer's estimate for that subtree.
    pub estimated_rows: f64,
    /// Rows buffered so far (a lower bound on the subtree's true cardinality).
    pub buffered_rows: u64,
    /// Bytes the sink had reserved when the grant was denied.
    pub buffered_bytes: u64,
    /// The governor's budget at the time of the denial.
    pub budget_bytes: u64,
}

/// An execution event delivered to an [`ExecutionObserver`]: a pipeline breaker
/// finished materializing its input (a *true* subtree cardinality), a streaming
/// operator reported progress (a lower bound, available much earlier), or a breaker
/// sink is about to spill ([`MemoryPressureEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecEvent {
    /// A pipeline breaker completed its input.
    BreakerComplete(BreakerEvent),
    /// A streaming operator reported produced-vs-estimated rows.
    Progress(ProgressEvent),
    /// A breaker sink exceeded its memory grant and will spill unless suspended.
    MemoryPressure(MemoryPressureEvent),
}

impl ExecEvent {
    /// The base relations the event's observation covers.
    pub fn rel_set(&self) -> RelSet {
        match self {
            ExecEvent::BreakerComplete(e) => e.rel_set,
            ExecEvent::Progress(e) => e.rel_set,
            ExecEvent::MemoryPressure(e) => e.rel_set,
        }
    }

    /// The optimizer's estimate for the observed subtree.
    pub fn estimated_rows(&self) -> f64 {
        match self {
            ExecEvent::BreakerComplete(e) => e.estimated_rows,
            ExecEvent::Progress(e) => e.estimated_rows,
            ExecEvent::MemoryPressure(e) => e.estimated_rows,
        }
    }

    /// The observed row count (exact iff [`ExecEvent::is_exact`]).
    pub fn observed_rows(&self) -> u64 {
        match self {
            ExecEvent::BreakerComplete(e) => e.actual_rows,
            ExecEvent::Progress(e) => e.produced_rows,
            ExecEvent::MemoryPressure(e) => e.buffered_rows,
        }
    }

    /// Whether the observed count is a true cardinality (breaker completions always
    /// are; progress reports only once the operator exhausted; memory-pressure
    /// counts are always lower bounds on an input still being drained) rather than a
    /// lower bound on one.
    pub fn is_exact(&self) -> bool {
        match self {
            ExecEvent::BreakerComplete(_) => true,
            ExecEvent::Progress(e) => e.exhausted,
            ExecEvent::MemoryPressure(_) => false,
        }
    }
}

/// Decision returned by an [`ExecutionObserver`] after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverDecision {
    /// Keep executing.
    Continue,
    /// Unwind out of `next_batch` with [`ExecError::Suspended`] immediately; the
    /// pipeline stops mid-pull, but its completed breaker state can still be extracted
    /// with [`Pipeline::take_breaker_states`]. Rows of the in-flight root batch are
    /// discarded, which is what a mid-query re-planner wants (it restarts the
    /// remainder anyway).
    Suspend,
    /// Let the current root `next_batch` pull finish and deliver its batch, then
    /// suspend on the root batch seam: the *next* pull returns
    /// [`ExecError::Suspended`]. This is the clean hand-off point for schedulers that
    /// must not lose produced rows. Note that whether any rows remain beyond the
    /// seam is unknowable without doing more work: if the event that armed the
    /// suspension fired during the pull that produced the *last* batch, the next
    /// pull still reports `Suspended` rather than exhaustion — callers must treat a
    /// seam suspension as "remainder unknown, possibly empty".
    SuspendAtRootSeam,
}

/// Observer of execution events: the mechanism a mid-query re-optimizer (or an async
/// scheduler) uses to watch cardinality truth appear during a run and suspend
/// execution when an estimate turns out badly wrong. The executor provides the
/// events — breaker completions (exact) and streaming progress (early lower bounds) —
/// the decision policy (for example a q-error threshold) lives in the caller.
pub trait ExecutionObserver {
    /// Called once per event, synchronously, from inside the producing operator.
    fn on_event(&mut self, event: &ExecEvent) -> ObserverDecision;
}

/// Shared handle to an observer; operators borrow it mutably only for the duration of
/// a single callback. The lifetime lets callers install observers that borrow from
/// the surrounding control loop (e.g. a re-optimization policy).
pub type ObserverHandle<'p> = Rc<RefCell<dyn ExecutionObserver + 'p>>;

/// A completed breaker materialization extracted from a suspended pipeline: the exact
/// output of the subtree covering `rel_set`, with all predicates local to that subtree
/// already applied. A re-optimizer can register these rows as a virtual leaf table and
/// re-plan the remaining joins around it instead of re-executing the subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerState {
    /// Which breaker the state came from.
    pub kind: BreakerKind,
    /// The base relations the materialized rows cover.
    pub rel_set: RelSet,
    /// The schema of `rows` (columns qualified by the original relation aliases).
    pub schema: Schema,
    /// The materialized rows.
    pub rows: Vec<Row>,
}

/// The per-operator view of the installed observer: the shared handle, the root-seam
/// suspension flag, and the progress cadence. Cloned into every operator that emits
/// events.
struct ObserverCtx<'p> {
    observer: Option<ObserverHandle<'p>>,
    /// Set when an observer asked to suspend on the root batch seam; checked by
    /// [`Pipeline::next_batch`] before every pull.
    root_seam: Rc<Cell<bool>>,
    /// Emit a [`ProgressEvent`] every this many output batches (0 disables periodic
    /// reports).
    progress_every: u64,
}

impl<'p> ObserverCtx<'p> {
    fn clone_ref(&self) -> ObserverCtx<'p> {
        ObserverCtx {
            observer: self.observer.clone(),
            root_seam: Rc::clone(&self.root_seam),
            progress_every: self.progress_every,
        }
    }

    /// Whether an observer is installed (drained breaker children are only retained
    /// for observed pipelines, so their state stays extractable after a suspension).
    fn active(&self) -> bool {
        self.observer.is_some()
    }

    /// Report an event, translating the decision into control flow: `Suspend` unwinds
    /// with [`ExecError::Suspended`], `SuspendAtRootSeam` arms the root-seam flag.
    fn notify(&self, event: ExecEvent) -> Result<(), ExecError> {
        if let Some(observer) = &self.observer {
            match observer.borrow_mut().on_event(&event) {
                ObserverDecision::Continue => {}
                ObserverDecision::Suspend => return Err(ExecError::Suspended),
                ObserverDecision::SuspendAtRootSeam => self.root_seam.set(true),
            }
        }
        Ok(())
    }

    fn notify_breaker(&self, event: BreakerEvent) -> Result<(), ExecError> {
        self.notify(ExecEvent::BreakerComplete(event))
    }
}

/// Output-side progress accounting for a streaming join: counts produced rows and
/// batches, reporting every `progress_every` batches (and once on exhaustion for
/// index-NL joins, where the count is final).
struct ProgressMeter {
    rel_set: RelSet,
    estimated_rows: f64,
    produced_rows: u64,
    batches: u64,
    exhausted_reported: bool,
}

impl ProgressMeter {
    fn new(rel_set: RelSet, estimated_rows: f64) -> Self {
        Self {
            rel_set,
            estimated_rows,
            produced_rows: 0,
            batches: 0,
            exhausted_reported: false,
        }
    }

    /// Account one output batch and emit a periodic progress report when due.
    fn tick(&mut self, ctx: &ObserverCtx<'_>, batch_len: usize) -> Result<(), ExecError> {
        self.produced_rows += batch_len as u64;
        self.batches += 1;
        if ctx.active() && ctx.progress_every > 0 && self.batches % ctx.progress_every == 0 {
            ctx.notify(ExecEvent::Progress(ProgressEvent {
                source: ProgressSource::OutputBatches,
                rel_set: self.rel_set,
                estimated_rows: self.estimated_rows,
                produced_rows: self.produced_rows,
                batches: self.batches,
                exhausted: false,
            }))?;
        }
        Ok(())
    }

    /// Emit the one-shot exhaustion report (index-NL outer side done): `pending` rows
    /// are produced but not yet ticked (the batch under construction).
    fn finish(&mut self, ctx: &ObserverCtx<'_>, pending: usize) -> Result<(), ExecError> {
        if self.exhausted_reported || !ctx.active() {
            self.exhausted_reported = true;
            return Ok(());
        }
        self.exhausted_reported = true;
        ctx.notify(ExecEvent::Progress(ProgressEvent {
            source: ProgressSource::OuterExhausted,
            rel_set: self.rel_set,
            estimated_rows: self.estimated_rows,
            produced_rows: self.produced_rows + pending as u64,
            batches: self.batches,
            exhausted: true,
        }))
    }
}

/// The thread count the executor uses when none is configured explicitly: the
/// `REOPT_THREADS` environment variable when set to a positive integer, otherwise the
/// machine's available parallelism. A value of 1 always selects the single-threaded
/// engine.
pub fn default_thread_count() -> usize {
    std::env::var("REOPT_THREADS")
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
        .filter(|&threads| threads >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The result of executing one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// Output rows.
    pub rows: Vec<Row>,
    /// Output schema (same as the plan root's schema).
    pub schema: Schema,
    /// Per-operator metrics.
    pub metrics: QueryMetrics,
    /// Peak number of rows buffered by pipeline breakers at any point of the run.
    pub peak_buffered_rows: u64,
    /// Peak decoded byte width of those buffered rows (same accounting points as
    /// `peak_buffered_rows`, using [`Value::width`] per value and 8 bytes per
    /// buffered index-scan row id).
    pub peak_buffered_bytes: u64,
}

/// Execute a plan against storage with the default batch size.
pub fn execute_plan(plan: &PhysicalPlan, storage: &Storage) -> Result<ExecutionResult, ExecError> {
    Executor::new(storage).execute(plan)
}

/// Default progress cadence: streaming joins report produced-vs-estimated rows every
/// this many output batches when an [`ExecutionObserver`] is installed.
pub const DEFAULT_PROGRESS_INTERVAL: u64 = 8;

/// Whether vectorized columnar execution is enabled by default: the `REOPT_COLUMNAR`
/// environment variable set to `0` is the kill switch (used by the columnar-off CI
/// leg). Storage stays columnar either way — with the switch off, scans decode every
/// chunk to rows immediately and predicates run through the row-wise evaluator.
pub fn default_columnar() -> bool {
    std::env::var("REOPT_COLUMNAR")
        .map(|value| value != "0")
        .unwrap_or(true)
}

/// The plan executor: a factory for [`Pipeline`]s.
pub struct Executor<'a> {
    storage: &'a Storage,
    batch_size: usize,
    progress_every: u64,
    threads: usize,
    columnar: bool,
    priority: u8,
    governor: Arc<MemoryGovernor>,
}

/// The default scheduling priority for queries on the shared worker pool.
pub const DEFAULT_PRIORITY: u8 = 1;

impl<'a> Executor<'a> {
    /// Create an executor over the given storage with [`default_thread_count`]
    /// threads.
    pub fn new(storage: &'a Storage) -> Self {
        Self {
            storage,
            batch_size: DEFAULT_BATCH_SIZE,
            progress_every: DEFAULT_PROGRESS_INTERVAL,
            threads: default_thread_count(),
            columnar: default_columnar(),
            priority: DEFAULT_PRIORITY,
            governor: MemoryGovernor::from_env(),
        }
    }

    /// Create an executor with a custom batch size (clamped to at least one row).
    pub fn with_batch_size(storage: &'a Storage, batch_size: usize) -> Self {
        Self {
            storage,
            batch_size: batch_size.max(1),
            progress_every: DEFAULT_PROGRESS_INTERVAL,
            threads: default_thread_count(),
            columnar: default_columnar(),
            priority: DEFAULT_PRIORITY,
            governor: MemoryGovernor::from_env(),
        }
    }

    /// Install a shared [`MemoryGovernor`]: breaker sinks reserve their buffered
    /// bytes against it and spill (grace-hash partitioning / external merge sort)
    /// when a grant is denied. Defaults to a per-executor governor initialised from
    /// `REOPT_MEM_BUDGET`; a database installs its process-wide governor here so
    /// every session's queries share one budget.
    pub fn with_governor(mut self, governor: Arc<MemoryGovernor>) -> Self {
        self.governor = governor;
        self
    }

    /// The memory governor this executor's pipelines reserve against.
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.governor
    }

    /// Set the scheduling priority used when this executor's queries register as
    /// tasks on the shared worker pool: higher-priority tasks are served first,
    /// equal priorities round-robin at morsel granularity. Has no effect at
    /// `threads == 1`.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Enable or disable vectorized columnar execution (defaults to
    /// [`default_columnar`]). With columnar off, scans decode to rows immediately:
    /// the row-identity CI leg runs every query both ways and compares outputs.
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Whether vectorized columnar execution is enabled.
    pub fn columnar_enabled(&self) -> bool {
        self.columnar
    }

    /// Set the worker-pool size for morsel-driven parallel execution (clamped to at
    /// least one). `threads == 1` always takes the single-threaded engine; with more
    /// threads, plans whose operators all have a parallel implementation
    /// ([`crate::parallel::plan_supported`]) run on the worker pool and everything
    /// else falls back to the single-threaded engine unchanged.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-pool size.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Set the progress cadence: streaming joins report a [`ProgressEvent`] every
    /// `every_batches` output batches (0 disables periodic reports; index-NL
    /// outer-exhaustion reports still fire).
    pub fn with_progress_interval(mut self, every_batches: u64) -> Self {
        self.progress_every = every_batches;
        self
    }

    /// Open a pipeline over the plan without running it. Pulling batches from the
    /// pipeline is the suspend/resume seam a mid-query re-optimizer (or an async
    /// scheduler) needs: execution can stop between any two batches.
    ///
    /// # Examples
    ///
    /// Pull a query one batch at a time instead of running it to completion:
    ///
    /// ```
    /// use reopt_catalog::Catalog;
    /// use reopt_executor::Executor;
    /// use reopt_planner::{CardinalityOverrides, Optimizer};
    /// use reopt_sql::parse_sql;
    /// use reopt_storage::{Column, DataType, Row, Schema, Storage, Table};
    ///
    /// let mut storage = Storage::new();
    /// let mut t = Table::new("t", Schema::new(vec![Column::new("id", DataType::Int)]));
    /// for i in 0..10i64 {
    ///     t.push_row(Row::from_values(vec![i.into()])).unwrap();
    /// }
    /// storage.create_table(t).unwrap();
    /// let mut catalog = Catalog::new();
    /// catalog.analyze_all(&storage).unwrap();
    ///
    /// let statement = parse_sql("SELECT t.id AS id FROM t AS t").unwrap();
    /// let planned = Optimizer::default()
    ///     .plan_select(statement.query().unwrap(), &storage, &catalog, &CardinalityOverrides::new())
    ///     .unwrap();
    ///
    /// let executor = Executor::with_batch_size(&storage, 4);
    /// let mut pipeline = executor.open(&planned.plan).unwrap();
    /// let mut rows = 0;
    /// while let Some(batch) = pipeline.next_batch().unwrap() {
    ///     rows += batch.len(); // execution can pause between any two batches
    /// }
    /// assert_eq!(rows, 10);
    /// ```
    pub fn open<'p>(&self, plan: &'p PhysicalPlan) -> Result<Pipeline<'p>, ExecError>
    where
        'a: 'p,
    {
        self.open_observed(plan, None)
    }

    /// Open a pipeline with an [`ExecutionObserver`] installed: the observer sees every
    /// pipeline-breaker completion (the points where true subtree cardinalities first
    /// become known) *and* the progress reports of streaming joins (early lower bounds
    /// on those cardinalities), and can suspend execution — either immediately or on
    /// the root batch seam. This is the hook the re-optimization control plane
    /// attaches to.
    pub fn open_observed<'p>(
        &self,
        plan: &'p PhysicalPlan,
        observer: Option<ObserverHandle<'p>>,
    ) -> Result<Pipeline<'p>, ExecError>
    where
        'a: 'p,
    {
        // A `threads > 1` session that lands on the single-threaded engine is an
        // observable fallback: the reason rides along in the metrics and the
        // process-wide counter feeds the perf_smoke zero-fallback assertion.
        let shape_fallback = if self.threads > 1 {
            let reason = crate::parallel::fallback_reason(plan);
            if reason.is_some() {
                crate::parallel::note_plan_fallback();
            }
            reason
        } else {
            None
        };
        if self.threads > 1 && shape_fallback.is_none() {
            // Keep everything needed to rebuild single-threaded: if a parallel
            // breaker sink hits the memory budget and the observer declines to
            // suspend, the run aborts (before any root batch is delivered — all
            // breaker materialization happens up front) and the pipeline facade
            // transparently restarts on the single-threaded spill engine.
            let fallback = FallbackCtx {
                storage: self.storage,
                batch_size: self.batch_size,
                progress_every: self.progress_every,
                columnar: self.columnar,
                governor: Arc::clone(&self.governor),
                observer: observer.clone(),
            };
            return Ok(Pipeline {
                inner: PipelineImpl::Parallel(Box::new(crate::parallel::ParallelPipeline::new(
                    plan,
                    self.storage,
                    self.batch_size,
                    self.threads,
                    self.progress_every,
                    self.columnar,
                    self.priority,
                    Arc::clone(&self.governor),
                    observer,
                ))),
                fallback: Some(fallback),
                fallback_note: None,
            });
        }
        Ok(Pipeline {
            inner: PipelineImpl::Single(open_single(
                plan,
                self.storage,
                self.batch_size,
                self.progress_every,
                self.columnar,
                Arc::clone(&self.governor),
                observer,
            )?),
            fallback: None,
            fallback_note: shape_fallback,
        })
    }

    /// Execute a plan to completion, returning rows and metrics.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<ExecutionResult, ExecError> {
        let mut pipeline = self.open(plan)?;
        let mut rows = Vec::new();
        while let Some(batch) = pipeline.next_batch()? {
            rows.extend(batch);
        }
        let metrics = pipeline.metrics();
        Ok(ExecutionResult {
            rows,
            schema: plan.schema.clone(),
            peak_buffered_rows: pipeline.peak_buffered_rows(),
            peak_buffered_bytes: pipeline.peak_buffered_bytes(),
            metrics,
        })
    }
}

/// Build a [`SinglePipeline`] over a plan (also the landing pad when a parallel run
/// degrades to the single-threaded spill engine on memory pressure).
fn open_single<'p>(
    plan: &'p PhysicalPlan,
    storage: &'p Storage,
    batch_size: usize,
    progress_every: u64,
    columnar: bool,
    governor: Arc<MemoryGovernor>,
    observer: Option<ObserverHandle<'p>>,
) -> Result<SinglePipeline<'p>, ExecError> {
    let tracker = Rc::new(MemoryTracker::default());
    let root_seam = Rc::new(Cell::new(false));
    let ctx = BuildContext {
        storage,
        batch_size,
        columnar,
        tracker: Rc::clone(&tracker),
        governor,
        obs: ObserverCtx {
            observer,
            root_seam: Rc::clone(&root_seam),
            progress_every,
        },
    };
    let (root, stats) = build_operator(plan, &ctx)?;
    Ok(SinglePipeline {
        plan,
        root,
        stats,
        tracker,
        root_seam,
        poisoned: false,
        suspended: false,
    })
}

/// Everything needed to rebuild a parallel pipeline on the single-threaded spill
/// engine when its run hits the memory budget (see [`Executor::open_observed`]).
struct FallbackCtx<'p> {
    storage: &'p Storage,
    batch_size: usize,
    progress_every: u64,
    columnar: bool,
    governor: Arc<MemoryGovernor>,
    observer: Option<ObserverHandle<'p>>,
}

/// An opened plan, ready to produce batches: either a single-threaded operator tree
/// or a morsel-driven parallel run ([`Executor::with_threads`]). Both engines honor
/// the same contract — batch pulls, observer events, suspension, breaker-state
/// extraction, metrics and buffered-row accounting — so callers never branch on the
/// engine.
pub struct Pipeline<'p> {
    inner: PipelineImpl<'p>,
    fallback: Option<FallbackCtx<'p>>,
    /// Why a `threads > 1` session is running single-threaded (unsupported plan
    /// shape at open time, or a memory-budget restart mid-run); surfaced through
    /// [`QueryMetrics::fallback`].
    fallback_note: Option<&'static str>,
}

enum PipelineImpl<'p> {
    Single(SinglePipeline<'p>),
    // Boxed: the parallel run state (streaming exchange + engine + run context)
    // dwarfs the single-engine operator tree handle.
    Parallel(Box<crate::parallel::ParallelPipeline<'p>>),
}

impl Pipeline<'_> {
    /// Produce the next (non-empty) batch of output rows, or `None` when exhausted.
    ///
    /// An `Err` poisons the pipeline: operators may hold partially-buffered state, so
    /// every subsequent pull fails rather than risking silently wrong results. The one
    /// exception is [`ExecError::Suspended`] (an [`ExecutionObserver`] stopped
    /// execution, either mid-pull or on the root batch seam): the pipeline refuses
    /// further pulls but its completed breaker state stays extractable via
    /// [`Pipeline::take_breaker_states`].
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        let out = match &mut self.inner {
            PipelineImpl::Single(p) => p.next_batch(),
            PipelineImpl::Parallel(p) => p.next_batch(),
        };
        // A parallel run that hit the memory budget (and whose observer declined to
        // suspend) aborts before delivering any root batch: restart the plan on the
        // single-threaded engine, whose breaker sinks can actually spill.
        if matches!(out, Err(ExecError::Spill(_))) {
            if let PipelineImpl::Parallel(p) = &self.inner {
                if p.needs_spill_fallback() {
                    if let Some(ctx) = self.fallback.take() {
                        let plan = match &self.inner {
                            PipelineImpl::Parallel(p) => p.plan(),
                            PipelineImpl::Single(_) => unreachable!("checked above"),
                        };
                        self.inner = PipelineImpl::Single(open_single(
                            plan,
                            ctx.storage,
                            ctx.batch_size,
                            ctx.progress_every,
                            ctx.columnar,
                            ctx.governor,
                            ctx.observer,
                        )?);
                        self.fallback_note = Some("memory budget: restarted on the spill engine");
                        return self.next_batch();
                    }
                }
            }
        }
        out
    }

    /// Whether an [`ExecutionObserver`] suspended this pipeline.
    pub fn is_suspended(&self) -> bool {
        match &self.inner {
            PipelineImpl::Single(p) => p.is_suspended(),
            PipelineImpl::Parallel(p) => p.is_suspended(),
        }
    }

    /// Move every *completed* breaker materialization out of the pipeline (hash-join
    /// build sides and nested-loop inners, innermost first). Used after an observer
    /// suspension: the extracted rows become virtual leaf tables for the re-planned
    /// remainder of the query, so the work of building them is not lost. The pipeline
    /// must not be pulled again afterwards.
    pub fn take_breaker_states(&mut self) -> Vec<BreakerState> {
        match &mut self.inner {
            PipelineImpl::Single(p) => p.take_breaker_states(),
            PipelineImpl::Parallel(p) => p.take_breaker_states(),
        }
    }

    /// The metrics tree observed so far (complete once `next_batch` returned `None`).
    /// For parallel runs, per-operator counters are aggregated across workers and
    /// `elapsed` is summed worker CPU time.
    pub fn metrics(&self) -> QueryMetrics {
        let mut metrics = match &self.inner {
            PipelineImpl::Single(p) => p.metrics(),
            PipelineImpl::Parallel(p) => p.metrics(),
        };
        if metrics.fallback.is_none() {
            metrics.fallback = self.fallback_note;
        }
        metrics
    }

    /// Peak number of rows buffered by pipeline breakers so far.
    pub fn peak_buffered_rows(&self) -> u64 {
        match &self.inner {
            PipelineImpl::Single(p) => p.peak_buffered_rows(),
            PipelineImpl::Parallel(p) => p.peak_buffered_rows(),
        }
    }

    /// Peak decoded byte width of the rows buffered by pipeline breakers so far.
    pub fn peak_buffered_bytes(&self) -> u64 {
        match &self.inner {
            PipelineImpl::Single(p) => p.peak_buffered_bytes(),
            PipelineImpl::Parallel(p) => p.peak_buffered_bytes(),
        }
    }
}

/// The single-threaded engine: a tree of pull-based operators.
pub(crate) struct SinglePipeline<'p> {
    plan: &'p PhysicalPlan,
    root: Metered<'p>,
    stats: StatsNode,
    tracker: Rc<MemoryTracker>,
    /// Armed by an [`ObserverDecision::SuspendAtRootSeam`]; honored before the next pull.
    root_seam: Rc<Cell<bool>>,
    poisoned: bool,
    suspended: bool,
}

impl SinglePipeline<'_> {
    /// Produce the next (non-empty) batch of output rows, or `None` when exhausted.
    ///
    /// An `Err` poisons the pipeline: operators may hold partially-buffered state, so
    /// every subsequent pull fails rather than risking silently wrong results. The one
    /// exception is [`ExecError::Suspended`] (an [`ExecutionObserver`] stopped
    /// execution, either mid-pull or on the root batch seam): the pipeline refuses
    /// further pulls but its completed breaker state stays extractable via
    /// [`Pipeline::take_breaker_states`].
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        if self.suspended {
            return Err(ExecError::Suspended);
        }
        if self.poisoned {
            return Err(ExecError::InvalidPlan(
                "pipeline poisoned by an earlier execution error".into(),
            ));
        }
        // A root-seam suspension requested during the previous pull takes effect here,
        // after that pull's batch was delivered and before any new work starts.
        if self.root_seam.get() {
            self.suspended = true;
            return Err(ExecError::Suspended);
        }
        let out = self.root.next_batch();
        match &out {
            Err(ExecError::Suspended) => self.suspended = true,
            Err(_) => self.poisoned = true,
            Ok(_) => {}
        }
        // The root exchange is a decode boundary: callers always receive rows.
        out.map(|batch| batch.map(Batch::into_rows))
    }

    /// Whether an [`ExecutionObserver`] suspended this pipeline.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Move every *completed* breaker materialization out of the operator tree
    /// (hash-join build sides and nested-loop inners, innermost first). Used after an
    /// observer suspension: the extracted rows become virtual leaf tables for the
    /// re-planned remainder of the query, so the work of building them is not lost.
    /// The pipeline must not be pulled again afterwards.
    pub fn take_breaker_states(&mut self) -> Vec<BreakerState> {
        let mut out = Vec::new();
        self.root.inner.collect_breaker_states(&mut out);
        out
    }

    /// The metrics tree observed so far (complete once `next_batch` returned `None`).
    pub fn metrics(&self) -> QueryMetrics {
        let root = assemble_metrics(self.plan, &self.stats);
        let execution_time = root.total_elapsed();
        QueryMetrics {
            root,
            execution_time,
            engine: "single-thread",
            fallback: None,
        }
    }

    /// Peak number of rows buffered by pipeline breakers so far.
    pub fn peak_buffered_rows(&self) -> u64 {
        self.tracker.peak.get()
    }

    /// Peak decoded byte width of the rows buffered by pipeline breakers so far.
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.tracker.peak_bytes.get()
    }
}

/// Rows (and their decoded byte widths) currently buffered by pipeline breakers, and
/// the high-water marks.
#[derive(Default)]
struct MemoryTracker {
    current: Cell<u64>,
    peak: Cell<u64>,
    current_bytes: Cell<u64>,
    peak_bytes: Cell<u64>,
}

impl MemoryTracker {
    fn acquire(&self, rows: u64, bytes: u64) {
        let current = self.current.get() + rows;
        self.current.set(current);
        if current > self.peak.get() {
            self.peak.set(current);
        }
        let current_bytes = self.current_bytes.get() + bytes;
        self.current_bytes.set(current_bytes);
        if current_bytes > self.peak_bytes.get() {
            self.peak_bytes.set(current_bytes);
        }
    }
}

/// Per-operator counters, shared between the operator wrapper and metrics assembly.
#[derive(Default)]
struct OpStats {
    rows: Cell<u64>,
    batches: Cell<u64>,
    /// Whether the operator returned `None` (ran to completion): only then is `rows` a
    /// true cardinality rather than a count truncated by early termination.
    exhausted: Cell<bool>,
    /// Wall-clock time inside `next_batch`, *including* time spent pulling children.
    inclusive: Cell<Duration>,
    /// For scans: how the operator read its input — `"dictionary"` / `"native"`
    /// (vectorized over column chunks, with/without dictionary-coded columns),
    /// `"fallback-row"` (columnar on, but the predicate has no kernel), or `"row"`
    /// (columnar off, or an index scan materializing by row id). `None` elsewhere.
    encoding: Cell<Option<&'static str>>,
    /// Bytes this operator wrote to spill runs (0 while it stays in memory).
    spilled_bytes: Cell<u64>,
    /// Spill runs this operator sealed (grace-hash partitions / sort runs).
    spill_partitions: Cell<u64>,
}

impl OpStats {
    /// Account one sealed spill run.
    fn record_spill_run(&self, bytes: u64) {
        self.spilled_bytes.set(self.spilled_bytes.get() + bytes);
        self.spill_partitions.set(self.spill_partitions.get() + 1);
    }
}

/// The stats tree, shaped like the plan tree.
struct StatsNode {
    stats: Rc<OpStats>,
    children: Vec<StatsNode>,
}

fn assemble_metrics(plan: &PhysicalPlan, stats: &StatsNode) -> MetricsNode {
    let children: Vec<MetricsNode> = plan
        .children
        .iter()
        .zip(&stats.children)
        .map(|(p, s)| assemble_metrics(p, s))
        .collect();
    let child_inclusive: Duration = stats
        .children
        .iter()
        .map(|c| c.stats.inclusive.get())
        .sum();
    // An operator's count is a true cardinality only if it ran to completion AND so
    // did its whole subtree: a Limit that hit its count returns `None` without
    // draining its child, and its actual_rows is a truncated count for its rel_set.
    let exhausted = stats.stats.exhausted.get()
        && children.iter().all(|child| child.metrics.exhausted);
    MetricsNode {
        metrics: OperatorMetrics {
            label: plan.label(),
            rel_set: plan.rel_set,
            is_join: plan.is_join(),
            estimated_rows: plan.estimated_rows,
            actual_rows: stats.stats.rows.get(),
            batches: stats.stats.batches.get(),
            exhausted,
            elapsed: stats.stats.inclusive.get().saturating_sub(child_inclusive),
            encoding: stats.stats.encoding.get(),
            spilled_bytes: stats.stats.spilled_bytes.get(),
            spill_partitions: stats.stats.spill_partitions.get(),
        },
        children,
    }
}

/// Everything needed to translate a plan node into an operator.
struct BuildContext<'p> {
    storage: &'p Storage,
    batch_size: usize,
    /// Whether scans emit columnar batches and predicates use the mask kernels.
    columnar: bool,
    tracker: Rc<MemoryTracker>,
    governor: Arc<MemoryGovernor>,
    obs: ObserverCtx<'p>,
}

/// A batch-producing operator.
trait Operator {
    /// The next non-empty batch (columnar or row-major), or `None` once exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError>;

    /// Move any *completed* breaker materialization out of this operator (and recurse
    /// into children). The default is a no-op for leaf operators without buffered
    /// subtree state.
    fn collect_breaker_states(&mut self, _out: &mut Vec<BreakerState>) {}
}

/// An operator plus its shared counters. Parents pull through this wrapper so rows,
/// batches and inclusive time are recorded uniformly.
struct Metered<'p> {
    inner: Box<dyn Operator + 'p>,
    stats: Rc<OpStats>,
}

impl Metered<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        let start = Instant::now();
        let out = self.inner.next_batch();
        self.stats
            .inclusive
            .set(self.stats.inclusive.get() + start.elapsed());
        match &out {
            Ok(Some(batch)) => {
                self.stats.rows.set(self.stats.rows.get() + batch.len() as u64);
                self.stats.batches.set(self.stats.batches.get() + 1);
            }
            Ok(None) => self.stats.exhausted.set(true),
            Err(_) => {}
        }
        out
    }

    /// The next batch decoded to rows (the boundary for consumers without a columnar
    /// implementation).
    fn next_rows(&mut self) -> Result<Option<RowBatch>, ExecError> {
        Ok(self.next_batch()?.map(Batch::into_rows))
    }

    /// Drain the operator completely (used by pipeline breakers), feeding every batch
    /// to `consume`. Breakers materialize rows, so this is a decode boundary.
    fn drain(
        &mut self,
        mut consume: impl FnMut(RowBatch) -> Result<(), ExecError>,
    ) -> Result<(), ExecError> {
        while let Some(batch) = self.next_rows()? {
            consume(batch)?;
        }
        Ok(())
    }
}

pub(crate) fn bind(expr: &Expr, schema: &Schema) -> Result<Expr, ExecError> {
    expr.bind(schema)
        .map_err(|e| ExecError::BindError(e.to_string()))
}

pub(crate) fn bind_opt(expr: Option<&Expr>, schema: &Schema) -> Result<Option<Expr>, ExecError> {
    expr.map(|e| bind(e, schema)).transpose()
}

pub(crate) fn key_index(
    schema: &Schema,
    reference: &reopt_expr::ColumnRef,
) -> Result<usize, ExecError> {
    schema
        .index_of(reference.qualifier.as_deref(), &reference.name)
        .map_err(ExecError::from)
}

pub(crate) fn lookup_table<'p>(storage: &'p Storage, name: &str) -> Result<&'p Table, ExecError> {
    storage
        .table(name)
        .map_err(|_| ExecError::TableNotFound(name.to_string()))
}

/// Resolve the sorted, deduplicated row-id list of an index lookup (shared by the
/// single-threaded index-scan operator and the parallel engine's index-scan source).
pub(crate) fn resolve_index_row_ids(index: &Index, lookup: &IndexLookup) -> Vec<usize> {
    let mut row_ids: Vec<usize> = match lookup {
        IndexLookup::Equality(value) => index.lookup(value).to_vec(),
        IndexLookup::InList(values) => {
            let mut ids = Vec::new();
            for value in values {
                ids.extend_from_slice(index.lookup(value));
            }
            ids
        }
        IndexLookup::Range { low, high } => {
            let low_bound = match low {
                Some((value, true)) => Bound::Included(value),
                Some((value, false)) => Bound::Excluded(value),
                None => Bound::Unbounded,
            };
            let high_bound = match high {
                Some((value, true)) => Bound::Included(value),
                Some((value, false)) => Bound::Excluded(value),
                None => Bound::Unbounded,
            };
            index.range(low_bound, high_bound)
        }
    };
    row_ids.sort_unstable();
    row_ids.dedup();
    row_ids
}

/// Translate a plan subtree into an operator tree, returning the root operator and the
/// parallel stats tree.
fn build_operator<'p>(
    plan: &'p PhysicalPlan,
    ctx: &BuildContext<'p>,
) -> Result<(Metered<'p>, StatsNode), ExecError> {
    let mut children = Vec::with_capacity(plan.children.len());
    let mut child_stats = Vec::with_capacity(plan.children.len());
    for child in &plan.children {
        let (op, stats) = build_operator(child, ctx)?;
        children.push(op);
        child_stats.push(stats);
    }

    let batch_size = ctx.batch_size;
    // Created before the operator so breaker sinks with a spill path (hash build,
    // sort, aggregate) can account spilled bytes/partitions as they seal runs.
    let stats = Rc::new(OpStats::default());
    let mut scan_encoding: Option<&'static str> = None;
    let op: Box<dyn Operator + 'p> = match &plan.kind {
        PlanKind::SeqScan {
            table, predicate, ..
        } => {
            let table = lookup_table(ctx.storage, table)?;
            let predicate = bind_opt(predicate.as_ref(), &plan.schema)?;
            let mut mask_cache = MaskCache::new();
            // Decide the scan mode once: probe kernel support against a zero-row
            // slice of the *actual* column chunks (their encodings — including
            // `Val` promotions — never change during a query).
            let columnar = ctx.columnar
                && predicate
                    .as_ref()
                    .map(|p| filter_mask(p, &table.scan_range(0..0), &mut mask_cache).is_some())
                    .unwrap_or(true);
            scan_encoding = Some(scan_encoding_label(ctx.columnar, columnar, table));
            Box::new(SeqScanOp {
                table,
                pos: 0,
                predicate,
                batch_size,
                columnar,
                mask_cache,
            })
        }
        PlanKind::IndexScan {
            table,
            column,
            lookup,
            residual,
            ..
        } => {
            let table = lookup_table(ctx.storage, table)?;
            let column_idx = table.schema().index_of(None, column)?;
            let needs_range = matches!(lookup, IndexLookup::Range { .. });
            let index = table
                .index_on_column(column_idx, needs_range)
                .ok_or_else(|| {
                    ExecError::InvalidPlan(format!("no usable index on column '{column}'"))
                })?;
            scan_encoding = Some("row");
            Box::new(IndexScanOp {
                table,
                index,
                lookup,
                residual: bind_opt(residual.as_ref(), &plan.schema)?,
                row_ids: None,
                pos: 0,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
            })
        }
        PlanKind::HashJoin { keys, residual } => {
            let probe_schema = &plan.children[0].schema;
            let build_schema = &plan.children[1].schema;
            let probe_keys = keys
                .iter()
                .map(|(probe, _)| key_index(probe_schema, probe))
                .collect::<Result<Vec<_>, _>>()?;
            let build_keys = keys
                .iter()
                .map(|(_, build)| key_index(build_schema, build))
                .collect::<Result<Vec<_>, _>>()?;
            let build = children.pop().expect("hash join has two children");
            let probe = children.pop().expect("hash join has two children");
            Box::new(HashJoinOp {
                probe,
                build: Some(build),
                build_done: false,
                build_rel_set: plan.children[1].rel_set,
                build_estimated_rows: plan.children[1].estimated_rows,
                build_schema: plan.children[1].schema.clone(),
                probe_keys,
                build_keys,
                residual: bind_opt(residual.as_ref(), &plan.schema)?,
                build_rows: Vec::new(),
                table: HashMap::new(),
                probe_batch: Vec::new(),
                probe_batch_keys: Vec::new(),
                probe_pos: 0,
                match_pos: 0,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
                reservation: ctx.governor.reservation(),
                spill: None,
                stats: Rc::clone(&stats),
                obs: ctx.obs.clone_ref(),
                progress: ProgressMeter::new(plan.rel_set, plan.estimated_rows),
            })
        }
        PlanKind::IndexNestedLoopJoin {
            inner_table,
            inner_alias,
            outer_key,
            inner_key,
            inner_predicate,
            residual,
            ..
        } => {
            let outer_schema = &plan.children[0].schema;
            let table = lookup_table(ctx.storage, inner_table)?;
            let outer_key_idx = key_index(outer_schema, outer_key)?;
            let inner_key_idx = table.schema().index_of(None, inner_key)?;
            let inner_schema = table.schema().qualified(inner_alias);
            let outer = children.pop().expect("index nested loop has one child");
            Box::new(IndexNlJoinOp {
                outer,
                table,
                // Use an existing index if present; otherwise the first pull builds a
                // transient lookup table (keeps the operator correct even if an index
                // was dropped after planning).
                index: table.index_on_column(inner_key_idx, false),
                inner_key_idx,
                transient: None,
                outer_key_idx,
                inner_predicate: bind_opt(inner_predicate.as_ref(), &inner_schema)?,
                residual: bind_opt(residual.as_ref(), &plan.schema)?,
                outer_batch: Vec::new(),
                outer_pos: 0,
                match_pos: 0,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
                obs: ctx.obs.clone_ref(),
                progress: ProgressMeter::new(plan.rel_set, plan.estimated_rows),
            })
        }
        PlanKind::NestedLoopJoin { predicate } => {
            let inner = children.pop().expect("nested loop has two children");
            let outer = children.pop().expect("nested loop has two children");
            Box::new(NestedLoopJoinOp {
                outer,
                inner: Some(inner),
                inner_done: false,
                inner_rel_set: plan.children[1].rel_set,
                inner_estimated_rows: plan.children[1].estimated_rows,
                inner_schema: plan.children[1].schema.clone(),
                predicate: bind_opt(predicate.as_ref(), &plan.schema)?,
                inner_rows: Vec::new(),
                outer_batch: Vec::new(),
                outer_pos: 0,
                inner_pos: 0,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
                obs: ctx.obs.clone_ref(),
                progress: ProgressMeter::new(plan.rel_set, plan.estimated_rows),
            })
        }
        PlanKind::MergeJoin { keys, residual } => {
            let left_schema = &plan.children[0].schema;
            let right_schema = &plan.children[1].schema;
            let left_keys = keys
                .iter()
                .map(|(l, _)| key_index(left_schema, l))
                .collect::<Result<Vec<_>, _>>()?;
            let right_keys = keys
                .iter()
                .map(|(_, r)| key_index(right_schema, r))
                .collect::<Result<Vec<_>, _>>()?;
            let right = children.pop().expect("merge join has two children");
            let left = children.pop().expect("merge join has two children");
            Box::new(MergeJoinOp {
                inputs: Some((left, right)),
                inputs_done: false,
                input_meta: [
                    (plan.children[0].rel_set, plan.children[0].estimated_rows),
                    (plan.children[1].rel_set, plan.children[1].estimated_rows),
                ],
                left_keys,
                right_keys,
                residual: bind_opt(residual.as_ref(), &plan.schema)?,
                left: Vec::new(),
                right: Vec::new(),
                i: 0,
                j: 0,
                block: None,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
                obs: ctx.obs.clone_ref(),
                progress: ProgressMeter::new(plan.rel_set, plan.estimated_rows),
            })
        }
        PlanKind::Filter { predicate } => {
            let input = children.pop().expect("filter has one child");
            Box::new(FilterOp {
                input,
                predicate: bind(predicate, &plan.children[0].schema)?,
                mask_cache: MaskCache::new(),
            })
        }
        PlanKind::Aggregate {
            group_by,
            aggregates,
        } => {
            let input = children.pop().expect("aggregate has one child");
            let input_schema = &plan.children[0].schema;
            let group_exprs = group_by
                .iter()
                .map(|e| bind(e, input_schema))
                .collect::<Result<Vec<_>, _>>()?;
            let agg_funcs: Vec<AggregateFunc> = aggregates.iter().map(|a| a.func).collect();
            let agg_args = aggregates
                .iter()
                .map(|a| bind_opt(a.arg.as_ref(), input_schema))
                .collect::<Result<Vec<_>, _>>()?;
            Box::new(AggregateOp {
                input: Some(input),
                input_done: false,
                input_meta: (plan.children[0].rel_set, plan.children[0].estimated_rows),
                group_exprs,
                agg_funcs,
                agg_args,
                emit: None,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
                reservation: ctx.governor.reservation(),
                spill: None,
                stats: Rc::clone(&stats),
                obs: ctx.obs.clone_ref(),
            })
        }
        PlanKind::Project { exprs } => {
            let input = children.pop().expect("project has one child");
            let input_schema = &plan.children[0].schema;
            let exprs = exprs
                .iter()
                .map(|e| bind(&e.expr, input_schema))
                .collect::<Result<Vec<_>, _>>()?;
            // A projection of plain column references keeps batches columnar (the
            // chunks are reordered, never decoded).
            let indices = exprs
                .iter()
                .map(|e| match e {
                    Expr::BoundColumn { index, .. } => Some(*index),
                    _ => None,
                })
                .collect::<Option<Vec<usize>>>();
            Box::new(ProjectOp {
                input,
                exprs,
                indices,
            })
        }
        PlanKind::Sort { keys } => {
            let input = children.pop().expect("sort has one child");
            let input_schema = &plan.children[0].schema;
            Box::new(SortOp {
                input: Some(input),
                input_done: false,
                input_meta: (plan.children[0].rel_set, plan.children[0].estimated_rows),
                keys: keys
                    .iter()
                    .map(|(e, asc)| Ok((bind(e, input_schema)?, *asc)))
                    .collect::<Result<Vec<_>, ExecError>>()?,
                sorted: Vec::new(),
                pos: 0,
                batch_size,
                tracker: Rc::clone(&ctx.tracker),
                reservation: ctx.governor.reservation(),
                spill: None,
                merge: None,
                stats: Rc::clone(&stats),
                obs: ctx.obs.clone_ref(),
            })
        }
        PlanKind::Limit { count } => {
            let input = children.pop().expect("limit has one child");
            Box::new(LimitOp {
                input,
                remaining: *count,
            })
        }
    };

    stats.encoding.set(scan_encoding);
    Ok((
        Metered {
            inner: op,
            stats: Rc::clone(&stats),
        },
        StatsNode {
            stats,
            children: child_stats,
        },
    ))
}

/// The encoding label a scan reports in EXPLAIN ANALYZE (see [`OpStats::encoding`]).
pub(crate) fn scan_encoding_label(columnar: bool, kernel: bool, table: &Table) -> &'static str {
    if !columnar {
        "row"
    } else if !kernel {
        "fallback-row"
    } else if (0..table.schema().len())
        .any(|idx| matches!(table.column(idx), ColumnData::Dict { .. }))
    {
        "dictionary"
    } else {
        "native"
    }
}

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

/// Sequential scan: slices the table's column chunks a batch-sized range at a time.
/// In columnar mode the predicate runs as a vectorized mask kernel
/// ([`reopt_expr::filter_mask`] — tight typed loops over native vectors and
/// dictionary codes) and the surviving rows stay columnar; otherwise (kill switch, or
/// a predicate shape the kernel does not cover) each chunk is decoded to rows and
/// filtered through the row-wise evaluator.
struct SeqScanOp<'p> {
    table: &'p Table,
    pos: usize,
    predicate: Option<Expr>,
    batch_size: usize,
    /// Whether this scan emits columnar batches (decided once at build time by
    /// probing kernel support against the actual column encodings).
    columnar: bool,
    mask_cache: MaskCache,
}

impl Operator for SeqScanOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        let total = self.table.row_count();
        while self.pos < total {
            let chunk_end = self.pos.saturating_add(self.batch_size).min(total);
            let cols = self.table.scan_range(self.pos..chunk_end);
            self.pos = chunk_end;
            if self.columnar {
                let cols = match &self.predicate {
                    Some(predicate) => {
                        match filter_mask(predicate, &cols, &mut self.mask_cache) {
                            Some(mask) => cols.filter(&mask),
                            // The build-time probe said the kernel covers this
                            // predicate; fall back row-wise rather than failing if
                            // it ever declines a chunk at runtime.
                            None => {
                                let mut rows = cols.into_rows();
                                predicate.filter_batch(&mut rows)?;
                                if rows.is_empty() {
                                    continue;
                                }
                                return Ok(Some(Batch::Rows(rows)));
                            }
                        }
                    }
                    None => cols,
                };
                if cols.is_empty() {
                    continue;
                }
                return Ok(Some(Batch::Cols(cols)));
            }
            let mut rows = cols.into_rows();
            if let Some(predicate) = &self.predicate {
                predicate.filter_batch(&mut rows)?;
            }
            if !rows.is_empty() {
                return Ok(Some(Batch::Rows(rows)));
            }
        }
        Ok(None)
    }
}

/// Index scan: resolves the row-id list on the first pull (buffered state, bounded by
/// the base table), then emits matching rows a batch at a time.
struct IndexScanOp<'p> {
    table: &'p Table,
    index: &'p Index,
    lookup: &'p IndexLookup,
    residual: Option<Expr>,
    row_ids: Option<Vec<usize>>,
    pos: usize,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
}

impl IndexScanOp<'_> {
    fn resolve_row_ids(&mut self) {
        if self.row_ids.is_some() {
            return;
        }
        let row_ids = resolve_index_row_ids(self.index, self.lookup);
        self.tracker
            .acquire(row_ids.len() as u64, 8 * row_ids.len() as u64);
        self.row_ids = Some(row_ids);
    }
}

impl Operator for IndexScanOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.resolve_row_ids();
        let row_ids = self.row_ids.as_ref().expect("resolved above");
        let mut out = Vec::new();
        while out.is_empty() && self.pos < row_ids.len() {
            let chunk_end = self.pos.saturating_add(self.batch_size).min(row_ids.len());
            for &row_id in &row_ids[self.pos..chunk_end] {
                let Some(row) = self.table.row(row_id) else {
                    continue;
                };
                if let Some(p) = &self.residual {
                    if !p.eval_predicate(&row)? {
                        continue;
                    }
                }
                out.push(row);
            }
            self.pos = chunk_end;
        }
        Ok(if out.is_empty() { None } else { Some(Batch::Rows(out)) })
    }
}

/// Filter: applies the predicate to each input batch. Columnar batches are filtered
/// through the vectorized mask kernel (staying columnar) when the predicate shape is
/// covered; otherwise — and for row batches — the row-wise evaluator runs.
struct FilterOp<'p> {
    input: Metered<'p>,
    predicate: Expr,
    mask_cache: MaskCache,
}

impl Operator for FilterOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        while let Some(batch) = self.input.next_batch()? {
            match batch {
                Batch::Cols(cols) => {
                    match filter_mask(&self.predicate, &cols, &mut self.mask_cache) {
                        Some(mask) => {
                            let filtered = cols.filter(&mask);
                            if !filtered.is_empty() {
                                return Ok(Some(Batch::Cols(filtered)));
                            }
                        }
                        None => {
                            let mut rows = cols.into_rows();
                            self.predicate.filter_batch(&mut rows)?;
                            if !rows.is_empty() {
                                return Ok(Some(Batch::Rows(rows)));
                            }
                        }
                    }
                }
                Batch::Rows(mut rows) => {
                    self.predicate.filter_batch(&mut rows)?;
                    if !rows.is_empty() {
                        return Ok(Some(Batch::Rows(rows)));
                    }
                }
            }
        }
        Ok(None)
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        self.input.inner.collect_breaker_states(out);
    }
}

/// Projection: maps each input batch through the output expressions. When every
/// expression is a plain column reference, columnar batches stay columnar (the
/// chunks are reordered without decoding).
struct ProjectOp<'p> {
    input: Metered<'p>,
    exprs: Vec<Expr>,
    /// `Some` when every output expression is a bound column reference.
    indices: Option<Vec<usize>>,
}

impl Operator for ProjectOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        if let (Batch::Cols(cols), Some(indices)) = (&batch, &self.indices) {
            return Ok(Some(Batch::Cols(cols.project(indices))));
        }
        let batch = batch.into_rows();
        let mut out = Vec::with_capacity(batch.len());
        for row in &batch {
            let mut values = Vec::with_capacity(self.exprs.len());
            for expr in &self.exprs {
                values.push(expr.eval(row)?);
            }
            out.push(Row::from_values(values));
        }
        Ok(Some(Batch::Rows(out)))
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        self.input.inner.collect_breaker_states(out);
    }
}

/// Limit: stops pulling from its child once `count` rows have been emitted (early
/// termination — upstream operators never produce the rows beyond the limit).
struct LimitOp<'p> {
    input: Metered<'p>,
    remaining: usize,
}

impl Operator for LimitOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let batch = if batch.len() > self.remaining {
            match batch {
                Batch::Rows(mut rows) => {
                    rows.truncate(self.remaining);
                    Batch::Rows(rows)
                }
                Batch::Cols(cols) => Batch::Cols(ColumnBatch::new(
                    cols.columns()
                        .iter()
                        .map(|c| c.slice(0..self.remaining))
                        .collect(),
                )),
            }
        } else {
            batch
        };
        self.remaining -= batch.len();
        Ok(Some(batch))
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        self.input.inner.collect_breaker_states(out);
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Hash join. The build side is a pipeline breaker (drained into the hash table on the
/// first pull); probing is batch-at-a-time: keys for a whole probe batch are extracted
/// up front, then the probe loop emits joined rows until the output batch is full,
/// suspending mid-batch (and mid-match-list) when it is.
struct HashJoinOp<'p> {
    probe: Metered<'p>,
    /// The build child is retained (not dropped) after draining so that nested breaker
    /// states below it stay reachable for [`Operator::collect_breaker_states`].
    build: Option<Metered<'p>>,
    build_done: bool,
    build_rel_set: RelSet,
    build_estimated_rows: f64,
    build_schema: Schema,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    residual: Option<Expr>,
    build_rows: Vec<Row>,
    table: HashMap<Vec<Value>, Vec<usize>>,
    probe_batch: RowBatch,
    probe_batch_keys: Vec<Option<Vec<Value>>>,
    probe_pos: usize,
    match_pos: usize,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
    /// Byte grant for the in-memory build; released when the build goes out of core.
    reservation: Reservation,
    /// Out-of-core state; `None` while the build fits its grant (the default).
    spill: Option<Box<HashJoinSpill>>,
    stats: Rc<OpStats>,
    obs: ObserverCtx<'p>,
    progress: ProgressMeter,
}

/// Out-of-core state of a hash join whose build side exceeded its memory grant:
/// grace-hash partitioning. Build and probe rows hash-partition into on-disk runs
/// ([`SPILL_FANOUT`] per pass, salted by recursion depth); partitions are then
/// joined one pair at a time by loading the build run back into the in-memory hash
/// table, recursing on partitions that still exceed the budget.
struct HashJoinSpill {
    /// Owns the on-disk partition files; the directory (and anything left in it)
    /// is removed when the join drops, however execution ended.
    dir: SpillDir,
    /// Build-input rows seen (NULL-key rows included), for the breaker event.
    input_rows: u64,
    /// Open build-side partition writers while the build input drains.
    build_writers: Vec<SpillWriter>,
    /// Sealed build runs awaiting their probe counterparts.
    build_runs: Vec<SpillRun>,
    /// Whether the probe input has been fully partitioned into `pending`.
    probe_done: bool,
    /// `(build, probe, depth)` partition pairs still to join.
    pending: VecDeque<(SpillRun, SpillRun, u32)>,
    /// The probe run streaming against the currently loaded build partition. The
    /// run is kept alive beside its reader: dropping the run deletes the file.
    probe_reader: Option<(SpillRun, SpillReader)>,
    /// Block-nested-loop state for a partition that repartitioning cannot split
    /// (one dominant join key) but that fits the *whole* budget: the build run
    /// plus the next build-row offset to load. Each grant-sized build block
    /// re-scans the partition's probe run once.
    chunk: Option<(SpillRun, u64)>,
}

impl HashJoinOp<'_> {
    fn build_table(&mut self) -> Result<(), ExecError> {
        if self.build_done {
            return Ok(());
        }
        let Some(mut build) = self.build.take() else {
            return Ok(());
        };
        let result = build.drain(|batch| {
            if self.spill.is_none() {
                let bytes: u64 = batch.iter().map(|row| row.width() as u64).sum();
                if self.reservation.grow(bytes) {
                    self.tracker.acquire(batch.len() as u64, bytes);
                    for row in batch {
                        let row_idx = self.build_rows.len();
                        if let Some(key) = extract_key(&row, &self.build_keys) {
                            self.table.entry(key).or_default().push(row_idx);
                        }
                        self.build_rows.push(row);
                    }
                    return Ok(());
                }
                // Grant denied. Surface memory pressure *before* committing the
                // spill: a suspending observer re-plans with every buffer intact.
                self.obs.notify(ExecEvent::MemoryPressure(MemoryPressureEvent {
                    kind: BreakerKind::HashBuild,
                    rel_set: self.build_rel_set,
                    estimated_rows: self.build_estimated_rows,
                    buffered_rows: self.build_rows.len() as u64,
                    buffered_bytes: self.reservation.bytes(),
                    budget_bytes: self.reservation.governor().budget().unwrap_or(0),
                }))?;
                self.start_spill()?;
            }
            let spill = self.spill.as_mut().expect("spill committed above");
            for row in batch {
                spill.input_rows += 1;
                // NULL keys never match under equi-join semantics; the spilled
                // build is not a reusable materialization, so they are dropped.
                if let Some(key) = extract_key(&row, &self.build_keys) {
                    let part = spill_partition(0, &key);
                    spill.build_writers[part]
                        .write_row(row.values())
                        .map_err(spill_err)?;
                }
            }
            Ok(())
        });
        // Only observed pipelines (which may suspend and extract breaker state) need
        // the drained subtree kept alive; everywhere else, drop it now so nested
        // breaker buffers are freed as execution proceeds.
        if self.obs.active() {
            self.build = Some(build);
        }
        result?;
        self.build_done = true;
        let (actual_rows, reusable) = match self.spill.as_mut() {
            None => (self.build_rows.len() as u64, true),
            Some(spill) => {
                // Seal the build partitions; probe partitioning happens lazily on
                // the first probe pull.
                for writer in std::mem::take(&mut spill.build_writers) {
                    let run = writer.finish().map_err(spill_err)?;
                    self.stats.record_spill_run(run.bytes());
                    spill.build_runs.push(run);
                }
                (spill.input_rows, false)
            }
        };
        self.obs.notify_breaker(BreakerEvent {
            kind: BreakerKind::HashBuild,
            rel_set: self.build_rel_set,
            estimated_rows: self.build_estimated_rows,
            actual_rows,
            reusable,
        })
    }

    /// Commit the build side to grace-hash partitioning: move the buffered rows
    /// into [`SPILL_FANOUT`] on-disk partitions and release the memory grant.
    fn start_spill(&mut self) -> Result<(), ExecError> {
        let dir = SpillDir::create().map_err(spill_err)?;
        let mut writers = Vec::with_capacity(SPILL_FANOUT);
        for _ in 0..SPILL_FANOUT {
            writers.push(SpillWriter::create(&dir).map_err(spill_err)?);
        }
        let input_rows = self.build_rows.len() as u64;
        for row in self.build_rows.drain(..) {
            if let Some(key) = extract_key(&row, &self.build_keys) {
                let part = spill_partition(0, &key);
                writers[part].write_row(row.values()).map_err(spill_err)?;
            }
        }
        self.table.clear();
        self.reservation.release_all();
        self.spill = Some(Box::new(HashJoinSpill {
            dir,
            input_rows,
            build_writers: writers,
            build_runs: Vec::new(),
            probe_done: false,
            pending: VecDeque::new(),
            probe_reader: None,
            chunk: None,
        }));
        Ok(())
    }

    /// Partition the whole probe input to disk, pairing each probe partition with
    /// its build counterpart in `pending`. Empty pairs are skipped outright.
    fn partition_probe(&mut self) -> Result<(), ExecError> {
        let spill = self.spill.as_mut().expect("probe partitioning requires spill");
        let mut writers = Vec::with_capacity(SPILL_FANOUT);
        for _ in 0..SPILL_FANOUT {
            writers.push(SpillWriter::create(&spill.dir).map_err(spill_err)?);
        }
        // Flush any probe batch pulled before the build committed to spilling
        // (possible only if a probe pull preceded the build, which next_batch
        // never does today — defensive).
        for row in self.probe_batch.drain(..) {
            if let Some(key) = extract_key(&row, &self.probe_keys) {
                writers[spill_partition(0, &key)]
                    .write_row(row.values())
                    .map_err(spill_err)?;
            }
        }
        self.probe_batch_keys.clear();
        self.probe_pos = 0;
        self.match_pos = 0;
        while let Some(batch) = self.probe.next_rows()? {
            for row in batch {
                if let Some(key) = extract_key(&row, &self.probe_keys) {
                    writers[spill_partition(0, &key)]
                        .write_row(row.values())
                        .map_err(spill_err)?;
                }
            }
        }
        for (build_run, writer) in spill.build_runs.drain(..).zip(writers) {
            let probe_run = writer.finish().map_err(spill_err)?;
            self.stats.record_spill_run(probe_run.bytes());
            if build_run.rows() > 0 && probe_run.rows() > 0 {
                spill.pending.push_back((build_run, probe_run, 0));
            }
        }
        spill.probe_done = true;
        Ok(())
    }

    /// Load one build partition into the in-memory hash table and open its probe
    /// counterpart for streaming. If the partition still exceeds the budget, both
    /// sides are repartitioned with a deeper salt (back onto `pending`); at
    /// [`SPILL_MAX_DEPTH`] the join fails honestly instead of recursing forever.
    /// Returns `true` when a partition was loaded and is ready to probe.
    fn load_partition(
        &mut self,
        build_run: SpillRun,
        probe_run: SpillRun,
        depth: u32,
    ) -> Result<bool, ExecError> {
        self.build_rows.clear();
        self.table.clear();
        self.reservation.release_all();
        let mut reader = build_run.read().map_err(spill_err)?;
        while let Some(values) = reader.next_row().map_err(spill_err)? {
            let row = Row::from_values(values);
            if !self.reservation.grow(row.width() as u64) {
                if depth >= SPILL_MAX_DEPTH {
                    let budget = self.reservation.governor().budget().unwrap_or(u64::MAX);
                    if build_run.bytes() > budget {
                        return Err(ExecError::Spill(format!(
                            "grace-hash partition of {} rows still exceeds the memory \
                             budget at recursion depth {SPILL_MAX_DEPTH}; the partition \
                             is dominated by a single join key that repartitioning \
                             cannot split",
                            build_run.rows(),
                        )));
                    }
                    // The partition fits the whole budget; only the currently
                    // *available* grant is too small (enclosing operators hold
                    // the rest, and waiting for them would deadlock a
                    // single-threaded pipeline). Block nested-loop fallback:
                    // join the unsplittable partition one grant-sized build
                    // block at a time, re-scanning its probe run per block.
                    drop(reader);
                    self.build_rows.clear();
                    self.table.clear();
                    self.reservation.release_all();
                    return self.load_block(build_run, probe_run, 0);
                }
                drop(reader);
                self.build_rows.clear();
                self.table.clear();
                self.reservation.release_all();
                self.repartition(build_run, probe_run, depth)?;
                return Ok(false);
            }
            let row_idx = self.build_rows.len();
            let key = extract_key(&row, &self.build_keys)
                .expect("spilled build rows always carry non-NULL keys");
            self.table.entry(key).or_default().push(row_idx);
            self.build_rows.push(row);
        }
        drop(reader);
        let probe_reader = probe_run.read().map_err(spill_err)?;
        let spill = self.spill.as_mut().expect("loading a partition requires spill");
        spill.probe_reader = Some((probe_run, probe_reader));
        Ok(true)
    }

    /// Load one block of a block-nested-loop partition, starting at build-run row
    /// `start`, and open a fresh scan of its probe run. The first row of every
    /// block loads even when its grant is denied — a bounded overcommit of one
    /// row that guarantees progress when enclosing operators hold the entire
    /// budget (the honest error in [`Self::load_partition`] covers partitions
    /// larger than the whole budget).
    fn load_block(
        &mut self,
        build_run: SpillRun,
        probe_run: SpillRun,
        start: u64,
    ) -> Result<bool, ExecError> {
        self.build_rows.clear();
        self.table.clear();
        self.reservation.release_all();
        let mut reader = build_run.read().map_err(spill_err)?;
        let mut idx = 0u64;
        while let Some(values) = reader.next_row().map_err(spill_err)? {
            if idx < start {
                idx += 1;
                continue;
            }
            let row = Row::from_values(values);
            if !self.reservation.grow(row.width() as u64) && !self.build_rows.is_empty() {
                break;
            }
            let row_idx = self.build_rows.len();
            let key = extract_key(&row, &self.build_keys)
                .expect("spilled build rows always carry non-NULL keys");
            self.table.entry(key).or_default().push(row_idx);
            self.build_rows.push(row);
            idx += 1;
        }
        drop(reader);
        let probe_reader = probe_run.read().map_err(spill_err)?;
        let spill = self.spill.as_mut().expect("loading a block requires spill");
        spill.chunk = Some((build_run, idx));
        spill.probe_reader = Some((probe_run, probe_reader));
        Ok(true)
    }

    /// Advance a block-nested-loop partition after its probe scan drained: load
    /// the next build block and re-open the probe run against it. Returns `false`
    /// (dropping both runs) when the build run is fully joined — or when no
    /// chunked partition is active (the ordinary single-pass case).
    fn next_chunk(&mut self, probe_run: SpillRun) -> Result<bool, ExecError> {
        let spill = self.spill.as_mut().expect("advancing a chunk requires spill");
        let Some((build_run, next)) = spill.chunk.take() else {
            return Ok(false);
        };
        if next >= build_run.rows() {
            return Ok(false);
        }
        self.load_block(build_run, probe_run, next)
    }

    /// Split an over-budget partition pair into [`SPILL_FANOUT`] sub-pairs using a
    /// deeper salt, queueing the non-empty ones at `depth + 1`.
    fn repartition(
        &mut self,
        build_run: SpillRun,
        probe_run: SpillRun,
        depth: u32,
    ) -> Result<(), ExecError> {
        let salt = depth + 1;
        let spill = self.spill.as_mut().expect("repartitioning requires spill");
        let mut pairs = Vec::with_capacity(SPILL_FANOUT);
        for _ in 0..SPILL_FANOUT {
            pairs.push((
                SpillWriter::create(&spill.dir).map_err(spill_err)?,
                SpillWriter::create(&spill.dir).map_err(spill_err)?,
            ));
        }
        for (source, keys, side) in [
            (&build_run, &self.build_keys, 0usize),
            (&probe_run, &self.probe_keys, 1usize),
        ] {
            let mut reader = source.read().map_err(spill_err)?;
            while let Some(values) = reader.next_row().map_err(spill_err)? {
                let row = Row::from_values(values);
                let key = extract_key(&row, keys)
                    .expect("spilled rows always carry non-NULL keys");
                let part = spill_partition(salt, &key);
                let writer = if side == 0 { &mut pairs[part].0 } else { &mut pairs[part].1 };
                writer.write_row(row.values()).map_err(spill_err)?;
            }
        }
        for (build_writer, probe_writer) in pairs {
            let sub_build = build_writer.finish().map_err(spill_err)?;
            let sub_probe = probe_writer.finish().map_err(spill_err)?;
            self.stats.record_spill_run(sub_build.bytes());
            self.stats.record_spill_run(sub_probe.bytes());
            if sub_build.rows() > 0 && sub_probe.rows() > 0 {
                spill.pending.push_back((sub_build, sub_probe, salt));
            }
        }
        Ok(())
    }

    /// Out-of-core probe loop: stream the current partition's probe run against the
    /// loaded build partition, advancing through `pending` as partitions finish.
    fn next_batch_spilled(&mut self) -> Result<Option<Batch>, ExecError> {
        if !self.spill.as_ref().expect("spilled next_batch requires spill").probe_done {
            self.partition_probe()?;
        }
        let mut out = Vec::new();
        'drive: loop {
            // Stream the open probe run, emitting matches against the loaded table.
            while let Some((_, reader)) = self
                .spill
                .as_mut()
                .expect("spill state outlives the probe loop")
                .probe_reader
                .as_mut()
            {
                let Some(values) = reader.next_row().map_err(spill_err)? else {
                    let spill = self.spill.as_mut().expect("checked above");
                    let (probe_run, _) = spill.probe_reader.take().expect("checked above");
                    // A block-nested-loop partition re-scans its probe run
                    // against each successive build block before moving on.
                    if self.next_chunk(probe_run)? {
                        continue;
                    }
                    break;
                };
                let row = Row::from_values(values);
                let key = extract_key(&row, &self.probe_keys)
                    .expect("spilled probe rows always carry non-NULL keys");
                if let Some(matches) = self.table.get(&key) {
                    for &build_idx in matches {
                        let joined = row.join(&self.build_rows[build_idx]);
                        if let Some(p) = &self.residual {
                            if !p.eval_predicate(&joined)? {
                                continue;
                            }
                        }
                        out.push(joined);
                    }
                }
                // Soft cap: one probe row's full match list may overshoot the
                // batch size, which downstream operators tolerate.
                if out.len() >= self.batch_size {
                    break 'drive;
                }
            }
            // Advance to the next partition pair (skipping ones that repartition).
            loop {
                let next = self
                    .spill
                    .as_mut()
                    .expect("spill state outlives the probe loop")
                    .pending
                    .pop_front();
                let Some((build_run, probe_run, depth)) = next else {
                    self.build_rows.clear();
                    self.table.clear();
                    self.reservation.release_all();
                    break 'drive;
                };
                if self.load_partition(build_run, probe_run, depth)? {
                    break;
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            self.progress.tick(&self.obs, out.len())?;
            Ok(Some(Batch::Rows(out)))
        }
    }

    /// Pull the next probe batch and precompute its keys. Returns `false` at EOF.
    /// Columnar probe batches extract their keys with the typed hash-key kernel
    /// (touching only the key columns) before decoding for join-output assembly.
    fn refill_probe(&mut self) -> Result<bool, ExecError> {
        let Some(batch) = self.probe.next_batch()? else {
            return Ok(false);
        };
        match batch {
            Batch::Cols(cols) => {
                self.probe_batch_keys = cols.extract_keys(&self.probe_keys);
                self.probe_batch = cols.into_rows();
            }
            Batch::Rows(rows) => {
                self.probe_batch_keys.clear();
                self.probe_batch_keys
                    .extend(rows.iter().map(|row| extract_key(row, &self.probe_keys)));
                self.probe_batch = rows;
            }
        }
        self.probe_pos = 0;
        self.match_pos = 0;
        Ok(true)
    }
}

impl Operator for HashJoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.build_table()?;
        if self.spill.is_some() {
            return self.next_batch_spilled();
        }
        let mut out = Vec::new();
        'fill: loop {
            if self.probe_pos >= self.probe_batch.len() {
                if !self.refill_probe()? {
                    break;
                }
                if self.probe_batch.is_empty() {
                    continue;
                }
            }
            while self.probe_pos < self.probe_batch.len() {
                let matches = match &self.probe_batch_keys[self.probe_pos] {
                    Some(key) => self.table.get(key).map(Vec::as_slice).unwrap_or(&[]),
                    None => &[],
                };
                let probe_row = &self.probe_batch[self.probe_pos];
                while self.match_pos < matches.len() {
                    if out.len() >= self.batch_size {
                        break 'fill;
                    }
                    let build_idx = matches[self.match_pos];
                    self.match_pos += 1;
                    let joined = probe_row.join(&self.build_rows[build_idx]);
                    if let Some(p) = &self.residual {
                        if !p.eval_predicate(&joined)? {
                            continue;
                        }
                    }
                    out.push(joined);
                }
                self.probe_pos += 1;
                self.match_pos = 0;
            }
            if out.len() >= self.batch_size {
                break;
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            self.progress.tick(&self.obs, out.len())?;
            Ok(Some(Batch::Rows(out)))
        }
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        // Innermost states first: recurse before extracting this operator's own build.
        self.probe.inner.collect_breaker_states(out);
        if let Some(build) = &mut self.build {
            build.inner.collect_breaker_states(out);
        }
        // An empty completed build is still extractable: knowing a subtree produced
        // zero rows is exactly the kind of truth a re-optimizer wants to reuse.
        // A spilled build is not: its rows live in NULL-key-stripped on-disk
        // partitions, not in `build_rows` (its breaker event said `reusable: false`).
        if self.build_done && self.spill.is_none() {
            self.table.clear();
            out.push(BreakerState {
                kind: BreakerKind::HashBuild,
                rel_set: self.build_rel_set,
                schema: self.build_schema.clone(),
                rows: std::mem::take(&mut self.build_rows),
            });
        }
    }
}

/// Index nested-loop join: streams the outer side, probing the inner table's index (or
/// a transient hash map) per outer row, suspending mid-match-list when the output batch
/// fills up.
struct IndexNlJoinOp<'p> {
    outer: Metered<'p>,
    table: &'p Table,
    index: Option<&'p Index>,
    inner_key_idx: usize,
    transient: Option<HashMap<Value, Vec<usize>>>,
    outer_key_idx: usize,
    inner_predicate: Option<Expr>,
    residual: Option<Expr>,
    outer_batch: RowBatch,
    outer_pos: usize,
    match_pos: usize,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
    obs: ObserverCtx<'p>,
    progress: ProgressMeter,
}

impl IndexNlJoinOp<'_> {
    /// Without an index, the first pull builds a transient lookup table over the inner
    /// side (buffered state, bounded by the base table). Only the key column is
    /// decoded — the other columns stay compressed until a probe hits.
    fn ensure_lookup(&mut self) {
        if self.index.is_some() || self.transient.is_some() {
            return;
        }
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        let key_column = self.table.column(self.inner_key_idx);
        for row_id in 0..self.table.row_count() {
            if !key_column.is_null_at(row_id) {
                map.entry(key_column.value_at(row_id))
                    .or_default()
                    .push(row_id);
            }
        }
        let entries = map.values().map(Vec::len).sum::<usize>() as u64;
        self.tracker.acquire(entries, 8 * entries);
        self.transient = Some(map);
    }
}

impl Operator for IndexNlJoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.ensure_lookup();
        let mut out = Vec::new();
        'fill: loop {
            if self.outer_pos >= self.outer_batch.len() {
                let Some(batch) = self.outer.next_rows()? else {
                    // Every outer row has been probed: the rows counted so far plus
                    // the batch under construction are the join's complete output, so
                    // the progress report carries a true cardinality — the earliest
                    // one an index-NL pipeline ever produces (it has no breaker).
                    self.progress.finish(&self.obs, out.len())?;
                    break;
                };
                self.outer_batch = batch;
                self.outer_pos = 0;
                self.match_pos = 0;
                continue;
            }
            while self.outer_pos < self.outer_batch.len() {
                let outer_row = &self.outer_batch[self.outer_pos];
                let key = outer_row.value(self.outer_key_idx);
                let matches: &[usize] = if key.is_null() {
                    &[]
                } else {
                    match (self.index, &self.transient) {
                        (Some(index), _) => index.lookup(key),
                        (None, Some(map)) => map.get(key).map(Vec::as_slice).unwrap_or(&[]),
                        (None, None) => &[],
                    }
                };
                while self.match_pos < matches.len() {
                    if out.len() >= self.batch_size {
                        break 'fill;
                    }
                    let row_id = matches[self.match_pos];
                    self.match_pos += 1;
                    let Some(inner_row) = self.table.row(row_id) else {
                        continue;
                    };
                    if let Some(p) = &self.inner_predicate {
                        if !p.eval_predicate(&inner_row)? {
                            continue;
                        }
                    }
                    let joined = outer_row.join(&inner_row);
                    if let Some(p) = &self.residual {
                        if !p.eval_predicate(&joined)? {
                            continue;
                        }
                    }
                    out.push(joined);
                }
                self.outer_pos += 1;
                self.match_pos = 0;
            }
            if out.len() >= self.batch_size {
                break;
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            self.progress.tick(&self.obs, out.len())?;
            Ok(Some(Batch::Rows(out)))
        }
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        self.outer.inner.collect_breaker_states(out);
    }
}

/// Plain nested-loop join: the inner side is a pipeline breaker (buffered fully); the
/// outer side streams, with a cursor over (outer row, inner row) pairs.
struct NestedLoopJoinOp<'p> {
    outer: Metered<'p>,
    /// Retained after draining so nested breaker states stay reachable.
    inner: Option<Metered<'p>>,
    inner_done: bool,
    inner_rel_set: RelSet,
    inner_estimated_rows: f64,
    inner_schema: Schema,
    predicate: Option<Expr>,
    inner_rows: Vec<Row>,
    outer_batch: RowBatch,
    outer_pos: usize,
    inner_pos: usize,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
    obs: ObserverCtx<'p>,
    progress: ProgressMeter,
}

impl NestedLoopJoinOp<'_> {
    fn buffer_inner(&mut self) -> Result<(), ExecError> {
        if self.inner_done {
            return Ok(());
        }
        let Some(mut inner) = self.inner.take() else {
            return Ok(());
        };
        let result = {
            let inner_rows = &mut self.inner_rows;
            let tracker = &self.tracker;
            inner.drain(|batch| {
                let bytes: u64 = batch.iter().map(|row| row.width() as u64).sum();
                tracker.acquire(batch.len() as u64, bytes);
                inner_rows.extend(batch);
                Ok(())
            })
        };
        // As in HashJoinOp: retain the drained child only for observed pipelines.
        if self.obs.active() {
            self.inner = Some(inner);
        }
        result?;
        self.inner_done = true;
        self.obs.notify_breaker(BreakerEvent {
            kind: BreakerKind::NestedLoopInner,
            rel_set: self.inner_rel_set,
            estimated_rows: self.inner_estimated_rows,
            actual_rows: self.inner_rows.len() as u64,
            reusable: true,
        })
    }
}

impl Operator for NestedLoopJoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.buffer_inner()?;
        if self.inner_rows.is_empty() {
            // No output is possible, but still drain the outer side so its subtree
            // reports true actual cardinalities (the seed executor always executed
            // both children; leaving actual_rows=0 would feed spurious q-errors to
            // the re-optimization controller).
            self.outer.drain(|_| Ok(()))?;
            return Ok(None);
        }
        let mut out = Vec::new();
        'fill: loop {
            if self.outer_pos >= self.outer_batch.len() {
                let Some(batch) = self.outer.next_rows()? else {
                    break;
                };
                self.outer_batch = batch;
                self.outer_pos = 0;
                self.inner_pos = 0;
                continue;
            }
            while self.outer_pos < self.outer_batch.len() {
                let outer_row = &self.outer_batch[self.outer_pos];
                while self.inner_pos < self.inner_rows.len() {
                    if out.len() >= self.batch_size {
                        break 'fill;
                    }
                    let inner_row = &self.inner_rows[self.inner_pos];
                    self.inner_pos += 1;
                    let joined = outer_row.join(inner_row);
                    if let Some(p) = &self.predicate {
                        if !p.eval_predicate(&joined)? {
                            continue;
                        }
                    }
                    out.push(joined);
                }
                self.outer_pos += 1;
                self.inner_pos = 0;
            }
            if out.len() >= self.batch_size {
                break;
            }
        }
        if out.is_empty() {
            return Ok(None);
        }
        self.progress.tick(&self.obs, out.len())?;
        Ok(Some(Batch::Rows(out)))
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        self.outer.inner.collect_breaker_states(out);
        if let Some(inner) = &mut self.inner {
            inner.inner.collect_breaker_states(out);
        }
        // As for hash builds: an empty completed inner is still extractable truth.
        if self.inner_done {
            out.push(BreakerState {
                kind: BreakerKind::NestedLoopInner,
                rel_set: self.inner_rel_set,
                schema: self.inner_schema.clone(),
                rows: std::mem::take(&mut self.inner_rows),
            });
        }
    }
}

/// The cursor inside a run of equal keys on both merge-join sides.
struct MergeBlock {
    /// End (exclusive) of the equal-key run on the left side.
    i_end: usize,
    /// End (exclusive) of the equal-key run on the right side.
    j_end: usize,
    /// Current left row within the run.
    li: usize,
    /// Current right row within the run.
    ri: usize,
}

/// Sort-merge join: both inputs are pipeline breakers (buffered and sorted by their join
/// keys); the merge itself streams, suspending inside equal-key blocks when the output
/// batch fills up.
struct MergeJoinOp<'p> {
    /// Retained after draining so nested breaker states stay reachable.
    inputs: Option<(Metered<'p>, Metered<'p>)>,
    inputs_done: bool,
    /// `(rel_set, estimated_rows)` of the left and right inputs.
    input_meta: [(RelSet, f64); 2],
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Option<Expr>,
    left: Vec<(Vec<Value>, Row)>,
    right: Vec<(Vec<Value>, Row)>,
    i: usize,
    j: usize,
    block: Option<MergeBlock>,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
    obs: ObserverCtx<'p>,
    progress: ProgressMeter,
}

impl MergeJoinOp<'_> {
    fn buffer_and_sort(&mut self) -> Result<(), ExecError> {
        if self.inputs_done {
            return Ok(());
        }
        let Some((mut left_input, mut right_input)) = self.inputs.take() else {
            return Ok(());
        };
        let result = (|| -> Result<(), ExecError> {
            // Merge inputs drop NULL-key rows while buffering, so the buffered counts
            // undercount: report the metered child row counts instead, and mark the
            // state as not reusable.
            drain_keyed(&mut left_input, &self.left_keys, &self.tracker, &mut self.left)?;
            self.obs.notify_breaker(BreakerEvent {
                kind: BreakerKind::MergeInput,
                rel_set: self.input_meta[0].0,
                estimated_rows: self.input_meta[0].1,
                actual_rows: left_input.stats.rows.get(),
                reusable: false,
            })?;
            drain_keyed(&mut right_input, &self.right_keys, &self.tracker, &mut self.right)?;
            self.obs.notify_breaker(BreakerEvent {
                kind: BreakerKind::MergeInput,
                rel_set: self.input_meta[1].0,
                estimated_rows: self.input_meta[1].1,
                actual_rows: right_input.stats.rows.get(),
                reusable: false,
            })
        })();
        // As in HashJoinOp: retain the drained children only for observed pipelines.
        if self.obs.active() {
            self.inputs = Some((left_input, right_input));
        }
        result?;
        self.inputs_done = true;
        self.left.sort_by(|a, b| a.0.cmp(&b.0));
        self.right.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(())
    }

    /// Advance `i`/`j` to the next pair of equal keys, opening a block cursor.
    fn open_next_block(&mut self) {
        while self.i < self.left.len() && self.j < self.right.len() {
            match self.left[self.i].0.cmp(&self.right[self.j].0) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let key = &self.left[self.i].0;
                    let mut i_end = self.i + 1;
                    while i_end < self.left.len() && &self.left[i_end].0 == key {
                        i_end += 1;
                    }
                    let mut j_end = self.j + 1;
                    while j_end < self.right.len() && &self.right[j_end].0 == key {
                        j_end += 1;
                    }
                    self.block = Some(MergeBlock {
                        i_end,
                        j_end,
                        li: self.i,
                        ri: self.j,
                    });
                    return;
                }
            }
        }
    }
}

impl Operator for MergeJoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.buffer_and_sort()?;
        let mut out = Vec::new();
        loop {
            if self.block.is_none() {
                self.open_next_block();
            }
            let Some(block) = &mut self.block else {
                break;
            };
            while block.li < block.i_end {
                if out.len() >= self.batch_size {
                    self.progress.tick(&self.obs, out.len())?;
                    return Ok(Some(Batch::Rows(out)));
                }
                let joined = self.left[block.li].1.join(&self.right[block.ri].1);
                block.ri += 1;
                if block.ri == block.j_end {
                    block.ri = self.j;
                    block.li += 1;
                }
                if let Some(p) = &self.residual {
                    if !p.eval_predicate(&joined)? {
                        continue;
                    }
                }
                out.push(joined);
            }
            // Block exhausted: move past it.
            self.i = block.i_end;
            self.j = block.j_end;
            self.block = None;
        }
        if out.is_empty() {
            return Ok(None);
        }
        self.progress.tick(&self.obs, out.len())?;
        Ok(Some(Batch::Rows(out)))
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        // The keyed, NULL-filtered merge buffers themselves are not reusable; only
        // recurse into the children for nested states.
        if let Some((left, right)) = &mut self.inputs {
            left.inner.collect_breaker_states(out);
            right.inner.collect_breaker_states(out);
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers: aggregate and sort
// ---------------------------------------------------------------------------

/// Aggregation: drains its input into accumulator states (the buffered state is one
/// entry per group), then emits result rows in batches.
/// On-disk runs of a hash aggregation that exceeded its memory grant. Each run
/// holds `group key ++ encoded accumulator states` records in ascending key order,
/// so a k-way merge can combine partial states for the same group with
/// [`Accumulator::merge`]. External emission is therefore in **sorted-key order**
/// (the in-memory path emits first-seen order) — a divergence that only exists
/// under a finite budget.
struct AggSpill {
    /// Owns the run files; removed when the aggregate drops.
    dir: SpillDir,
    runs: Vec<SpillRun>,
}

/// K-way, key-merging cursor over sorted aggregation runs.
struct AggMerge {
    /// One cursor per run (run kept alive beside its reader) plus the head record.
    cursors: Vec<(SpillRun, SpillReader, Option<Vec<Value>>)>,
    key_len: usize,
    funcs: Vec<AggregateFunc>,
    /// Keeps the run directory (and files) alive until emission finishes.
    _dir: SpillDir,
}

/// One merged output group from [`AggMerge`]: the group key plus the merged
/// accumulator state across every run that carried the key.
type MergedGroup = (Vec<Value>, Vec<Accumulator>);

impl AggMerge {
    fn open(spill: AggSpill, key_len: usize, funcs: Vec<AggregateFunc>) -> Result<Self, ExecError> {
        let mut cursors = Vec::with_capacity(spill.runs.len());
        for run in spill.runs {
            let mut reader = run.read().map_err(spill_err)?;
            let head = reader.next_row().map_err(spill_err)?;
            cursors.push((run, reader, head));
        }
        Ok(Self {
            cursors,
            key_len,
            funcs,
            _dir: spill.dir,
        })
    }

    /// Pop the next group: the minimal key across all heads, with every run's
    /// partial state for that key merged into one.
    fn next_group(&mut self) -> Result<Option<MergedGroup>, ExecError> {
        let mut min_key: Option<Vec<Value>> = None;
        for (_, _, head) in &self.cursors {
            let Some(head) = head else { continue };
            let key = &head[..self.key_len];
            if min_key.as_ref().map(|m| key < &m[..]).unwrap_or(true) {
                min_key = Some(key.to_vec());
            }
        }
        let Some(key) = min_key else {
            return Ok(None);
        };
        let mut merged: Option<Vec<Accumulator>> = None;
        for idx in 0..self.cursors.len() {
            let matches = self.cursors[idx]
                .2
                .as_ref()
                .map(|head| head[..self.key_len] == key[..])
                .unwrap_or(false);
            if !matches {
                continue;
            }
            let cursor = &mut self.cursors[idx];
            let head = cursor.2.take().expect("matched head");
            cursor.2 = cursor.1.next_row().map_err(spill_err)?;
            let state = decode_accumulators(&self.funcs, &head[self.key_len..])?;
            match merged.as_mut() {
                None => merged = Some(state),
                Some(acc) => {
                    for (current, partial) in acc.iter_mut().zip(state) {
                        current.merge(partial);
                    }
                }
            }
        }
        Ok(Some((key, merged.expect("at least one run matched the min key"))))
    }
}

/// Seal the current group states as one key-sorted on-disk run, releasing the grant.
fn flush_agg_run(
    spill: &mut AggSpill,
    groups: &mut HashMap<Vec<Value>, usize>,
    states: &mut Vec<(Vec<Value>, Vec<Accumulator>)>,
    stats: &OpStats,
    reservation: &mut Reservation,
) -> Result<(), ExecError> {
    if states.is_empty() {
        return Ok(());
    }
    let mut flushed = std::mem::take(states);
    groups.clear();
    flushed.sort_by(|a, b| a.0.cmp(&b.0));
    let mut writer = SpillWriter::create(&spill.dir).map_err(spill_err)?;
    let mut record = Vec::new();
    for (key, accumulators) in flushed {
        record.clear();
        record.extend(key);
        for accumulator in accumulators {
            accumulator.spill_encode(&mut record);
        }
        writer.write_row(&record).map_err(spill_err)?;
    }
    let run = writer.finish().map_err(spill_err)?;
    stats.record_spill_run(run.bytes());
    spill.runs.push(run);
    reservation.release_all();
    Ok(())
}

/// Decode the accumulator states of one spilled aggregation record.
fn decode_accumulators(
    funcs: &[AggregateFunc],
    values: &[Value],
) -> Result<Vec<Accumulator>, ExecError> {
    let mut cursor = values.iter().cloned();
    let states = funcs
        .iter()
        .map(|&func| Accumulator::spill_decode(func, &mut cursor))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| ExecError::Spill("truncated aggregate state record".into()))?;
    Ok(states)
}

/// How the aggregate emits its groups: straight from memory (first-seen order) or
/// merged from spilled runs (sorted-key order).
enum AggEmit {
    InMemory(std::vec::IntoIter<(Vec<Value>, Vec<Accumulator>)>),
    External(AggMerge),
}

struct AggregateOp<'p> {
    /// Retained after draining so nested breaker states stay reachable.
    input: Option<Metered<'p>>,
    input_done: bool,
    /// `(rel_set, estimated_rows)` of the input subtree.
    input_meta: (RelSet, f64),
    group_exprs: Vec<Expr>,
    agg_funcs: Vec<AggregateFunc>,
    agg_args: Vec<Option<Expr>>,
    emit: Option<AggEmit>,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
    /// Byte grant for the group-state table; released as runs flush to disk.
    reservation: Reservation,
    /// Sealed on-disk runs; `None` while the states fit their grant (the default).
    spill: Option<AggSpill>,
    stats: Rc<OpStats>,
    obs: ObserverCtx<'p>,
}

impl AggregateOp<'_> {
    fn consume_input(&mut self) -> Result<(), ExecError> {
        if self.input_done {
            return Ok(());
        }
        let Some(mut input) = self.input.take() else {
            return Ok(());
        };

        let result = if self.group_exprs.is_empty() {
            // Single-group aggregation always produces exactly one row; its state
            // is a handful of accumulators, so it never spills.
            let mut accumulators: Vec<Accumulator> =
                self.agg_funcs.iter().map(|&f| Accumulator::new(f)).collect();
            let agg_args = &self.agg_args;
            let result = input.drain(|batch| {
                for row in &batch {
                    for (accumulator, arg) in accumulators.iter_mut().zip(agg_args) {
                        accumulator.update(arg.as_ref(), row)?;
                    }
                }
                Ok(())
            });
            if result.is_ok() {
                self.tracker.acquire(1, 8);
                self.emit = Some(AggEmit::InMemory(
                    vec![(Vec::new(), accumulators)].into_iter(),
                ));
            }
            result
        } else {
            // Hash aggregation; groups are emitted in first-seen order for determinism.
            let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut states: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
            let result = {
                let group_exprs = &self.group_exprs;
                let agg_funcs = &self.agg_funcs;
                let agg_args = &self.agg_args;
                let tracker = &self.tracker;
                let groups = &mut groups;
                let states = &mut states;
                input.drain(|batch| {
                    for row in &batch {
                        let mut key = Vec::with_capacity(group_exprs.len());
                        for expr in group_exprs {
                            key.push(expr.eval(row)?);
                        }
                        let idx = match groups.get(&key) {
                            Some(&idx) => idx,
                            None => {
                                let key_bytes: u64 =
                                    key.iter().map(|v| v.width() as u64).sum();
                                if let Some(spill) = self.spill.as_mut() {
                                    if !self.reservation.grow(key_bytes) {
                                        flush_agg_run(
                                            spill,
                                            groups,
                                            states,
                                            &self.stats,
                                            &mut self.reservation,
                                        )?;
                                        let _ = self.reservation.grow(key_bytes);
                                    }
                                } else if !self.reservation.grow(key_bytes) {
                                    // Surface memory pressure before the spill
                                    // commits (see HashJoinOp::build_table).
                                    self.obs.notify(ExecEvent::MemoryPressure(
                                        MemoryPressureEvent {
                                            kind: BreakerKind::AggregateInput,
                                            rel_set: self.input_meta.0,
                                            estimated_rows: self.input_meta.1,
                                            buffered_rows: states.len() as u64,
                                            buffered_bytes: self.reservation.bytes(),
                                            budget_bytes: self
                                                .reservation
                                                .governor()
                                                .budget()
                                                .unwrap_or(0),
                                        },
                                    ))?;
                                    let spill = self.spill.insert(AggSpill {
                                        dir: SpillDir::create().map_err(spill_err)?,
                                        runs: Vec::new(),
                                    });
                                    flush_agg_run(
                                        spill,
                                        groups,
                                        states,
                                        &self.stats,
                                        &mut self.reservation,
                                    )?;
                                    let _ = self.reservation.grow(key_bytes);
                                } else {
                                    tracker.acquire(1, key_bytes);
                                }
                                let idx = states.len();
                                groups.insert(key.clone(), idx);
                                states.push((
                                    key,
                                    agg_funcs.iter().map(|&f| Accumulator::new(f)).collect(),
                                ));
                                idx
                            }
                        };
                        for (accumulator, arg) in states[idx].1.iter_mut().zip(agg_args) {
                            accumulator.update(arg.as_ref(), row)?;
                        }
                    }
                    Ok(())
                })
            };
            if result.is_ok() {
                match self.spill.as_mut() {
                    None => self.emit = Some(AggEmit::InMemory(states.into_iter())),
                    Some(spill) => {
                        flush_agg_run(
                            spill,
                            &mut groups,
                            &mut states,
                            &self.stats,
                            &mut self.reservation,
                        )?;
                        let spill = self.spill.take().expect("checked above");
                        self.emit = Some(AggEmit::External(AggMerge::open(
                            spill,
                            self.group_exprs.len(),
                            self.agg_funcs.clone(),
                        )?));
                    }
                }
            }
            result
        };
        let input_rows = input.stats.rows.get();
        // As in HashJoinOp: retain the drained child only for observed pipelines.
        if self.obs.active() {
            self.input = Some(input);
        }
        result?;
        self.input_done = true;
        self.obs.notify_breaker(BreakerEvent {
            kind: BreakerKind::AggregateInput,
            rel_set: self.input_meta.0,
            estimated_rows: self.input_meta.1,
            actual_rows: input_rows,
            reusable: false,
        })
    }
}

impl Operator for AggregateOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.consume_input()?;
        // `emit` stays unset when a previous pull failed mid-drain; the pipeline is
        // poisoned at that point and further pulls just report exhaustion.
        let Some(emit) = self.emit.as_mut() else {
            return Ok(None);
        };
        let mut out = Vec::new();
        match emit {
            AggEmit::InMemory(groups) => {
                out.reserve(self.batch_size.min(groups.len()));
                for (key, accumulators) in groups.by_ref().take(self.batch_size) {
                    let mut values = key;
                    values.extend(accumulators.into_iter().map(Accumulator::finish));
                    out.push(Row::from_values(values));
                }
            }
            AggEmit::External(merge) => {
                while out.len() < self.batch_size {
                    let Some((key, accumulators)) = merge.next_group()? else { break };
                    let mut values = key;
                    values.extend(accumulators.into_iter().map(Accumulator::finish));
                    out.push(Row::from_values(values));
                }
            }
        }
        Ok(if out.is_empty() { None } else { Some(Batch::Rows(out)) })
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        // Group states are not a reusable materialization; only recurse.
        if let Some(input) = &mut self.input {
            input.inner.collect_breaker_states(out);
        }
    }
}

/// Compare two key tuples under per-key sort directions.
fn compare_sort_keys(a: &[Value], b: &[Value], directions: &[bool]) -> std::cmp::Ordering {
    for (idx, ascending) in directions.iter().enumerate() {
        let ordering = a[idx].cmp(&b[idx]);
        let ordering = if *ascending { ordering } else { ordering.reverse() };
        if ordering != std::cmp::Ordering::Equal {
            return ordering;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort a keyed buffer in emission order (stable, direction-aware).
fn sort_keyed(keyed: &mut [(Vec<Value>, Row)], directions: &[bool]) {
    keyed.sort_by(|a, b| compare_sort_keys(&a.0, &b.0, directions));
}

/// On-disk runs of a sort that exceeded its memory grant. Each run holds
/// `key values ++ row values` records in emission order; a k-way merge over the
/// runs reproduces the exact output of the in-memory sort (stable, because rows
/// are flushed to runs in input order and the merge breaks key ties by run index).
struct SortSpill {
    /// Owns the run files; removed when the sort drops, however execution ended.
    dir: SpillDir,
    runs: Vec<SpillRun>,
}

/// K-way merge cursor over sorted spill runs.
struct SortMerge {
    /// One cursor per run: the run kept alive beside its reader (dropping the run
    /// deletes the file), plus the buffered head record.
    cursors: Vec<(SpillRun, SpillReader, Option<Vec<Value>>)>,
    key_len: usize,
    directions: Vec<bool>,
}

impl SortMerge {
    fn open(spill: SortSpill, key_len: usize, directions: Vec<bool>) -> Result<(Self, SpillDir), ExecError> {
        let mut cursors = Vec::with_capacity(spill.runs.len());
        for run in spill.runs {
            let mut reader = run.read().map_err(spill_err)?;
            let head = reader.next_row().map_err(spill_err)?;
            cursors.push((run, reader, head));
        }
        Ok((
            Self {
                cursors,
                key_len,
                directions,
            },
            spill.dir,
        ))
    }

    /// Pop the globally next row: the minimal head under the sort directions,
    /// ties broken by run index (runs are filled in input order, so this keeps
    /// the merge as stable as the in-memory sort).
    fn next_row(&mut self) -> Result<Option<Row>, ExecError> {
        let mut best: Option<usize> = None;
        for idx in 0..self.cursors.len() {
            if self.cursors[idx].2.is_none() {
                continue;
            }
            best = match best {
                None => Some(idx),
                Some(current) => {
                    let head = self.cursors[idx].2.as_deref().expect("checked above");
                    let current_head =
                        self.cursors[current].2.as_deref().expect("non-empty cursor");
                    if compare_sort_keys(
                        &head[..self.key_len],
                        &current_head[..self.key_len],
                        &self.directions,
                    ) == std::cmp::Ordering::Less
                    {
                        Some(idx)
                    } else {
                        Some(current)
                    }
                }
            };
        }
        let Some(winner) = best else {
            return Ok(None);
        };
        let cursor = &mut self.cursors[winner];
        let mut values = cursor.2.take().expect("winner has a head");
        cursor.2 = cursor.1.next_row().map_err(spill_err)?;
        let row_values = values.split_off(self.key_len);
        Ok(Some(Row::from_values(row_values)))
    }
}

/// Sort: drains and sorts its whole input (buffered), then emits batches. Under a
/// finite memory budget the buffer flushes to sorted on-disk runs when its grant is
/// denied, and emission becomes a k-way merge over the runs (external merge sort).
struct SortOp<'p> {
    /// Retained after draining so nested breaker states stay reachable.
    input: Option<Metered<'p>>,
    input_done: bool,
    /// `(rel_set, estimated_rows)` of the input subtree.
    input_meta: (RelSet, f64),
    keys: Vec<(Expr, bool)>,
    sorted: Vec<Row>,
    pos: usize,
    batch_size: usize,
    tracker: Rc<MemoryTracker>,
    /// Byte grant for the in-memory buffer; released as runs flush to disk.
    reservation: Reservation,
    /// Sealed on-disk runs; `None` while the buffer fits its grant (the default).
    spill: Option<SortSpill>,
    /// The k-way merge (and the run directory keeping files alive) once emission
    /// starts in external mode.
    merge: Option<(SortMerge, SpillDir)>,
    stats: Rc<OpStats>,
    obs: ObserverCtx<'p>,
}

impl SortOp<'_> {
    fn buffer_and_sort(&mut self) -> Result<(), ExecError> {
        if self.input_done {
            return Ok(());
        }
        let Some(mut input) = self.input.take() else {
            return Ok(());
        };
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
        let directions: Vec<bool> = self.keys.iter().map(|(_, asc)| *asc).collect();
        let result = {
            let keys = &self.keys;
            let keyed = &mut keyed;
            let directions = &directions;
            input.drain(|batch| {
                let bytes: u64 = batch.iter().map(|row| row.width() as u64).sum();
                if let Some(spill) = self.spill.as_mut() {
                    if !self.reservation.grow(bytes) {
                        // Buffer refilled up to the budget: flush it as another run.
                        // (The overshoot of one denied batch is bounded by batch size.)
                        flush_sort_run(
                            spill,
                            keyed,
                            directions,
                            &self.stats,
                            &mut self.reservation,
                        )?;
                    }
                } else if self.reservation.grow(bytes) {
                    self.tracker.acquire(batch.len() as u64, bytes);
                    for row in batch {
                        let mut key = Vec::with_capacity(keys.len());
                        for (expr, _) in keys {
                            key.push(expr.eval(&row)?);
                        }
                        keyed.push((key, row));
                    }
                    return Ok(());
                } else {
                    // Grant denied: surface memory pressure before the spill
                    // commits, then switch to external merge sort.
                    self.obs.notify(ExecEvent::MemoryPressure(MemoryPressureEvent {
                        kind: BreakerKind::SortInput,
                        rel_set: self.input_meta.0,
                        estimated_rows: self.input_meta.1,
                        buffered_rows: keyed.len() as u64,
                        buffered_bytes: self.reservation.bytes(),
                        budget_bytes: self.reservation.governor().budget().unwrap_or(0),
                    }))?;
                    self.spill = Some(SortSpill {
                        dir: SpillDir::create().map_err(spill_err)?,
                        runs: Vec::new(),
                    });
                }
                for row in batch {
                    let mut key = Vec::with_capacity(keys.len());
                    for (expr, _) in keys {
                        key.push(expr.eval(&row)?);
                    }
                    keyed.push((key, row));
                }
                Ok(())
            })
        };
        let input_rows = input.stats.rows.get();
        // As in HashJoinOp: retain the drained child only for observed pipelines.
        if self.obs.active() {
            self.input = Some(input);
        }
        result?;
        self.input_done = true;
        self.obs.notify_breaker(BreakerEvent {
            kind: BreakerKind::SortInput,
            rel_set: self.input_meta.0,
            estimated_rows: self.input_meta.1,
            actual_rows: input_rows,
            reusable: false,
        })?;
        match self.spill.take() {
            None => {
                sort_keyed(&mut keyed, &directions);
                self.sorted = keyed.into_iter().map(|(_, row)| row).collect();
            }
            Some(mut spill) => {
                // Flush the tail buffer as the final run, then open the merge.
                flush_sort_run(
                    &mut spill,
                    &mut keyed,
                    &directions,
                    &self.stats,
                    &mut self.reservation,
                )?;
                self.merge = Some(SortMerge::open(spill, self.keys.len(), directions)?);
            }
        }
        Ok(())
    }
}

/// Seal the current keyed buffer as one sorted on-disk run, releasing its grant.
fn flush_sort_run(
    spill: &mut SortSpill,
    keyed: &mut Vec<(Vec<Value>, Row)>,
    directions: &[bool],
    stats: &OpStats,
    reservation: &mut Reservation,
) -> Result<(), ExecError> {
    if keyed.is_empty() {
        return Ok(());
    }
    sort_keyed(keyed, directions);
    let mut writer = SpillWriter::create(&spill.dir).map_err(spill_err)?;
    let mut record = Vec::new();
    for (key, row) in keyed.drain(..) {
        record.clear();
        record.extend(key);
        record.extend(row.values().iter().cloned());
        writer.write_row(&record).map_err(spill_err)?;
    }
    let run = writer.finish().map_err(spill_err)?;
    stats.record_spill_run(run.bytes());
    spill.runs.push(run);
    reservation.release_all();
    Ok(())
}

impl Operator for SortOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>, ExecError> {
        self.buffer_and_sort()?;
        if let Some((merge, _dir)) = self.merge.as_mut() {
            let mut out = Vec::with_capacity(self.batch_size);
            while out.len() < self.batch_size {
                let Some(row) = merge.next_row()? else { break };
                out.push(row);
            }
            return Ok(if out.is_empty() { None } else { Some(Batch::Rows(out)) });
        }
        if self.pos >= self.sorted.len() {
            return Ok(None);
        }
        let chunk_end = self.pos.saturating_add(self.batch_size).min(self.sorted.len());
        let out = self.sorted[self.pos..chunk_end].to_vec();
        self.pos = chunk_end;
        Ok(Some(Batch::Rows(out)))
    }

    fn collect_breaker_states(&mut self, out: &mut Vec<BreakerState>) {
        // The sort buffer is not a join-subtree materialization; only recurse.
        if let Some(input) = &mut self.input {
            input.inner.collect_breaker_states(out);
        }
    }
}

/// Drain one merge-join input into a keyed buffer, dropping rows with NULL keys (they
/// cannot match under equi-join semantics) and accounting the buffered rows.
fn drain_keyed(
    input: &mut Metered<'_>,
    keys: &[usize],
    tracker: &MemoryTracker,
    out: &mut Vec<(Vec<Value>, Row)>,
) -> Result<(), ExecError> {
    input.drain(|batch| {
        for row in batch {
            if let Some(key) = extract_key(&row, keys) {
                tracker.acquire(1, row.width() as u64);
                out.push((key, row));
            }
        }
        Ok(())
    })
}

/// Map a spill-file I/O failure into the executor's error space.
fn spill_err(err: std::io::Error) -> ExecError {
    ExecError::Spill(err.to_string())
}

/// The grace-hash partition of a join key: deterministic (SipHash with fixed keys),
/// salted by recursion depth so each repartitioning pass splits differently, and
/// independent of the `RandomState`-seeded in-memory hash table.
fn spill_partition(salt: u32, key: &[Value]) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    salt.hash(&mut hasher);
    for value in key {
        value.hash(&mut hasher);
    }
    (hasher.finish() as usize) % SPILL_FANOUT
}

/// Extract a join key from a row; returns `None` when any key column is NULL (NULL never
/// joins under equi-join semantics).
pub(crate) fn extract_key(row: &Row, columns: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(columns.len());
    for &idx in columns {
        let value = row.value(idx);
        if value.is_null() {
            return None;
        }
        key.push(value.clone());
    }
    Some(key)
}

/// Aggregate accumulator state.
#[derive(Debug, Clone)]
pub(crate) enum Accumulator {
    Min(Option<Value>),
    Max(Option<Value>),
    Count { star: bool, count: u64 },
    Sum { sum: ExactSum, any: bool, is_float: bool },
    Avg { sum: ExactSum, count: u64 },
}

impl Accumulator {
    pub(crate) fn new(func: AggregateFunc) -> Self {
        match func {
            AggregateFunc::Min => Accumulator::Min(None),
            AggregateFunc::Max => Accumulator::Max(None),
            AggregateFunc::Count => Accumulator::Count {
                star: true,
                count: 0,
            },
            AggregateFunc::Sum => Accumulator::Sum {
                sum: ExactSum::new(),
                any: false,
                is_float: false,
            },
            AggregateFunc::Avg => Accumulator::Avg {
                sum: ExactSum::new(),
                count: 0,
            },
        }
    }

    /// Merge another partial state of the same aggregate into this one (the merge
    /// step of parallel partial aggregation). Merging is exact for every function:
    /// MIN/MAX/COUNT trivially so, SUM/AVG because [`ExactSum`] accumulates the
    /// true fixed-point sum and rounds once at [`Accumulator::finish`] — which is
    /// what makes float aggregates bit-identical across thread counts, merge
    /// orders and repeated runs.
    pub(crate) fn merge(&mut self, other: Accumulator) {
        match (self, other) {
            (Accumulator::Min(current), Accumulator::Min(Some(v)))
                if current.as_ref().map(|c| &v < c).unwrap_or(true) =>
            {
                *current = Some(v);
            }
            (Accumulator::Max(current), Accumulator::Max(Some(v)))
                if current.as_ref().map(|c| &v > c).unwrap_or(true) =>
            {
                *current = Some(v);
            }
            (
                Accumulator::Count { star, count },
                Accumulator::Count {
                    star: other_star,
                    count: other_count,
                },
            ) => {
                // `star` is display bookkeeping: a worker that saw rows knows whether
                // the aggregate was COUNT(*) or COUNT(expr).
                if other_count > 0 {
                    *star = other_star;
                }
                *count += other_count;
            }
            (
                Accumulator::Sum { sum, any, is_float },
                Accumulator::Sum {
                    sum: other_sum,
                    any: other_any,
                    is_float: other_is_float,
                },
            ) => {
                sum.merge(&other_sum);
                *any |= other_any;
                *is_float |= other_is_float;
            }
            (
                Accumulator::Avg { sum, count },
                Accumulator::Avg {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                sum.merge(&other_sum);
                *count += other_count;
            }
            // Mismatched or empty partials carry nothing to merge.
            _ => {}
        }
    }

    /// Append this accumulator's state to a spill record. Each function uses a
    /// fixed number of values, so decoding needs no per-record framing:
    /// MIN/MAX → `[value-or-NULL]` (unambiguous because `update` never stores a
    /// NULL), COUNT → `[star, count]`, SUM → `[flags, limbs…, any, is_float]`,
    /// AVG → `[flags, limbs…, count]` (the exact-sum state bit-cast to ints —
    /// spilling must not round, or merge order would become observable again).
    pub(crate) fn spill_encode(self, out: &mut Vec<Value>) {
        let encode_exact = |sum: &ExactSum, out: &mut Vec<Value>| {
            let (flags, limbs) = sum.encode();
            out.push(Value::Int(flags));
            out.extend(limbs.iter().map(|&limb| Value::Int(limb)));
        };
        match self {
            Accumulator::Min(v) | Accumulator::Max(v) => out.push(v.unwrap_or(Value::Null)),
            Accumulator::Count { star, count } => {
                out.push(Value::Bool(star));
                out.push(Value::Int(count as i64));
            }
            Accumulator::Sum { sum, any, is_float } => {
                encode_exact(&sum, out);
                out.push(Value::Bool(any));
                out.push(Value::Bool(is_float));
            }
            Accumulator::Avg { sum, count } => {
                encode_exact(&sum, out);
                out.push(Value::Int(count as i64));
            }
        }
    }

    /// Rebuild an accumulator from the values [`Accumulator::spill_encode`] wrote.
    /// Returns `None` when the record is truncated or mistyped (a corrupt run).
    pub(crate) fn spill_decode(
        func: AggregateFunc,
        values: &mut impl Iterator<Item = Value>,
    ) -> Option<Self> {
        match func {
            AggregateFunc::Min => {
                let v = values.next()?;
                Some(Accumulator::Min(if v.is_null() { None } else { Some(v) }))
            }
            AggregateFunc::Max => {
                let v = values.next()?;
                Some(Accumulator::Max(if v.is_null() { None } else { Some(v) }))
            }
            AggregateFunc::Count => {
                let star = values.next()?.as_bool()?;
                let count = values.next()?.as_int()? as u64;
                Some(Accumulator::Count { star, count })
            }
            AggregateFunc::Sum => {
                let sum = Self::decode_exact(values)?;
                let any = values.next()?.as_bool()?;
                let is_float = values.next()?.as_bool()?;
                Some(Accumulator::Sum { sum, any, is_float })
            }
            AggregateFunc::Avg => {
                let sum = Self::decode_exact(values)?;
                let count = values.next()?.as_int()? as u64;
                Some(Accumulator::Avg { sum, count })
            }
        }
    }

    /// Decode the `[flags, limbs…]` prefix [`Accumulator::spill_encode`] writes
    /// for SUM/AVG states.
    fn decode_exact(values: &mut impl Iterator<Item = Value>) -> Option<ExactSum> {
        let flags = values.next()?.as_int()?;
        let mut limbs = Vec::with_capacity(ExactSum::ENCODED_LIMBS);
        for _ in 0..ExactSum::ENCODED_LIMBS {
            limbs.push(values.next()?.as_int()?);
        }
        ExactSum::decode(flags, limbs.into_iter())
    }

    pub(crate) fn update(&mut self, arg: Option<&Expr>, row: &Row) -> Result<(), ExecError> {
        let value = match arg {
            Some(expr) => Some(expr.eval(row)?),
            None => None,
        };
        match self {
            Accumulator::Min(current) => {
                if let Some(v) = value {
                    if !v.is_null() && current.as_ref().map(|c| &v < c).unwrap_or(true) {
                        *current = Some(v);
                    }
                }
            }
            Accumulator::Max(current) => {
                if let Some(v) = value {
                    if !v.is_null() && current.as_ref().map(|c| &v > c).unwrap_or(true) {
                        *current = Some(v);
                    }
                }
            }
            Accumulator::Count { star, count } => match value {
                None => {
                    *star = true;
                    *count += 1;
                }
                Some(v) => {
                    *star = false;
                    if !v.is_null() {
                        *count += 1;
                    }
                }
            },
            Accumulator::Sum { sum, any, is_float } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        sum.add(f);
                        *any = true;
                        if matches!(v, Value::Float(_)) {
                            *is_float = true;
                        }
                    }
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        sum.add(f);
                        *count += 1;
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
            Accumulator::Count { count, .. } => Value::Int(count as i64),
            Accumulator::Sum { sum, any, is_float } => {
                if !any {
                    Value::Null
                } else if is_float {
                    Value::Float(sum.to_f64())
                } else {
                    Value::Int(sum.to_f64() as i64)
                }
            }
            Accumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.to_f64() / count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::Catalog;
    use reopt_planner::{CardinalityOverrides, Optimizer};
    use reopt_sql::parse_sql;
    use reopt_storage::{Column, DataType, IndexKind};

    /// A small movie database with known contents so results can be checked exactly.
    fn build_env() -> (Storage, Catalog) {
        let mut storage = Storage::new();

        let mut title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("production_year", DataType::Int),
            ]),
        );
        for i in 0..100i64 {
            title
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("movie {i:03}")),
                    Value::Int(1990 + (i % 30)),
                ]))
                .unwrap();
        }
        title.create_index("title_pkey", "id", IndexKind::BTree).unwrap();

        let mut keyword = Table::new(
            "keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ]),
        );
        for i in 0..10i64 {
            keyword
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("kw{i}")),
                ]))
                .unwrap();
        }

        let mut movie_keyword = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("movie_id", DataType::Int),
                Column::not_null("keyword_id", DataType::Int),
            ]),
        );
        // Every movie i has keywords i%10 and (i+1)%10.
        for i in 0..100i64 {
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int(i % 10)]))
                .unwrap();
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int((i + 1) % 10)]))
                .unwrap();
        }
        movie_keyword
            .create_index("mk_movie", "movie_id", IndexKind::Hash)
            .unwrap();
        movie_keyword
            .create_index("mk_keyword", "keyword_id", IndexKind::Hash)
            .unwrap();

        storage.create_table(title).unwrap();
        storage.create_table(keyword).unwrap();
        storage.create_table(movie_keyword).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        (storage, catalog)
    }

    fn plan(
        sql: &str,
        storage: &Storage,
        catalog: &Catalog,
    ) -> reopt_planner::PlannedQuery {
        let optimizer = Optimizer::default();
        let statement = parse_sql(sql).unwrap();
        optimizer
            .plan_select(
                statement.query().unwrap(),
                storage,
                catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap()
    }

    // This module is the single-threaded engine's battery, so every helper pins
    // `with_threads(1)`: without the pin, `default_thread_count()` would silently
    // route these tests through the parallel engine on multi-core hosts (or under
    // an ambient REOPT_THREADS), losing the coverage. The parallel engine has its
    // own battery in `crate::parallel::tests`, which pins 2/4/8 explicitly.
    fn run(sql: &str, storage: &Storage, catalog: &Catalog) -> ExecutionResult {
        let planned = plan(sql, storage, catalog);
        Executor::new(storage)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap()
    }

    fn run_with_batch_size(
        sql: &str,
        storage: &Storage,
        catalog: &Catalog,
        batch_size: usize,
    ) -> ExecutionResult {
        let planned = plan(sql, storage, catalog);
        Executor::with_batch_size(storage, batch_size)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap()
    }

    #[test]
    fn seq_scan_with_filter() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT * FROM title AS t WHERE t.production_year >= 2015",
            &storage,
            &catalog,
        );
        // Years 2015..=2019 appear for i%30 in 25..=29 → 5 values × 3 movies each.
        assert_eq!(result.rows.len(), 15);
        assert_eq!(result.schema.len(), 3);
    }

    #[test]
    fn index_scan_equality_and_range() {
        let (storage, catalog) = build_env();
        let result = run("SELECT * FROM title AS t WHERE t.id = 42", &storage, &catalog);
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].value(0), &Value::Int(42));
        let result = run(
            "SELECT * FROM title AS t WHERE t.id BETWEEN 10 AND 19",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 10);
    }

    #[test]
    fn two_way_join_counts() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c
             FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id AND k.keyword = 'kw3'",
            &storage,
            &catalog,
        );
        // keyword_id = 3 appears for movies with i%10==3 (10 movies) and (i+1)%10==3
        // (10 movies) → 20 movie_keyword rows.
        assert_eq!(result.rows[0].value(0), &Value::Int(20));
    }

    #[test]
    fn three_way_join_with_aggregate() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT min(t.title) AS first_movie, count(*) AS c
             FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
               AND k.keyword = 'kw3' AND t.production_year >= 2000",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 1);
        // Check against a brute-force count.
        let mut expected = 0;
        let mut first: Option<String> = None;
        for i in 0..100i64 {
            let year = 1990 + (i % 30);
            if year < 2000 {
                continue;
            }
            let kws = [i % 10, (i + 1) % 10];
            for kw in kws {
                if kw == 3 {
                    expected += 1;
                    let name = format!("movie {i:03}");
                    if first.as_ref().map(|f| &name < f).unwrap_or(true) {
                        first = Some(name);
                    }
                }
            }
        }
        assert_eq!(result.rows[0].value(1), &Value::Int(expected));
        assert_eq!(
            result.rows[0].value(0),
            &Value::from(first.unwrap().as_str())
        );
    }

    #[test]
    fn metrics_record_actual_cardinalities() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c
             FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows[0].value(0), &Value::Int(200));
        let joins = result.metrics.root.joins_bottom_up();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].actual_rows, 200);
        assert!(joins[0].q_error() < 10.0);
        assert!(result.metrics.execution_time.as_nanos() > 0);
        let rendered = result.metrics.root.render();
        assert!(rendered.contains("actual rows=200"));
    }

    #[test]
    fn group_by_order_by_limit() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT t.production_year, count(*) AS movies
             FROM title AS t
             GROUP BY t.production_year
             ORDER BY movies DESC, t.production_year ASC
             LIMIT 3",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 3);
        // Years 1990..=1999 have 4 movies each (i%30 in 0..10 for i in 0..100 → 4 each);
        // later years have 3. Ordered by count desc then year asc → 1990, 1991, 1992.
        assert_eq!(result.rows[0].value(0), &Value::Int(1990));
        assert_eq!(result.rows[0].value(1), &Value::Int(4));
        assert_eq!(result.rows[2].value(0), &Value::Int(1992));
    }

    #[test]
    fn projection_and_aliases() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT t.title AS name, t.production_year + 1 AS next_year
             FROM title AS t WHERE t.id = 5",
            &storage,
            &catalog,
        );
        assert_eq!(result.schema.column(0).unwrap().name(), "name");
        assert_eq!(result.rows[0].value(1), &Value::Int(1996));
    }

    #[test]
    fn aggregates_over_empty_input() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT min(t.title) AS m, count(*) AS c, sum(t.id) AS s, avg(t.id) AS a
             FROM title AS t WHERE t.production_year > 3000",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].value(0), &Value::Null);
        assert_eq!(result.rows[0].value(1), &Value::Int(0));
        assert_eq!(result.rows[0].value(2), &Value::Null);
        assert_eq!(result.rows[0].value(3), &Value::Null);
    }

    #[test]
    fn like_and_in_filters_execute() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c FROM title AS t WHERE t.title LIKE 'movie 09%'",
            &storage,
            &catalog,
        );
        // movie 090..099
        assert_eq!(result.rows[0].value(0), &Value::Int(10));
        let result = run(
            "SELECT count(*) AS c FROM keyword AS k WHERE k.keyword IN ('kw1', 'kw2', 'nope')",
            &storage,
            &catalog,
        );
        assert_eq!(result.rows[0].value(0), &Value::Int(2));
    }

    #[test]
    fn join_results_match_across_algorithms() {
        // Force each join algorithm in turn and check identical results.
        let (storage, catalog) = build_env();
        let statement = parse_sql(
            "SELECT count(*) AS c
             FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year >= 2010",
        )
        .unwrap();

        let mut results = Vec::new();
        for (hash, merge, inl) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let config = reopt_planner::OptimizerConfig {
                enable_hash_joins: hash,
                enable_merge_joins: merge,
                enable_index_nl_joins: inl,
                ..Default::default()
            };
            let optimizer = Optimizer::new(config);
            let planned = optimizer
                .plan_select(
                    statement.query().unwrap(),
                    &storage,
                    &catalog,
                    &CardinalityOverrides::new(),
                )
                .unwrap();
            let result = Executor::new(&storage)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            results.push(result.rows[0].value(0).clone());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn missing_table_at_execution_time() {
        let (storage, catalog) = build_env();
        let optimizer = Optimizer::default();
        let statement = parse_sql("SELECT * FROM keyword AS k").unwrap();
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        let mut emptied = storage.clone();
        emptied.drop_table("keyword").unwrap();
        let err = execute_plan(&planned.plan, &emptied).unwrap_err();
        assert!(matches!(err, ExecError::TableNotFound(_)));
    }

    // -----------------------------------------------------------------------
    // Batch-boundary edge cases
    // -----------------------------------------------------------------------

    /// Rows sorted into a canonical order for ordering-insensitive comparison.
    fn sorted_rows(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| {
            format!("{a}").cmp(&format!("{b}"))
        });
        rows
    }

    /// Queries covering every operator kind, used by the batch-size sweeps.
    const SWEEP_QUERIES: &[&str] = &[
        // Streaming scans and filters.
        "SELECT * FROM title AS t WHERE t.production_year >= 2015",
        // Empty input through joins and aggregates.
        "SELECT count(*) AS c FROM title AS t, movie_keyword AS mk
         WHERE t.id = mk.movie_id AND t.production_year > 3000",
        // Exactly one output row (single-batch output).
        "SELECT * FROM title AS t WHERE t.id = 42",
        // Join + group + sort + limit.
        "SELECT t.production_year, count(*) AS movies
         FROM title AS t, movie_keyword AS mk
         WHERE t.id = mk.movie_id
         GROUP BY t.production_year ORDER BY movies DESC, t.production_year ASC LIMIT 5",
        // Multi-way join with aggregates.
        "SELECT min(t.title) AS m, count(*) AS c
         FROM title AS t, movie_keyword AS mk, keyword AS k
         WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw3'",
    ];

    #[test]
    fn batch_size_one_matches_default() {
        let (storage, catalog) = build_env();
        for sql in SWEEP_QUERIES {
            let reference = run(sql, &storage, &catalog);
            let tiny = run_with_batch_size(sql, &storage, &catalog, 1);
            assert_eq!(
                sorted_rows(tiny.rows),
                sorted_rows(reference.rows.clone()),
                "batch size 1 changed the result of {sql}"
            );
        }
    }

    #[test]
    fn oversized_batch_matches_default() {
        // A batch size larger than any intermediate result degenerates to
        // operator-at-a-time materialization (the seed executor's regime).
        let (storage, catalog) = build_env();
        for sql in SWEEP_QUERIES {
            let reference = run(sql, &storage, &catalog);
            let huge = run_with_batch_size(sql, &storage, &catalog, 1 << 20);
            assert_eq!(
                sorted_rows(huge.rows),
                sorted_rows(reference.rows.clone()),
                "oversized batches changed the result of {sql}"
            );
        }
    }

    #[test]
    fn input_of_exactly_one_batch() {
        let (storage, catalog) = build_env();
        // keyword has exactly 10 rows: batch size 10 consumes it in one batch.
        let result = run_with_batch_size(
            "SELECT count(*) AS c FROM keyword AS k",
            &storage,
            &catalog,
            10,
        );
        assert_eq!(result.rows[0].value(0), &Value::Int(10));
    }

    #[test]
    fn empty_inputs_flow_through_every_operator() {
        let (storage, catalog) = build_env();
        // No movie has production_year > 3000: scans, joins, sorts and projections all
        // see empty inputs.
        let result = run(
            "SELECT t.title AS name FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year > 3000
             ORDER BY name LIMIT 10",
            &storage,
            &catalog,
        );
        assert!(result.rows.is_empty());
        assert_eq!(result.peak_buffered_rows, 0);
    }

    #[test]
    fn limit_stops_pulling_upstream() {
        let (storage, catalog) = build_env();
        let planned = plan("SELECT * FROM title AS t LIMIT 3", &storage, &catalog);
        let result = Executor::with_batch_size(&storage, 2).with_threads(1)
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(result.rows.len(), 3);
        // The scan must not have produced the whole table: with batch size 2 the limit
        // needs at most two batches (4 rows), not 100.
        let mut scan_rows = None;
        let mut scan_exhausted = None;
        result.metrics.root.walk(&mut |node| {
            if node.metrics.label.starts_with("Seq Scan") {
                scan_rows = Some(node.metrics.actual_rows);
                scan_exhausted = Some(node.metrics.exhausted);
            }
        });
        assert!(scan_rows.unwrap() <= 4, "scan produced {scan_rows:?} rows");
        // The truncated scan is flagged so its count is never mistaken for a true
        // cardinality — and the flag propagates up: the root Limit's actual_rows is
        // a truncated count for its relation set, so it must not be exhausted either.
        assert_eq!(scan_exhausted, Some(false));
        assert!(!result.metrics.root.metrics.exhausted);
    }

    #[test]
    fn operators_are_exhausted_after_a_full_run() {
        let (storage, catalog) = build_env();
        let result = run(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        result
            .metrics
            .root
            .walk(&mut |node| assert!(node.metrics.exhausted, "{}", node.metrics.label));
    }

    /// An observer that suspends at the first completed hash build covering more than
    /// `min_rels` relations, recording everything it saw.
    struct SuspendOnBuild {
        min_rels: usize,
        events: Vec<BreakerEvent>,
    }

    impl ExecutionObserver for SuspendOnBuild {
        fn on_event(&mut self, event: &ExecEvent) -> ObserverDecision {
            let ExecEvent::BreakerComplete(event) = event else {
                return ObserverDecision::Continue;
            };
            self.events.push(event.clone());
            if event.kind == BreakerKind::HashBuild && event.rel_set.len() >= self.min_rels {
                ObserverDecision::Suspend
            } else {
                ObserverDecision::Continue
            }
        }
    }

    #[test]
    fn monitor_suspension_extracts_completed_build_state() {
        let (storage, catalog) = build_env();
        // Force hash joins so the plan has extractable build sides.
        let statement = parse_sql(
            "SELECT count(*) AS c
             FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw3'",
        )
        .unwrap();
        let optimizer = Optimizer::new(reopt_planner::OptimizerConfig {
            enable_index_scans: false,
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..Default::default()
        });
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();

        let monitor = Rc::new(RefCell::new(SuspendOnBuild {
            min_rels: 2,
            events: Vec::new(),
        }));
        let executor = Executor::new(&storage).with_threads(1);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(monitor.clone() as ObserverHandle))
            .unwrap();
        let err = pipeline.next_batch().unwrap_err();
        assert_eq!(err, ExecError::Suspended);
        assert!(pipeline.is_suspended());
        // Further pulls keep failing with the same signal.
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);

        // The two-relation build side (mk ⋈ k) was completed and is extractable,
        // with all its predicates applied: 20 rows for keyword 3.
        let states = pipeline.take_breaker_states();
        let build = states
            .iter()
            .find(|s| s.rel_set.len() == 2)
            .expect("two-relation build state");
        assert_eq!(build.kind, BreakerKind::HashBuild);
        assert_eq!(build.rows.len(), 20);
        assert_eq!(build.schema.len(), 4, "mk and k columns, original qualifiers");
        assert!(build.schema.index_of(Some("mk"), "movie_id").is_ok());
        // The monitor saw the inner (single-relation) build complete first.
        let events = &monitor.borrow().events;
        assert!(events.len() >= 2);
        assert_eq!(events[0].rel_set.len(), 1);
        assert!(events.iter().all(|e| e.kind == BreakerKind::HashBuild));
    }

    #[test]
    fn unmonitored_pipelines_never_suspend() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        let executor = Executor::new(&storage).with_threads(1);
        let mut pipeline = executor.open_observed(&planned.plan, None).unwrap();
        let mut rows = 0;
        while let Some(batch) = pipeline.next_batch().unwrap() {
            rows += batch.len();
        }
        assert_eq!(rows, 1);
        assert!(!pipeline.is_suspended());
    }

    #[test]
    fn pipeline_surfaces_batches_and_buffered_rows() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        let executor = Executor::with_batch_size(&storage, 16).with_threads(1);
        let mut pipeline = executor.open(&planned.plan).unwrap();
        let mut total = 0usize;
        while let Some(batch) = pipeline.next_batch().unwrap() {
            assert!(!batch.is_empty(), "operators must not emit empty batches");
            assert!(batch.len() <= 16, "batch exceeded the configured size");
            total += batch.len();
        }
        assert_eq!(total, 1);
        let metrics = pipeline.metrics();
        let joins = metrics.root.joins_bottom_up();
        assert_eq!(joins[0].actual_rows, 200);
        assert!(joins[0].batches >= 200 / 16, "join output must be batched");
        // The only buffered state is the hash-join build side (10 keyword rows at most,
        // plus index-scan row ids if any) — far below the 200-row join output.
        let peak = pipeline.peak_buffered_rows();
        assert!(peak > 0 && peak < 200, "peak buffered rows {peak}");
    }

    #[test]
    fn join_batches_respect_batch_size_under_fanout() {
        // Every movie_keyword row matches keyword 3 ten+ten times; with batch size 4 the
        // join must split its output across many batches, suspending mid-match-list.
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        for batch_size in [1usize, 3, 7, 200, 1024] {
            let result = Executor::with_batch_size(&storage, batch_size)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            assert_eq!(result.rows[0].value(0), &Value::Int(200), "batch {batch_size}");
        }
    }

    /// Records every event; Progress events get a configurable decision back.
    struct RecordingObserver {
        events: Vec<ExecEvent>,
        on_progress: ObserverDecision,
    }

    impl RecordingObserver {
        fn new(on_progress: ObserverDecision) -> Rc<RefCell<Self>> {
            Rc::new(RefCell::new(Self {
                events: Vec::new(),
                on_progress,
            }))
        }
    }

    impl ExecutionObserver for RecordingObserver {
        fn on_event(&mut self, event: &ExecEvent) -> ObserverDecision {
            self.events.push(event.clone());
            match event {
                ExecEvent::Progress(_) => self.on_progress,
                ExecEvent::BreakerComplete(_) | ExecEvent::MemoryPressure(_) => {
                    ObserverDecision::Continue
                }
            }
        }
    }

    /// An index-NL-only plan over the 200-row mk ⋈ k join (inner mk via its
    /// keyword_id index).
    fn index_nl_plan(storage: &Storage, catalog: &Catalog) -> reopt_planner::PlannedQuery {
        let statement = parse_sql(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
        )
        .unwrap();
        let optimizer = Optimizer::new(reopt_planner::OptimizerConfig {
            enable_hash_joins: false,
            enable_merge_joins: false,
            enable_index_nl_joins: true,
            ..Default::default()
        });
        optimizer
            .plan_select(
                statement.query().unwrap(),
                storage,
                catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap()
    }

    #[test]
    fn streaming_joins_report_progress_and_final_cardinality() {
        let (storage, catalog) = build_env();
        let planned = index_nl_plan(&storage, &catalog);
        let observer = RecordingObserver::new(ObserverDecision::Continue);
        let executor = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_progress_interval(2);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();
        while pipeline.next_batch().unwrap().is_some() {}

        let events = &observer.borrow().events;
        let progress: Vec<&ProgressEvent> = events
            .iter()
            .filter_map(|e| match e {
                ExecEvent::Progress(p) => Some(p),
                _ => None,
            })
            .collect();
        // 200 join rows at batch size 16 → ~13 batches → periodic reports every 2.
        let periodic: Vec<_> = progress
            .iter()
            .filter(|p| p.source == ProgressSource::OutputBatches)
            .collect();
        assert!(periodic.len() >= 4, "expected periodic reports, got {progress:?}");
        assert!(periodic.windows(2).all(|w| w[0].produced_rows < w[1].produced_rows));
        assert!(periodic.iter().all(|p| !p.exhausted && p.rel_set.len() == 2));

        // The outer side exhausted exactly once, reporting the true cardinality.
        let finals: Vec<_> = progress
            .iter()
            .filter(|p| p.source == ProgressSource::OuterExhausted)
            .collect();
        assert_eq!(finals.len(), 1);
        assert!(finals[0].exhausted);
        assert_eq!(finals[0].produced_rows, 200);
        let event = ExecEvent::Progress((*finals[0]).clone());
        assert!(event.is_exact());
        assert_eq!(event.observed_rows(), 200);
    }

    #[test]
    fn progress_interval_zero_disables_periodic_reports() {
        let (storage, catalog) = build_env();
        let planned = index_nl_plan(&storage, &catalog);
        let observer = RecordingObserver::new(ObserverDecision::Continue);
        let executor = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_progress_interval(0);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();
        while pipeline.next_batch().unwrap().is_some() {}
        let events = &observer.borrow().events;
        // Only the one-shot outer-exhaustion report (and breaker completions) remain.
        assert!(events.iter().all(|e| match e {
            ExecEvent::Progress(p) => p.source == ProgressSource::OuterExhausted,
            ExecEvent::BreakerComplete(_) | ExecEvent::MemoryPressure(_) => true,
        }));
        assert!(events.iter().any(|e| matches!(e, ExecEvent::Progress(_))));
    }

    #[test]
    fn root_seam_suspension_delivers_the_inflight_batch_first() {
        let (storage, catalog) = build_env();
        // A projection root (no aggregate): the join's first progress report arms the
        // root seam mid-pull, but the pull's batch must still be delivered.
        let statement = parse_sql(
            "SELECT mk.movie_id AS m FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
        )
        .unwrap();
        let optimizer = Optimizer::new(reopt_planner::OptimizerConfig {
            enable_hash_joins: false,
            enable_merge_joins: false,
            enable_index_nl_joins: true,
            ..Default::default()
        });
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        let observer = RecordingObserver::new(ObserverDecision::SuspendAtRootSeam);
        let executor = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_progress_interval(1);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();

        let first = pipeline.next_batch().unwrap();
        assert_eq!(first.map(|b| b.len()), Some(16), "in-flight batch is delivered");
        assert!(!pipeline.is_suspended(), "suspension waits for the seam");
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);
        assert!(pipeline.is_suspended());
        // Suspension on the seam keeps breaker state extractable, like mid-drain
        // suspension does (here there are no reusable breakers in an index-NL plan).
        let states = pipeline.take_breaker_states();
        assert!(states.is_empty());
    }

    #[test]
    fn merge_join_suspends_inside_equal_key_blocks() {
        let (storage, catalog) = build_env();
        let statement = parse_sql(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
        )
        .unwrap();
        let optimizer = Optimizer::new(reopt_planner::OptimizerConfig {
            enable_hash_joins: false,
            enable_merge_joins: true,
            enable_index_nl_joins: false,
            ..Default::default()
        });
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        // Each keyword matches 20 movie_keyword rows: equal-key blocks of 20 rows must
        // be split across batches of 3 without losing or duplicating pairs.
        for batch_size in [1usize, 3, 16, 4096] {
            let result = Executor::with_batch_size(&storage, batch_size)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            assert_eq!(result.rows[0].value(0), &Value::Int(200), "batch {batch_size}");
        }
    }

    // -----------------------------------------------------------------------
    // Out-of-core execution: memory governor + spill paths
    // -----------------------------------------------------------------------

    use reopt_storage::spill_file::live_spill_files;

    /// Spill tests assert the process-global live spill-file counter, so they
    /// serialize against each other (the rest of the battery never spills — the
    /// default governor is unlimited).
    fn spill_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Plan with hash joins only, so every join build is a governed breaker sink.
    fn hash_only_plan(
        sql: &str,
        storage: &Storage,
        catalog: &Catalog,
    ) -> reopt_planner::PlannedQuery {
        let optimizer = Optimizer::new(reopt_planner::OptimizerConfig {
            enable_index_scans: false,
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..Default::default()
        });
        let statement = parse_sql(sql).unwrap();
        optimizer
            .plan_select(
                statement.query().unwrap(),
                storage,
                catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap()
    }

    /// Order-insensitive row rendering for multiset identity checks.
    fn row_strings(rows: &[Row]) -> Vec<String> {
        let mut out: Vec<String> = rows.iter().map(|r| format!("{:?}", r.values())).collect();
        out.sort();
        out
    }

    #[test]
    fn grace_hash_join_matches_in_memory_and_cleans_up() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        // Text output columns: dictionary-coded values must round-trip through the
        // spill files.
        let sql = "SELECT mk.movie_id, k.keyword FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id";
        let planned = hash_only_plan(sql, &storage, &catalog);
        let reference = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(reference.metrics.root.total_spilled(), (0, 0));

        // 64 bytes is far below the ~110-byte keyword build side, but above every
        // grace-hash partition of it (1-2 rows each).
        let governor = MemoryGovernor::new(Some(64));
        let spilled = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(spilled.rows.len(), 200);
        assert_eq!(
            row_strings(&spilled.rows),
            row_strings(&reference.rows),
            "spilled run must be row-identical (as a multiset) to the in-memory run"
        );
        let (bytes, partitions) = spilled.metrics.root.total_spilled();
        assert!(bytes > 0 && partitions > 0, "join must have spilled: {bytes}/{partitions}");
        assert!(
            spilled.metrics.root.render().contains("spilled:"),
            "{}",
            spilled.metrics.root.render()
        );
        assert!(governor.denials() >= 1);
        assert_eq!(governor.reserved(), 0, "reservations released with the pipeline");
        assert_eq!(live_spill_files(), 0, "spill files removed with the pipeline");
    }

    #[test]
    fn spilled_join_skips_empty_partitions() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        // Two distinct build keys across a fanout of 8: most partitions are empty
        // and must be skipped without opening readers or losing rows.
        let sql = "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.id < 2";
        let planned = hash_only_plan(sql, &storage, &catalog);
        let governor = MemoryGovernor::new(Some(16));
        let result = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(governor)
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(result.rows[0].value(0), &Value::Int(40));
        assert!(result.metrics.root.total_spilled().0 > 0);
        assert_eq!(live_spill_files(), 0);
    }

    #[test]
    fn external_sort_is_identical_to_in_memory() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        // A non-unique sort key: ties expose any stability divergence between the
        // in-memory stable sort and the k-way run merge.
        let sql = "SELECT t.title AS title, t.production_year AS year FROM title AS t
                   ORDER BY year";
        let planned = plan(sql, &storage, &catalog);
        let reference = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap();
        let governor = MemoryGovernor::new(Some(600));
        let spilled = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap();
        let render = |rows: &[Row]| -> Vec<String> {
            rows.iter().map(|r| format!("{:?}", r.values())).collect()
        };
        assert_eq!(
            render(&spilled.rows),
            render(&reference.rows),
            "external sort must reproduce the in-memory order exactly, ties included"
        );
        let (bytes, runs) = spilled.metrics.root.total_spilled();
        assert!(bytes > 0 && runs >= 2, "expected multiple runs, got {bytes} bytes in {runs}");
        assert!(governor.denials() >= 1);
        assert_eq!(live_spill_files(), 0);
    }

    #[test]
    fn external_aggregation_merges_partial_states() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        // Every accumulator kind crosses the spill encoding; groups recur across
        // runs (a flushed year reappears in later input), forcing state merges.
        let sql = "SELECT t.production_year AS y, count(*) AS c, min(t.title) AS first,
                          avg(t.id) AS mean
                   FROM title AS t GROUP BY t.production_year";
        let planned = plan(sql, &storage, &catalog);
        let reference = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap();
        let governor = MemoryGovernor::new(Some(80));
        let spilled = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(spilled.rows.len(), 30);
        // External emission is in sorted-key order (in-memory is first-seen), so
        // compare as multisets.
        assert_eq!(row_strings(&spilled.rows), row_strings(&reference.rows));
        let (bytes, runs) = spilled.metrics.root.total_spilled();
        assert!(bytes > 0 && runs >= 2, "{bytes} bytes in {runs} runs");
        assert_eq!(live_spill_files(), 0);
    }

    #[test]
    fn memory_pressure_fires_before_spill_commits() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        let planned = hash_only_plan(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        let observer = RecordingObserver::new(ObserverDecision::Continue);
        let governor = MemoryGovernor::new(Some(64));
        let executor = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(governor);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();
        let mut rows = 0;
        while let Some(batch) = pipeline.next_batch().unwrap() {
            rows += batch.len();
        }
        assert_eq!(rows, 1);
        let events = &observer.borrow().events;
        let pressure_at = events
            .iter()
            .position(|e| matches!(e, ExecEvent::MemoryPressure(_)))
            .expect("a memory-pressure event");
        let build_at = events
            .iter()
            .position(|e| {
                matches!(e, ExecEvent::BreakerComplete(b) if b.kind == BreakerKind::HashBuild)
            })
            .expect("the build completion");
        assert!(pressure_at < build_at, "pressure must precede the spilled build");
        let ExecEvent::MemoryPressure(pressure) = &events[pressure_at] else {
            unreachable!()
        };
        assert_eq!(pressure.kind, BreakerKind::HashBuild);
        assert_eq!(pressure.budget_bytes, 64);
        assert!(!events[pressure_at].is_exact(), "buffered counts are lower bounds");
        let build = events
            .iter()
            .find_map(|e| match e {
                ExecEvent::BreakerComplete(b) if b.kind == BreakerKind::HashBuild => Some(b),
                _ => None,
            })
            .unwrap();
        assert!(!build.reusable, "a spilled build is not a reusable materialization");
        assert_eq!(build.actual_rows, 10);
        drop(pipeline);
        assert_eq!(live_spill_files(), 0);
    }

    /// Suspends the moment memory pressure is reported (the re-plan-instead-of-spill
    /// policy shape).
    struct SuspendOnPressure {
        saw: Option<MemoryPressureEvent>,
    }

    impl ExecutionObserver for SuspendOnPressure {
        fn on_event(&mut self, event: &ExecEvent) -> ObserverDecision {
            if let ExecEvent::MemoryPressure(pressure) = event {
                self.saw = Some(pressure.clone());
                return ObserverDecision::Suspend;
            }
            ObserverDecision::Continue
        }
    }

    #[test]
    fn suspending_on_pressure_preempts_the_spill() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        let planned = hash_only_plan(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        let monitor = Rc::new(RefCell::new(SuspendOnPressure { saw: None }));
        let governor = MemoryGovernor::new(Some(64));
        let executor = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(governor);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(monitor.clone() as ObserverHandle))
            .unwrap();
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);
        assert!(pipeline.is_suspended());
        let pressure = monitor.borrow().saw.clone().expect("pressure was observed");
        assert_eq!(pressure.kind, BreakerKind::HashBuild);
        // The suspension preempted the spill: no file was ever written, and the
        // re-optimizer takes over with every in-memory buffer intact.
        assert_eq!(live_spill_files(), 0, "suspension must preempt the spill");
        drop(pipeline);
        assert_eq!(live_spill_files(), 0);
    }

    #[test]
    fn single_key_partition_over_budget_errors_at_depth_cap() {
        let _guard = spill_serial();
        // Every row shares one join key: no amount of repartitioning can split the
        // partition below the budget, so the join must fail honestly (not hang).
        let mut storage = Storage::new();
        let mut build = Table::new(
            "skew_build",
            Schema::new(vec![
                Column::not_null("k", DataType::Int),
                Column::new("pad", DataType::Int),
            ]),
        );
        for i in 0..40i64 {
            build
                .push_row(Row::from_values(vec![Value::Int(1), Value::Int(i)]))
                .unwrap();
        }
        let mut probe = Table::new(
            "skew_probe",
            Schema::new(vec![Column::not_null("k", DataType::Int)]),
        );
        for _ in 0..200 {
            probe.push_row(Row::from_values(vec![Value::Int(1)])).unwrap();
        }
        storage.create_table(build).unwrap();
        storage.create_table(probe).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        let planned = hash_only_plan(
            "SELECT count(*) AS c FROM skew_probe AS p, skew_build AS b WHERE p.k = b.k",
            &storage,
            &catalog,
        );
        let governor = MemoryGovernor::new(Some(64));
        let err = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(governor)
            .execute(&planned.plan)
            .unwrap_err();
        match err {
            ExecError::Spill(detail) => {
                assert!(detail.contains("recursion depth"), "{detail}")
            }
            other => panic!("expected a spill error, got {other:?}"),
        }
        assert_eq!(live_spill_files(), 0, "the error path still removes every file");
    }

    #[test]
    fn unsplittable_partition_joins_via_block_nested_loop_under_contention() {
        let _guard = spill_serial();
        // Every build row shares one join key, so repartitioning cannot split the
        // partition — but unlike the depth-cap error case above, the partition
        // fits the *whole* budget: only the currently available grant is small,
        // because another operator's reservation holds most of the budget. The
        // join must fall back to block nested-loop (grant-sized build blocks,
        // probe run re-scanned per block) and still produce every match.
        let mut storage = Storage::new();
        let mut build = Table::new(
            "skew_build",
            Schema::new(vec![
                Column::not_null("k", DataType::Int),
                Column::new("pad", DataType::Int),
            ]),
        );
        for i in 0..40i64 {
            build
                .push_row(Row::from_values(vec![Value::Int(1), Value::Int(i)]))
                .unwrap();
        }
        let mut probe = Table::new(
            "skew_probe",
            Schema::new(vec![Column::not_null("k", DataType::Int)]),
        );
        for _ in 0..200 {
            probe.push_row(Row::from_values(vec![Value::Int(1)])).unwrap();
        }
        storage.create_table(build).unwrap();
        storage.create_table(probe).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        let planned = hash_only_plan(
            "SELECT count(*) AS c FROM skew_probe AS p, skew_build AS b WHERE p.k = b.k",
            &storage,
            &catalog,
        );
        let governor = MemoryGovernor::new(Some(4096));
        let mut contention = governor.reservation();
        assert!(contention.grow(4000), "the contending reservation must fit");
        let result = Executor::with_batch_size(&storage, 16)
            .with_threads(1)
            .with_governor(std::sync::Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(
            result.rows,
            vec![Row::from_values(vec![Value::Int(8000)])],
            "block nested-loop must emit every cross match (40 build x 200 probe)"
        );
        let (spilled_bytes, partitions) = result.metrics.root.total_spilled();
        assert!(
            spilled_bytes > 0 && partitions > 0,
            "the unsplittable partition must have gone through the spill path"
        );
        drop(result);
        drop(contention);
        assert_eq!(live_spill_files(), 0, "chunked runs are removed once joined");
    }

    #[test]
    fn limit_early_exit_cleans_up_half_drained_spill() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        let governor = MemoryGovernor::new(Some(300));
        // LIMIT stops pulling long before the k-way merge drains its runs.
        let planned = plan(
            "SELECT t.title AS title FROM title AS t ORDER BY title LIMIT 5",
            &storage,
            &catalog,
        );
        let result = Executor::with_batch_size(&storage, 4)
            .with_threads(1)
            .with_governor(Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.rows[0].value(0), &Value::from("movie 000"));
        let (bytes, runs) = result.metrics.root.total_spilled();
        assert!(bytes > 0 && runs >= 2, "{bytes} bytes in {runs} runs");
        assert_eq!(live_spill_files(), 0, "abandoned runs die with the pipeline");
        assert_eq!(governor.reserved(), 0);

        // Dropping a pipeline mid-merge (runs still open) also cleans up.
        let planned = plan(
            "SELECT t.title AS title FROM title AS t ORDER BY title",
            &storage,
            &catalog,
        );
        let executor = Executor::with_batch_size(&storage, 4)
            .with_threads(1)
            .with_governor(Arc::clone(&governor));
        let mut pipeline = executor.open(&planned.plan).unwrap();
        let first = pipeline.next_batch().unwrap().expect("first sorted batch");
        assert!(!first.is_empty());
        assert!(live_spill_files() > 0, "the merge holds live runs mid-flight");
        drop(pipeline);
        assert_eq!(live_spill_files(), 0);
        assert_eq!(governor.reserved(), 0);
    }

    #[test]
    fn parallel_run_falls_back_to_the_spill_engine() {
        let _guard = spill_serial();
        let (storage, catalog) = build_env();
        let planned = hash_only_plan(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
             WHERE mk.keyword_id = k.id",
            &storage,
            &catalog,
        );
        let governor = MemoryGovernor::new(Some(64));
        // The parallel build sink's grant is denied; the facade must restart the
        // query on the single-threaded spill engine with the same rows out.
        let result = Executor::with_batch_size(&storage, 16)
            .with_threads(4)
            .with_governor(Arc::clone(&governor))
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(result.rows[0].value(0), &Value::Int(200));
        assert!(governor.denials() >= 1, "the parallel sink must have been denied");
        let (bytes, _) = result.metrics.root.total_spilled();
        assert!(bytes > 0, "the fallback run spilled");
        assert_eq!(live_spill_files(), 0);
        assert_eq!(governor.reserved(), 0, "both runs' reservations released");
    }
}
