//! Morsel-driven parallel execution.
//!
//! The plan is decomposed into *pipelines* at pipeline-breaker seams, exactly the
//! decomposition HyPer-style morsel-driven schedulers use: every hash-join build side
//! is a pipeline that terminates in a build sink, the probe spine is a pipeline that
//! terminates at the root (or at an aggregate/sort sink), and pipelines execute in
//! dependency order — a join's build pipeline completes (and fires its
//! [`BreakerEvent`]) before the probe pipeline that consumes the hash table starts.
//!
//! Within one pipeline the driving source (a table heap, an index-scan row-id list, or
//! a materialized breaker output) is split into **morsels** — runs of
//! [`MORSEL_BATCHES`] batches — claimed through an atomic work-stealing cursor by
//! *chain jobs* running on the process-wide resident [`WorkerPool`]: each query
//! registers as a pool task, and each chain job processes one morsel then re-enqueues
//! itself at the back of its task's queue, so concurrent queries interleave at morsel
//! granularity under the pool's priority + round-robin discipline (see
//! [`crate::pool`]). A chain job pushes its morsel through the pipeline's operator
//! chain (filters, projections, hash probes against the shared immutable partitioned
//! hash table, index-NL probes against shared storage) and feeds the pipeline sink:
//!
//! * **root / sort sinks** exchange row batches through a *bounded* channel to the
//!   coordinator, so streaming operators keep flat memory no matter how fast workers
//!   produce; for streaming-shaped roots the exchange stays live across `next_batch`
//!   pulls — the pool keeps producing (up to the channel bound) while the client
//!   consumes, instead of buffering the whole root result in the first pull;
//! * **hash-join build sinks** partition rows by join-key hash into per-worker,
//!   per-partition buffers; the merge step assembles one hash-table partition per
//!   worker in parallel once every worker finished, ordering every bucket by the
//!   build rows' `(morsel, sequence)` tags so probe fan-out order is run-identical
//!   to the single-threaded build order;
//! * **aggregation sinks** accumulate per-worker partial aggregation states, merged by
//!   the coordinator at the breaker. Accumulator merging is *exact* for every
//!   aggregate — float SUM/AVG accumulate into a fixed-point superaccumulator
//!   ([`crate::exact::ExactSum`]) and round once at emission — and groups are emitted
//!   in first-seen `(morsel, sequence)` order, so results are bit-identical across
//!   runs, thread counts and merge orders;
//! * **merge-join inputs** run as their own pipelines into keyed sort sinks: each
//!   worker sorts its retired run by `(key, morsel, sequence)`, the coordinator
//!   k-way-merges the runs, and the joined output becomes a morselized
//!   [`Source::MergeJoin`] whose left rows binary-search the sorted right side;
//! * **nested-loop inners** are collected in morsel order and probed block-wise:
//!   every outer morsel loops the shared buffered inner ([`StepKind::NlProbe`]);
//! * **LIMIT roots** use a morsel-ordered exchange: workers tag batches with their
//!   morsel index and the coordinator reassembles them in morsel order, quiescing
//!   the query through the per-query quiesce flag the moment the limit is
//!   satisfied — output is run-identical to the single-threaded engine.
//!
//! Pipelines whose source is smaller than two morsels run *inline* on the coordinator
//! through the same chain/sink code, so tiny dimension-table builds never pay thread
//! spawn latency.
//!
//! # The observer contract under parallelism
//!
//! The installed [`ExecutionObserver`](crate::exec::ExecutionObserver) is only ever
//! invoked from the coordinator thread (observers are deliberately not `Send`). Events
//! funnel to it in a defined order:
//!
//! * workers enqueue [`ProgressEvent`]s into a mutex-ordered queue (snapshots are taken
//!   under the queue lock, so produced-row counts are monotonic in delivery order);
//! * the coordinator drains that queue — in queue order — before delivering any
//!   coordinator-generated event, and emits exactly one [`BreakerEvent`] per breaker,
//!   carrying worker-aggregated actual rows, when the merge step completes;
//! * breaker events therefore arrive innermost-first, exactly as in single-threaded
//!   execution.
//!
//! A `Suspend` decision sets the *query's own* quiesce flag; its chain jobs observe it
//! on the next batch boundary and retire, the coordinator waits for its gate, and the
//! pipeline reports
//! [`ExecError::Suspended`] with every *completed* build retained so
//! [`Pipeline::take_breaker_states`](crate::exec::Pipeline::take_breaker_states) still
//! extracts reusable state — mid-query re-optimization works unchanged at
//! `threads > 1`. `SuspendAtRootSeam` also quiesces, but the first already-produced
//! root batch is delivered before the next pull reports `Suspended`.
//!
//! Per-operator metrics aggregate across workers: `actual_rows`/`batches` are summed
//! atomics, `elapsed` is the summed per-operator CPU time across all workers (so it
//! can exceed wall clock), `exhausted` is only set when an operator's whole pipeline
//! ran to completion, and buffered rows are tracked through one shared atomic
//! high-water mark.
//!
//! # Lazy build scheduling
//!
//! Pipelines form a dependency DAG: a probe pipeline depends on its hash-build and
//! nested-loop-inner pipelines, which in turn depend on whatever breakers feed
//! *them*. [`Engine::compile`] walks the probe spine collecting the chain steps and
//! **registering** build pipelines without executing them; builds run only after the
//! spine's own source is runnable, innermost-first, with a stop check between each —
//! so a suspension decision taken on an inner breaker (the common mid-query
//! re-optimization case) skips every outer build the re-plan is about to discard
//! instead of paying for it eagerly. [`lazy_builds_planned_total`] /
//! [`lazy_builds_started_total`] count registered vs actually-started builds
//! process-wide.
//!
//! Every plan shape now has a parallel implementation; [`fallback_reason`] exists so
//! a future regression (a new plan kind without parallel support) degrades to an
//! *observable* single-threaded fallback — the reason is surfaced in
//! `EXPLAIN ANALYZE` and counted in [`plan_fallbacks_total`] — rather than a silent
//! one.

use crate::error::ExecError;
use crate::exec::{
    bind as bind_exec, bind_opt as bind_exec_opt, extract_key, key_index as key_index_exec,
    resolve_index_row_ids, scan_encoding_label, Accumulator,
    BreakerEvent, BreakerKind, BreakerState, ExecEvent, MemoryPressureEvent, ObserverHandle,
    ProgressEvent, ProgressSource, RowBatch,
};
use crate::spill::MemoryGovernor;
use crate::metrics::{MetricsNode, OperatorMetrics, QueryMetrics};
use crate::pool::{Gate, TaskHandle, WorkerPool};
use reopt_expr::{filter_mask, Expr, MaskCache};
use reopt_planner::{PhysicalPlan, PlanKind, RelSet};
use reopt_sql::AggregateFunc;
use reopt_storage::{Row, Schema, Storage, Table, Value};
use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Rows per morsel, in units of the executor batch size: each morsel is a contiguous
/// run of this many batches of the pipeline's driving source.
pub const MORSEL_BATCHES: usize = 4;

/// Why a plan would fall back to the single-threaded engine, or `None` when the
/// parallel engine implements every operator in it. Every current plan shape —
/// including merge joins, plain nested-loop joins, LIMIT and float SUM/AVG — has a
/// parallel implementation, so today this always returns `None`; it exists so that a
/// future plan kind without parallel support degrades to an *observable* fallback
/// (surfaced in `EXPLAIN ANALYZE` / `ReoptReport` and counted in
/// [`plan_fallbacks_total`]) rather than a silent single-core run.
pub fn fallback_reason(plan: &PhysicalPlan) -> Option<&'static str> {
    // LIMIT is parallelized as a morsel-ordered root exchange; anywhere below the
    // root the planner never places it, and the spine compiler has no step for it.
    fn below_root(plan: &PhysicalPlan) -> Option<&'static str> {
        if matches!(plan.kind, PlanKind::Limit { .. }) {
            return Some("LIMIT below the plan root");
        }
        plan.children.iter().find_map(below_root)
    }
    plan.children.iter().find_map(below_root)
}

/// Whether the parallel engine implements every operator in the plan. Plans that fail
/// this check execute on the single-threaded engine regardless of the configured
/// thread count (see [`fallback_reason`] for the why).
pub fn plan_supported(plan: &PhysicalPlan) -> bool {
    fallback_reason(plan).is_none()
}

/// Plans that fell back to the single-threaded engine because of their *shape*
/// (`fallback_reason` returned `Some`) despite `threads > 1`, process-wide.
/// Memory-budget spill restarts are deliberately not counted — they are a resource
/// decision, not a coverage gap.
static PLAN_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of plan-shape fallbacks to the single-threaded engine at
/// `threads > 1` (see [`fallback_reason`]). perf_smoke asserts this stays zero
/// across the whole 56-query workload.
pub fn plan_fallbacks_total() -> u64 {
    PLAN_FALLBACKS.load(Ordering::SeqCst)
}

pub(crate) fn note_plan_fallback() {
    PLAN_FALLBACKS.fetch_add(1, Ordering::SeqCst);
}

/// Build pipelines registered by the lazy scheduler (see the module docs).
static BUILDS_PLANNED: AtomicU64 = AtomicU64::new(0);
/// Build pipelines actually executed (`<= BUILDS_PLANNED`; the difference is builds
/// skipped because the query suspended before they became runnable).
static BUILDS_STARTED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of build pipelines registered in compiled probe spines.
pub fn lazy_builds_planned_total() -> u64 {
    BUILDS_PLANNED.load(Ordering::SeqCst)
}

/// Process-wide count of build pipelines actually executed. Strictly less than
/// [`lazy_builds_planned_total`] whenever suspensions skipped builds a re-plan
/// discarded.
pub fn lazy_builds_started_total() -> u64 {
    BUILDS_STARTED.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Shared (Sync) run state
// ---------------------------------------------------------------------------

/// Why the coordinator stopped the run before completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopMode {
    /// `ObserverDecision::Suspend`: discard in-flight output, report `Suspended`.
    Immediate,
    /// `ObserverDecision::SuspendAtRootSeam`: deliver the first produced root batch,
    /// then report `Suspended`.
    Seam,
}

/// State shared between the coordinator and the workers (everything here is `Sync`).
struct Shared {
    /// Set by the coordinator to quiesce every worker at the next batch boundary.
    quiesce: AtomicBool,
    /// Set alongside `quiesce` for a root-seam suspension: workers finish their
    /// in-flight batch (so it can be delivered) instead of dropping it mid-step.
    seam: AtomicBool,
    /// Whether an observer is installed (workers skip event bookkeeping otherwise).
    observer_active: bool,
    /// Progress cadence (0 disables periodic reports).
    progress_every: u64,
    /// Worker-enqueued events, drained by the coordinator in FIFO order.
    events: Mutex<VecDeque<ExecEvent>>,
    /// First worker error; its presence also quiesces the run.
    error: Mutex<Option<ExecError>>,
    /// Rows currently buffered by breakers (partial and merged states alike).
    buffered_current: AtomicU64,
    /// High-water mark of `buffered_current`.
    buffered_peak: AtomicU64,
    /// Bytes currently buffered by breakers (same accounting points as rows).
    buffered_bytes_current: AtomicU64,
    /// High-water mark of `buffered_bytes_current`.
    buffered_bytes_peak: AtomicU64,
    /// The process-wide memory governor the run's breaker sinks reserve against.
    governor: Arc<MemoryGovernor>,
    /// Bytes this run currently holds from the governor (released when the run's
    /// shared state drops, matching the single-threaded reservation lifetime).
    reserved: AtomicU64,
    /// A breaker sink's reservation was denied: the parallel engine has no spill
    /// path of its own, so the run aborts with [`ExecError::Spill`] and the
    /// pipeline facade restarts it on the single-threaded spill engine (unless
    /// the observer chose to suspend on the memory-pressure event instead).
    spill_needed: AtomicBool,
}

impl Shared {
    fn acquire(&self, rows: u64, bytes: u64) {
        let current = self.buffered_current.fetch_add(rows, Ordering::SeqCst) + rows;
        self.buffered_peak.fetch_max(current, Ordering::SeqCst);
        let current_bytes = self
            .buffered_bytes_current
            .fetch_add(bytes, Ordering::SeqCst)
            + bytes;
        self.buffered_bytes_peak
            .fetch_max(current_bytes, Ordering::SeqCst);
    }

    fn fail(&self, error: ExecError) {
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(error);
        }
        self.quiesce.store(true, Ordering::SeqCst);
    }

    /// Try to reserve `bytes` of the run's memory budget. Unlimited budgets (the
    /// default) return immediately without touching shared counters.
    fn try_reserve(&self, bytes: u64) -> bool {
        if self.governor.is_unlimited() {
            return true;
        }
        if self.governor.try_reserve(bytes) {
            self.reserved.fetch_add(bytes, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// The memory-pressure event describing a denied reservation at `kind`.
    fn pressure_event(&self, kind: BreakerKind, rel_set: RelSet, estimated_rows: f64) -> ExecEvent {
        ExecEvent::MemoryPressure(MemoryPressureEvent {
            kind,
            rel_set,
            estimated_rows,
            buffered_rows: self.buffered_current.load(Ordering::SeqCst),
            buffered_bytes: self.reserved.load(Ordering::SeqCst),
            budget_bytes: self.governor.budget().unwrap_or(0),
        })
    }

    /// Worker-side reservation: on denial, surface memory pressure to the observer
    /// (via the event queue), mark the run as needing the spill engine, and return
    /// the [`ExecError::Spill`] that aborts it. If the observer suspends on the
    /// pressure event the coordinator resolves the abort as a suspension instead.
    fn reserve_or_spill(
        &self,
        bytes: u64,
        kind: BreakerKind,
        rel_set: RelSet,
        estimated_rows: f64,
    ) -> Result<(), ExecError> {
        if self.try_reserve(bytes) {
            return Ok(());
        }
        if self.observer_active {
            self.events
                .lock()
                .expect("event queue")
                .push_back(self.pressure_event(kind, rel_set, estimated_rows));
        }
        self.spill_needed.store(true, Ordering::SeqCst);
        Err(ExecError::Spill(
            "memory budget exceeded in the parallel engine; restarting on the single-threaded spill engine"
                .into(),
        ))
    }

    /// Whether in-flight work should be abandoned mid-step (immediate suspension or
    /// an error — but not a seam suspension, whose in-flight batch is delivered).
    fn drop_inflight(&self) -> bool {
        self.quiesce.load(Ordering::Relaxed) && !self.seam.load(Ordering::Relaxed)
    }

    /// Worker-side backpressure behind the observer: yield (bounded) until the
    /// coordinator drained the event queue. The single-threaded engine dispatches
    /// events synchronously from inside the producing operator; this approximates
    /// that under parallelism, so a suspension decision stops the pool after at most
    /// one in-flight step per worker instead of however much work the pool can race
    /// through while the coordinator thread waits for CPU (which on few-core hosts
    /// can be milliseconds).
    fn wait_for_event_drain(&self) {
        if !self.observer_active {
            return;
        }
        for _ in 0..100_000 {
            if self.quiesce.load(Ordering::Relaxed) {
                return;
            }
            if self.events.lock().expect("event queue").is_empty() {
                return;
            }
            std::thread::yield_now();
        }
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // The run's breaker buffers die with its shared state (chains, tables and
        // partial sinks all hold an `Arc<Shared>`), so this is where the governor
        // reservation is returned — mirroring the single-threaded engine, whose
        // `Reservation` releases when the operator tree drops.
        self.governor.release(*self.reserved.get_mut());
    }
}

/// Per-plan-node execution counters (the parallel analogue of `OpStats`).
#[derive(Default)]
struct ParStats {
    rows: AtomicU64,
    batches: AtomicU64,
    nanos: AtomicU64,
    exhausted: AtomicBool,
    /// For scans: how the source read its input (set once at pipeline compile).
    encoding: OnceLock<&'static str>,
}

impl ParStats {
    fn record(&self, rows: usize, elapsed: Duration) {
        if rows > 0 {
            self.rows.fetch_add(rows as u64, Ordering::SeqCst);
            self.batches.fetch_add(1, Ordering::SeqCst);
        }
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::SeqCst);
    }
}

/// The stats tree, shaped like the plan tree.
struct StatsTree {
    stats: std::sync::Arc<ParStats>,
    children: Vec<StatsTree>,
}

fn build_stats_tree(plan: &PhysicalPlan) -> StatsTree {
    StatsTree {
        stats: std::sync::Arc::new(ParStats::default()),
        children: plan.children.iter().map(build_stats_tree).collect(),
    }
}

fn assemble_metrics(plan: &PhysicalPlan, stats: &StatsTree) -> MetricsNode {
    let children: Vec<MetricsNode> = plan
        .children
        .iter()
        .zip(&stats.children)
        .map(|(p, s)| assemble_metrics(p, s))
        .collect();
    let own = stats.stats.exhausted.load(Ordering::SeqCst);
    // A satisfied LIMIT is a finished operator even though its (truncated-early)
    // child is not — matching the single-threaded `LimitOp`, which stops pulling.
    let exhausted = if matches!(plan.kind, PlanKind::Limit { .. }) {
        own
    } else {
        own && children.iter().all(|child| child.metrics.exhausted)
    };
    MetricsNode {
        metrics: OperatorMetrics {
            label: plan.label(),
            rel_set: plan.rel_set,
            is_join: plan.is_join(),
            estimated_rows: plan.estimated_rows,
            actual_rows: stats.stats.rows.load(Ordering::SeqCst),
            batches: stats.stats.batches.load(Ordering::SeqCst),
            exhausted,
            elapsed: Duration::from_nanos(stats.stats.nanos.load(Ordering::SeqCst)),
            encoding: stats.stats.encoding.get().copied(),
            // The parallel engine never spills: a denied reservation aborts the run
            // and the facade restarts it on the single-threaded spill engine.
            spilled_bytes: 0,
            spill_partitions: 0,
        },
        children,
    }
}

// ---------------------------------------------------------------------------
// Shared hash table for parallel joins
// ---------------------------------------------------------------------------

/// Deterministic position of a row in the pipeline's output: `(morsel index,
/// per-worker sequence)`. A morsel is processed in full by exactly one worker, whose
/// sequence counter grows monotonically, so sorting by tag reproduces the global
/// scan order regardless of which worker claimed which morsel.
type Tag = (usize, u64);

/// Rows of one build partition buffer: output tag, pre-extracted join key, row.
type KeyedRows = Vec<(Tag, Vec<Value>, Row)>;

/// One merged hash-table partition: join key → matching build rows.
type PartitionMap = HashMap<Vec<Value>, Vec<Row>>;

/// The merged, immutable result of a partitioned parallel hash-join build: one hash
/// map per partition (partitioned by join-key hash), probed concurrently by every
/// worker of the probe pipeline. NULL-key rows never match an equi-join but are part
/// of the breaker's materialization, so they are retained for state extraction.
#[derive(Clone)]
struct JoinTable {
    hasher: RandomState,
    parts: Vec<PartitionMap>,
    unkeyed: Vec<Row>,
    total_rows: u64,
}

impl JoinTable {
    fn partition_of(&self, key: &[Value]) -> usize {
        (self.hasher.hash_one(key) as usize) % self.parts.len()
    }

    fn lookup(&self, key: &[Value]) -> &[Row] {
        self.parts[self.partition_of(key)]
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Flatten back into the breaker's materialized rows (bag semantics; the order is
    /// unspecified, like any registered virtual table).
    fn into_rows(self) -> Vec<Row> {
        let mut rows = self.unkeyed;
        for part in self.parts {
            for (_, mut bucket) in part {
                rows.append(&mut bucket);
            }
        }
        rows
    }
}

/// The materialized payload of a completed parallel breaker.
enum BuildPayload {
    Hash(std::sync::Arc<JoinTable>),
    Rows(std::sync::Arc<Vec<Row>>),
}

/// A completed parallel build retained (only for observed pipelines) so that
/// suspension can surrender it as a [`BreakerState`].
struct CompletedBuild {
    kind: BreakerKind,
    rel_set: reopt_planner::RelSet,
    schema: Schema,
    payload: BuildPayload,
}

// ---------------------------------------------------------------------------
// Pipeline sources and operator chain steps
// ---------------------------------------------------------------------------

/// The driving input of one pipeline, split into morsels. Sources own `Arc`
/// handles to their tables (not borrows) so a compiled pipeline is `'static` and
/// its chain jobs can run on the resident pool, outliving any one stack frame.
enum Source {
    /// A sequential scan over a table's column chunks. Each morsel chunk is sliced
    /// with [`Table::scan_range`]; when the vectorized kernel covers the predicate
    /// the selection runs over the typed columns (dictionary codes compare as
    /// integers) and only surviving rows are decoded at this source boundary — the
    /// parallel chain itself stays row-shaped.
    Table {
        table: Arc<Table>,
        predicate: Option<Expr>,
        /// Whether the vectorized kernel covers the predicate (probed at compile
        /// time against a zero-row slice, which preserves the real column
        /// representations).
        kernel: bool,
        stats: Arc<ParStats>,
    },
    /// An index scan: the row-id list is resolved up front by the coordinator.
    TableIds {
        table: Arc<Table>,
        ids: Vec<usize>,
        residual: Option<Expr>,
        stats: Arc<ParStats>,
    },
    /// A materialized upstream breaker output (aggregate/sort emission).
    Rows(Vec<Row>),
    /// A merge join over two materialized, key-sorted inputs: morsels range over the
    /// *left* rows; each left row binary-searches the right side for its equal-key
    /// run and emits the (residual-filtered) cross product. Both sides are sorted by
    /// `(key, morsel, sequence)` — a stable key sort in original scan order — so the
    /// output order is run-identical to the single-threaded [`MergeJoinOp`]'s
    /// stable-sorted merge.
    ///
    /// [`MergeJoinOp`]: crate::exec
    MergeJoin {
        left: Arc<Vec<(Vec<Value>, Row)>>,
        right: Arc<Vec<(Vec<Value>, Row)>>,
        residual: Option<Expr>,
        /// The merge-join node's own stats (output rows/batches).
        stats: Arc<ParStats>,
    },
}

impl Source {
    fn len(&self) -> usize {
        match self {
            Source::Table { table, .. } => table.row_count(),
            Source::TableIds { ids, .. } => ids.len(),
            Source::Rows(rows) => rows.len(),
            Source::MergeJoin { left, .. } => left.len(),
        }
    }

    /// Materialize one batch-sized chunk of the source, applying the scan predicate.
    /// `mask_cache` is the calling worker's private kernel cache (truth tables are
    /// rebuilt per worker rather than shared behind a lock).
    fn scan(
        &self,
        range: std::ops::Range<usize>,
        mask_cache: &mut MaskCache,
    ) -> Result<RowBatch, ExecError> {
        let start = Instant::now();
        let out = match self {
            Source::Table {
                table,
                predicate,
                kernel,
                ..
            } => {
                let cols = table.scan_range(range);
                match predicate {
                    Some(predicate) if *kernel => match filter_mask(predicate, &cols, mask_cache) {
                        Some(mask) => cols.filter(&mask).into_rows(),
                        None => {
                            // Defensive: the compile-time probe accepted this
                            // predicate, so the kernel should not decline here.
                            let mut rows = cols.into_rows();
                            predicate.filter_batch(&mut rows)?;
                            rows
                        }
                    },
                    Some(predicate) => {
                        let mut rows = cols.into_rows();
                        predicate.filter_batch(&mut rows)?;
                        rows
                    }
                    None => cols.into_rows(),
                }
            }
            Source::TableIds {
                table,
                ids,
                residual,
                ..
            } => {
                let mut out = Vec::new();
                for &row_id in &ids[range] {
                    let Some(row) = table.row(row_id) else {
                        continue;
                    };
                    if let Some(p) = residual {
                        if !p.eval_predicate(&row)? {
                            continue;
                        }
                    }
                    out.push(row);
                }
                out
            }
            Source::Rows(rows) => rows[range].to_vec(),
            Source::MergeJoin {
                left,
                right,
                residual,
                ..
            } => {
                let mut out = Vec::new();
                for (key, left_row) in &left[range] {
                    // The equal-key run on the (sorted) right side.
                    let lo = right.partition_point(|entry| entry.0.as_slice() < key.as_slice());
                    let hi = right.partition_point(|entry| entry.0.as_slice() <= key.as_slice());
                    for (_, right_row) in &right[lo..hi] {
                        let joined = left_row.join(right_row);
                        if let Some(p) = residual {
                            if !p.eval_predicate(&joined)? {
                                continue;
                            }
                        }
                        out.push(joined);
                    }
                }
                out
            }
        };
        match self {
            Source::Table { stats, .. }
            | Source::TableIds { stats, .. }
            | Source::MergeJoin { stats, .. } => {
                stats.record(out.len(), start.elapsed());
            }
            Source::Rows(_) => {}
        }
        Ok(out)
    }

    fn mark_exhausted(&self) {
        match self {
            Source::Table { stats, .. }
            | Source::TableIds { stats, .. }
            | Source::MergeJoin { stats, .. } => {
                stats.exhausted.store(true, Ordering::SeqCst);
            }
            Source::Rows(_) => {}
        }
    }
}

/// Progress metadata of a join step (mirrors the single-threaded `ProgressMeter`).
struct ProgressInfo {
    rel_set: reopt_planner::RelSet,
    estimated_rows: f64,
    /// Index-NL joins report a final exact cardinality once their pipeline drains.
    reports_exhaustion: bool,
}

/// One streaming operator of a pipeline chain.
enum StepKind {
    Filter(Expr),
    Project(Vec<Expr>),
    HashProbe {
        table: Arc<JoinTable>,
        keys: Vec<usize>,
        residual: Option<Expr>,
    },
    IndexProbe {
        table: Arc<Table>,
        /// The inner join-key column; the index over it (when `use_index`) is
        /// re-resolved per batch because an `&Index` borrow into the `Arc`'d
        /// table cannot live in a `'static` chain job. The lookup scans the
        /// table's few indexes — negligible next to probing a batch.
        inner_key_idx: usize,
        use_index: bool,
        transient: Option<Arc<HashMap<Value, Vec<usize>>>>,
        outer_key: usize,
        inner_predicate: Option<Expr>,
        residual: Option<Expr>,
    },
    /// Plain nested-loop probe: every outer row of the morsel loops the shared
    /// buffered inner side (block-partitioned outer, exactly the single-threaded
    /// operator's pairing order per outer row).
    NlProbe {
        inner: Arc<Vec<Row>>,
        predicate: Option<Expr>,
    },
}

struct Step {
    kind: StepKind,
    stats: Arc<ParStats>,
    progress: Option<ProgressInfo>,
}

impl Step {
    /// Apply the step to one batch, recording stats in output-batch units (a fan-out
    /// join may produce several batches' worth of rows from one input chunk) and, for
    /// join steps with an observer installed, enqueueing periodic progress events.
    fn apply(
        &self,
        batch: RowBatch,
        shared: &Shared,
        batch_size: usize,
    ) -> Result<RowBatch, ExecError> {
        let start = Instant::now();
        let out = match &self.kind {
            StepKind::Filter(predicate) => {
                let mut batch = batch;
                predicate.filter_batch(&mut batch)?;
                batch
            }
            StepKind::Project(exprs) => {
                let mut out = Vec::with_capacity(batch.len());
                for row in &batch {
                    let mut values = Vec::with_capacity(exprs.len());
                    for expr in exprs {
                        values.push(expr.eval(row)?);
                    }
                    out.push(Row::from_values(values));
                }
                out
            }
            StepKind::HashProbe {
                table,
                keys,
                residual,
            } => {
                let mut out = Vec::new();
                for row in &batch {
                    // An immediate quiesce request (suspension or a peer worker's
                    // error) stops fan-out work promptly: the partial output is
                    // still accounted, the worker drains at the next boundary.
                    if shared.drop_inflight() {
                        break;
                    }
                    let Some(key) = extract_key(row, keys) else {
                        continue;
                    };
                    for build_row in table.lookup(&key) {
                        let joined = row.join(build_row);
                        if let Some(p) = residual {
                            if !p.eval_predicate(&joined)? {
                                continue;
                            }
                        }
                        out.push(joined);
                    }
                }
                out
            }
            StepKind::IndexProbe {
                table,
                inner_key_idx,
                use_index,
                transient,
                outer_key,
                inner_predicate,
                residual,
            } => {
                let index = if *use_index {
                    table.index_on_column(*inner_key_idx, false)
                } else {
                    None
                };
                let mut out = Vec::new();
                for outer_row in &batch {
                    if shared.drop_inflight() {
                        break;
                    }
                    let key = outer_row.value(*outer_key);
                    let matches: &[usize] = if key.is_null() {
                        &[]
                    } else {
                        match (index, transient) {
                            (Some(index), _) => index.lookup(key),
                            (None, Some(map)) => map.get(key).map(Vec::as_slice).unwrap_or(&[]),
                            (None, None) => &[],
                        }
                    };
                    for &row_id in matches {
                        let Some(inner_row) = table.row(row_id) else {
                            continue;
                        };
                        if let Some(p) = inner_predicate {
                            if !p.eval_predicate(&inner_row)? {
                                continue;
                            }
                        }
                        let joined = outer_row.join(&inner_row);
                        if let Some(p) = residual {
                            if !p.eval_predicate(&joined)? {
                                continue;
                            }
                        }
                        out.push(joined);
                    }
                }
                out
            }
            StepKind::NlProbe { inner, predicate } => {
                let mut out = Vec::new();
                for outer_row in &batch {
                    if shared.drop_inflight() {
                        break;
                    }
                    for inner_row in inner.iter() {
                        let joined = outer_row.join(inner_row);
                        if let Some(p) = predicate {
                            if !p.eval_predicate(&joined)? {
                                continue;
                            }
                        }
                        out.push(joined);
                    }
                }
                out
            }
        };
        let elapsed = start.elapsed();
        self.stats
            .nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::SeqCst);
        // Account in output-batch units so `batches` and the progress cadence match
        // the single-threaded engine, which paces join output at the batch size.
        let mut remaining = out.len();
        while remaining > 0 {
            let len = remaining.min(batch_size);
            remaining -= len;
            self.stats.rows.fetch_add(len as u64, Ordering::SeqCst);
            let batches = self.stats.batches.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(progress) = &self.progress {
                if shared.observer_active
                    && shared.progress_every > 0
                    && batches % shared.progress_every == 0
                {
                    // Snapshot the produced count under the queue lock: later events
                    // in the queue always carry counts >= earlier ones.
                    let mut queue = shared.events.lock().expect("event queue");
                    let produced = self.stats.rows.load(Ordering::SeqCst);
                    queue.push_back(ExecEvent::Progress(ProgressEvent {
                        source: ProgressSource::OutputBatches,
                        rel_set: progress.rel_set,
                        estimated_rows: progress.estimated_rows,
                        produced_rows: produced,
                        batches,
                        exhausted: false,
                    }));
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Pipeline sinks
// ---------------------------------------------------------------------------

/// Per-worker partial state of a hash-join build sink: rows partitioned by key hash,
/// tagged with their `(morsel, sequence)` position so the merge step can order every
/// bucket identically to the single-threaded build.
struct BuildLocal {
    parts: Vec<KeyedRows>,
    unkeyed: Vec<(Tag, Row)>,
    seq: u64,
}

/// Per-worker partial aggregation state (group key -> accumulators, tagged with the
/// first-seen `(morsel, sequence)` position for deterministic emission order).
struct AggLocal {
    groups: HashMap<Vec<Value>, usize>,
    states: Vec<(Vec<Value>, Vec<Accumulator>, Tag)>,
    seq: u64,
}

/// The aggregate computation of one pipeline sink (shared by workers by reference).
struct AggSpec {
    group_exprs: Vec<Expr>,
    agg_funcs: Vec<AggregateFunc>,
    agg_args: Vec<Option<Expr>>,
    /// The aggregate input's relation set and estimate (for memory-pressure events).
    rel_set: RelSet,
    estimated_rows: f64,
}

impl AggSpec {
    fn consume(
        &self,
        local: &mut AggLocal,
        morsel: usize,
        batch: &[Row],
        shared: &Shared,
    ) -> Result<(), ExecError> {
        for row in batch {
            let mut key = Vec::with_capacity(self.group_exprs.len());
            for expr in &self.group_exprs {
                key.push(expr.eval(row)?);
            }
            let idx = match local.groups.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = local.states.len();
                    let key_bytes: u64 = key.iter().map(|v| v.width() as u64).sum();
                    shared.reserve_or_spill(
                        key_bytes,
                        BreakerKind::AggregateInput,
                        self.rel_set,
                        self.estimated_rows,
                    )?;
                    local.groups.insert(key.clone(), idx);
                    let tag = (morsel, local.seq);
                    local.seq += 1;
                    local.states.push((
                        key,
                        self.agg_funcs.iter().map(|&f| Accumulator::new(f)).collect(),
                        tag,
                    ));
                    shared.acquire(1, key_bytes);
                    idx
                }
            };
            for (accumulator, arg) in local.states[idx].1.iter_mut().zip(&self.agg_args) {
                accumulator.update(arg.as_ref(), row)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The per-run coordinator: owns the (non-`Send`) observer handle and drives every
/// pipeline of the plan. Worker-shared state lives behind `Arc`s so chain jobs on
/// the resident pool are `'static`; the engine itself stays on the session thread.
struct Engine<'p> {
    storage: &'p Storage,
    batch_size: usize,
    threads: usize,
    /// Whether scans may use the vectorized columnar path (see `Executor::columnar`).
    columnar: bool,
    observer: Option<ObserverHandle<'p>>,
    shared: Arc<Shared>,
    stop: std::cell::Cell<Option<StopMode>>,
    completed_builds: Vec<CompletedBuild>,
    /// Per-run lazy-build counters (the process-wide analogues are
    /// [`lazy_builds_planned_total`] / [`lazy_builds_started_total`]).
    builds_planned: std::cell::Cell<u64>,
    builds_started: std::cell::Cell<u64>,
    /// The resident pool this query's chain jobs run on.
    pool: &'static WorkerPool,
    /// This query's task registration: all jobs submit through it, so the pool's
    /// fairness discipline sees one queue per query.
    task: TaskHandle,
}

/// Resolve a table to its shared chunk handle, which `'static` chain jobs can hold
/// without borrowing from the storage map.
fn lookup_table_arc(storage: &Storage, name: &str) -> Result<Arc<Table>, ExecError> {
    storage
        .table_arc(name)
        .map_err(|_| ExecError::TableNotFound(name.to_string()))
}

impl<'p> Engine<'p> {
    fn stopped(&self) -> bool {
        self.stop.get().is_some()
    }

    /// Drain worker-enqueued events into the observer, in queue order. After a
    /// suspension decision the rest of the queue is discarded (matching the
    /// single-threaded contract: a suspended pipeline delivers no further events).
    fn pump_events(&self) {
        if !self.shared.observer_active {
            return;
        }
        loop {
            let event = {
                let mut queue = self.shared.events.lock().expect("event queue");
                if self.stopped() {
                    queue.clear();
                    return;
                }
                queue.pop_front()
            };
            let Some(event) = event else {
                return;
            };
            self.dispatch(&event);
        }
    }

    /// Deliver one coordinator-generated event, after flushing queued worker events so
    /// the funnel order is preserved.
    fn deliver_event(&self, event: ExecEvent) {
        if !self.shared.observer_active {
            return;
        }
        self.pump_events();
        if self.stopped() {
            return;
        }
        self.dispatch(&event);
    }

    fn dispatch(&self, event: &ExecEvent) {
        use crate::exec::ObserverDecision;
        let Some(observer) = &self.observer else {
            return;
        };
        match observer.borrow_mut().on_event(event) {
            ObserverDecision::Continue => {}
            ObserverDecision::Suspend => {
                self.stop.set(Some(StopMode::Immediate));
                self.shared.quiesce.store(true, Ordering::SeqCst);
            }
            ObserverDecision::SuspendAtRootSeam => {
                self.stop.set(Some(StopMode::Seam));
                self.shared.seam.store(true, Ordering::SeqCst);
                self.shared.quiesce.store(true, Ordering::SeqCst);
            }
        }
    }

    fn take_error(&self) -> Option<ExecError> {
        self.shared.error.lock().expect("error lock").take()
    }

    // -- plan evaluation ----------------------------------------------------

    /// Evaluate a plan node to its materialized output rows.
    fn eval_rows(&mut self, plan: &'p PhysicalPlan, stats: &StatsTree) -> Result<Vec<Row>, ExecError> {
        if self.stopped() {
            return Ok(Vec::new());
        }
        match &plan.kind {
            PlanKind::Aggregate {
                group_by,
                aggregates,
            } => {
                let child = &plan.children[0];
                let child_stats = &stats.children[0];
                let input_schema = &child.schema;
                let spec = Arc::new(AggSpec {
                    group_exprs: group_by
                        .iter()
                        .map(|e| bind_exec(e, input_schema))
                        .collect::<Result<Vec<_>, _>>()?,
                    agg_funcs: aggregates.iter().map(|a| a.func).collect(),
                    agg_args: aggregates
                        .iter()
                        .map(|a| bind_exec_opt(a.arg.as_ref(), input_schema))
                        .collect::<Result<Vec<_>, _>>()?,
                    rel_set: child.rel_set,
                    estimated_rows: child.estimated_rows,
                });
                let locals = self.run_pipeline_agg(child, child_stats, Arc::clone(&spec))?;
                if self.stopped() {
                    return Ok(Vec::new());
                }
                let merge_start = Instant::now();
                let input_rows = child_stats.stats.rows.load(Ordering::SeqCst);
                self.deliver_event(ExecEvent::BreakerComplete(BreakerEvent {
                    kind: BreakerKind::AggregateInput,
                    rel_set: child.rel_set,
                    estimated_rows: child.estimated_rows,
                    actual_rows: input_rows,
                    reusable: false,
                }));
                if self.stopped() {
                    return Ok(Vec::new());
                }
                let rows = merge_aggregates(&spec, group_by.is_empty(), locals, &self.shared);
                stats.stats.record(rows.len(), merge_start.elapsed());
                stats.stats.exhausted.store(true, Ordering::SeqCst);
                Ok(rows)
            }
            PlanKind::Sort { keys } => {
                let child = &plan.children[0];
                let child_stats = &stats.children[0];
                let input_schema = &child.schema;
                let bound_keys: Vec<(Expr, bool)> = keys
                    .iter()
                    .map(|(e, asc)| Ok((bind_exec(e, input_schema)?, *asc)))
                    .collect::<Result<Vec<_>, ExecError>>()?;
                let rows = self.run_pipeline_collect(child, child_stats)?;
                if self.stopped() {
                    return Ok(Vec::new());
                }
                let sort_start = Instant::now();
                let bytes: u64 = rows.iter().map(|row| row.width() as u64).sum();
                // Coordinator-side reservation: deliver the pressure event inline so
                // the observer can suspend before the run aborts to the spill engine.
                if !self.shared.try_reserve(bytes) {
                    self.deliver_event(self.shared.pressure_event(
                        BreakerKind::SortInput,
                        child.rel_set,
                        child.estimated_rows,
                    ));
                    if self.stopped() {
                        return Ok(Vec::new());
                    }
                    self.shared.spill_needed.store(true, Ordering::SeqCst);
                    return Err(ExecError::Spill(
                        "memory budget exceeded in the parallel engine; restarting on the single-threaded spill engine"
                            .into(),
                    ));
                }
                self.shared.acquire(rows.len() as u64, bytes);
                self.deliver_event(ExecEvent::BreakerComplete(BreakerEvent {
                    kind: BreakerKind::SortInput,
                    rel_set: child.rel_set,
                    estimated_rows: child.estimated_rows,
                    actual_rows: child_stats.stats.rows.load(Ordering::SeqCst),
                    reusable: false,
                }));
                if self.stopped() {
                    return Ok(Vec::new());
                }
                let rows = sort_rows(rows, &bound_keys)?;
                stats.stats.record(rows.len(), sort_start.elapsed());
                stats.stats.exhausted.store(true, Ordering::SeqCst);
                Ok(rows)
            }
            _ => self.run_pipeline_collect(plan, stats),
        }
    }

    /// Build a hash-join table from a build-side subtree: a pipeline ending in a
    /// partitioned build sink, plus the breaker completion event and (for observed
    /// runs) the retained state.
    fn eval_build(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &StatsTree,
        keys: Vec<usize>,
        join_stats: &Arc<ParStats>,
    ) -> Result<Arc<JoinTable>, ExecError> {
        let compiled = Arc::new(self.compile(plan, stats)?);
        let hasher = RandomState::new();
        let factory = BuildSinkFactory {
            hasher: hasher.clone(),
            keys,
            nparts: compiled.workers.max(1),
            shared: Arc::clone(&self.shared),
            rel_set: plan.rel_set,
            estimated_rows: plan.estimated_rows,
        };
        let worker_locals = self.execute_pipeline(&compiled, factory)?;
        if self.stopped() {
            return Ok(Arc::new(JoinTable {
                hasher,
                parts: vec![HashMap::new()],
                unkeyed: Vec::new(),
                total_rows: 0,
            }));
        }

        // The merge step: one hash map per partition, assembled in parallel (on the
        // resident pool) when the build is large enough to be worth it.
        let merge_start = Instant::now();
        let table = merge_build(hasher, worker_locals, self);
        join_stats
            .nanos
            .fetch_add(merge_start.elapsed().as_nanos() as u64, Ordering::SeqCst);

        let table = Arc::new(table);
        if self.shared.observer_active {
            self.completed_builds.push(CompletedBuild {
                kind: BreakerKind::HashBuild,
                rel_set: plan.rel_set,
                schema: plan.schema.clone(),
                payload: BuildPayload::Hash(Arc::clone(&table)),
            });
        }
        self.deliver_event(ExecEvent::BreakerComplete(BreakerEvent {
            kind: BreakerKind::HashBuild,
            rel_set: plan.rel_set,
            estimated_rows: plan.estimated_rows,
            actual_rows: table.total_rows,
            reusable: true,
        }));
        Ok(table)
    }

    /// Buffer a plain nested-loop join's inner side: a pipeline collected in
    /// `(morsel, sequence)` order (the global scan order), shared read-only by every
    /// probe worker — exactly the single-threaded operator's buffered inner.
    fn eval_nl_inner(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &StatsTree,
    ) -> Result<Arc<Vec<Row>>, ExecError> {
        let compiled = Arc::new(self.compile(plan, stats)?);
        let rows = self.collect_compiled(&compiled)?;
        if self.stopped() {
            return Ok(Arc::new(rows));
        }
        let bytes: u64 = rows.iter().map(|row| row.width() as u64).sum();
        self.shared.acquire(rows.len() as u64, bytes);
        let rows = Arc::new(rows);
        if self.shared.observer_active {
            self.completed_builds.push(CompletedBuild {
                kind: BreakerKind::NestedLoopInner,
                rel_set: plan.rel_set,
                schema: plan.schema.clone(),
                payload: BuildPayload::Rows(Arc::clone(&rows)),
            });
        }
        self.deliver_event(ExecEvent::BreakerComplete(BreakerEvent {
            kind: BreakerKind::NestedLoopInner,
            rel_set: plan.rel_set,
            estimated_rows: plan.estimated_rows,
            actual_rows: rows.len() as u64,
            reusable: true,
        }));
        Ok(rows)
    }

    /// Run one merge-join input as a pipeline into per-worker keyed sort sinks and
    /// k-way-merge the retired runs: the result is sorted by `(key, morsel,
    /// sequence)`, identical to the single-threaded operator's stable key sort over
    /// the input's scan order. Fires the input's [`BreakerKind::MergeInput`] event
    /// with the metered child row count (NULL-key rows are dropped while buffering,
    /// so the buffered count undercounts), mirroring `MergeJoinOp`.
    fn eval_merge_input(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &StatsTree,
        keys: Vec<usize>,
    ) -> Result<Vec<(Vec<Value>, Row)>, ExecError> {
        let compiled = Arc::new(self.compile(plan, stats)?);
        let factory = MergeSinkFactory {
            keys,
            shared: Arc::clone(&self.shared),
        };
        let locals = self.execute_pipeline(&compiled, factory)?;
        if self.stopped() {
            return Ok(Vec::new());
        }
        let merged = kway_merge(locals.into_iter().map(|local| local.entries).collect());
        self.deliver_event(ExecEvent::BreakerComplete(BreakerEvent {
            kind: BreakerKind::MergeInput,
            rel_set: plan.rel_set,
            estimated_rows: plan.estimated_rows,
            actual_rows: stats.stats.rows.load(Ordering::SeqCst),
            reusable: false,
        }));
        Ok(merged)
    }

    /// Execute a LIMIT-rooted plan. The child pipeline runs through a morsel-ordered
    /// exchange: workers tag every batch with its morsel index and send a done marker
    /// per fully-processed morsel; the coordinator reassembles batches in morsel
    /// order (batches within one morsel arrive in order — one morsel is processed by
    /// exactly one worker and the channel preserves per-sender order) and sets the
    /// query's quiesce flag the moment the limit is satisfied, so all workers retire
    /// at their next batch boundary. Output is run-identical to the single-threaded
    /// engine, which truncates the same scan-ordered stream.
    fn eval_limit(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &StatsTree,
        count: usize,
    ) -> Result<Vec<Row>, ExecError> {
        let child = &plan.children[0];
        let child_stats = &stats.children[0];
        let start = Instant::now();
        // LIMIT over a breaker root (aggregate / sort) truncates the materialized
        // output directly — the breaker drains its input completely either way.
        if matches!(child.kind, PlanKind::Aggregate { .. } | PlanKind::Sort { .. }) {
            let mut rows = self.eval_rows(child, child_stats)?;
            if self.stopped() {
                return Ok(Vec::new());
            }
            rows.truncate(count);
            self.record_limit(stats, &rows, start);
            return Ok(rows);
        }
        let compiled = Arc::new(self.compile(child, child_stats)?);
        if self.stopped() {
            return Ok(Vec::new());
        }
        let mut out: Vec<Row> = Vec::new();
        if compiled.workers <= 1 {
            // Inline: morsels are claimed in order by construction; stop claiming
            // the moment the limit is satisfied.
            let cursor = AtomicUsize::new(0);
            let shared = Arc::clone(&self.shared);
            let out_ref = &mut out;
            let result = worker_loop(
                &compiled,
                &self.shared,
                &cursor,
                &mut |_, batch| {
                    if let Some(batch) = batch {
                        for row in batch {
                            if out_ref.len() >= count {
                                break;
                            }
                            out_ref.push(row);
                        }
                        if out_ref.len() >= count {
                            shared.quiesce.store(true, Ordering::SeqCst);
                        }
                    }
                    Ok(())
                },
                &|| self.pump_events(),
            );
            result?;
        } else {
            let (tx, rx) = sync_channel::<LimitMsg>(compiled.workers * 2);
            let ctx = self.launch_chains(
                &compiled,
                LimitSink {
                    tx,
                    shared: Arc::clone(&self.shared),
                    task: self.task.clone(),
                },
            );
            // Reassemble in morsel order: the frontier morsel's batches flow
            // straight to the output; later morsels park until every earlier morsel
            // delivered its done marker. Parked buffers are truncated to the limit —
            // at most `count` rows of any one morsel can ever be emitted — so the
            // reorder buffer is bounded by `workers x count` rows.
            let mut next = 0usize;
            let mut pending: HashMap<usize, (Vec<Row>, bool)> = HashMap::new();
            let mut satisfied = false;
            loop {
                match rx.recv_timeout(Duration::from_micros(100)) {
                    Ok(msg) => {
                        let entry = pending.entry(msg.morsel).or_default();
                        match msg.batch {
                            Some(batch) => {
                                let room = count.saturating_sub(entry.0.len());
                                entry.0.extend(batch.into_iter().take(room));
                            }
                            None => entry.1 = true,
                        }
                        while let Some((rows, done)) = pending.get_mut(&next) {
                            for row in rows.drain(..) {
                                if out.len() >= count {
                                    break;
                                }
                                out.push(row);
                            }
                            if out.len() >= count {
                                satisfied = true;
                                break;
                            }
                            if !*done {
                                break;
                            }
                            pending.remove(&next);
                            next += 1;
                        }
                        if satisfied {
                            self.shared.quiesce.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if ctx.gate.finished() {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                self.pump_events();
                if self.stopped() {
                    break;
                }
            }
            // Teardown: close the exchange so senders blocked on the bounded channel
            // unblock (their sends fail and quiesce the query), then wait for every
            // chain to retire. Remaining exchange contents are discarded — either
            // the limit is satisfied or the run is stopping.
            drop(rx);
            ctx.gate.wait_pumping(&|| self.pump_events());
            self.pump_events();
        }
        if let Some(error) = self.take_error() {
            return Err(error);
        }
        if self.stopped() {
            return Ok(out);
        }
        // A truncated limit leaves the child pipeline non-exhausted (the quiesce
        // flag is set, skipping `finish_pipeline`) exactly like the single-threaded
        // `LimitOp`, which simply stops pulling; a naturally drained child under the
        // limit is marked exhausted as usual.
        if !self.shared.quiesce.load(Ordering::SeqCst) {
            self.finish_pipeline(&compiled);
        }
        self.record_limit(stats, &out, start);
        Ok(out)
    }

    /// Record the LIMIT node's own output stats in batch-size units and mark it
    /// exhausted (a satisfied limit is a finished operator even though its child
    /// is not — see `assemble_metrics`).
    fn record_limit(&self, stats: &StatsTree, rows: &[Row], start: Instant) {
        let mut offset = 0;
        while offset < rows.len() {
            let len = (rows.len() - offset).min(self.batch_size);
            stats.stats.record(len, Duration::ZERO);
            offset += len;
        }
        stats
            .stats
            .nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::SeqCst);
        stats.stats.exhausted.store(true, Ordering::SeqCst);
    }

    /// Compile the streaming segment rooted at `plan` down to its driving source.
    /// Hash-join builds and nested-loop inners are **registered, not executed**,
    /// while walking the spine (their probe steps get placeholder payloads); they
    /// run lazily after the spine's own source is known to be runnable,
    /// innermost-first, with a stop check between each — a suspension taken on an
    /// inner breaker skips every outer build a re-plan is about to discard.
    /// Mid-chain breakers that *drive* the pipeline (aggregate/sort outputs,
    /// merge-join inputs) still materialize during the walk: they are the source,
    /// without which nothing downstream is runnable.
    fn compile<'s>(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &'s StatsTree,
    ) -> Result<Compiled, ExecError> {
        /// The payload a lazily-registered build patches into its probe step.
        enum BuildKind {
            Hash { keys: Vec<usize> },
            NlInner,
        }
        struct BuildRequest<'p, 's> {
            /// Index of the probe step (in collection order) holding the placeholder.
            step: usize,
            plan: &'p PhysicalPlan,
            stats: &'s StatsTree,
            /// The join node's own stats (the build merge time lands there).
            join_stats: Arc<ParStats>,
            kind: BuildKind,
        }
        let mut requests: Vec<BuildRequest<'p, 's>> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut exhaust_marks: Vec<Arc<ParStats>> = Vec::new();
        let mut node = plan;
        let mut node_stats = stats;
        let source = loop {
            if self.stopped() {
                break Source::Rows(Vec::new());
            }
            match &node.kind {
                PlanKind::Filter { predicate } => {
                    steps.push(Step {
                        kind: StepKind::Filter(bind_exec(predicate, &node.children[0].schema)?),
                        stats: std::sync::Arc::clone(&node_stats.stats),
                        progress: None,
                    });
                    exhaust_marks.push(std::sync::Arc::clone(&node_stats.stats));
                    node = &node.children[0];
                    node_stats = &node_stats.children[0];
                }
                PlanKind::Project { exprs } => {
                    let input_schema = &node.children[0].schema;
                    steps.push(Step {
                        kind: StepKind::Project(
                            exprs
                                .iter()
                                .map(|e| bind_exec(&e.expr, input_schema))
                                .collect::<Result<Vec<_>, _>>()?,
                        ),
                        stats: std::sync::Arc::clone(&node_stats.stats),
                        progress: None,
                    });
                    exhaust_marks.push(std::sync::Arc::clone(&node_stats.stats));
                    node = &node.children[0];
                    node_stats = &node_stats.children[0];
                }
                PlanKind::HashJoin { keys, residual } => {
                    let probe_schema = &node.children[0].schema;
                    let build_schema = &node.children[1].schema;
                    let probe_keys = keys
                        .iter()
                        .map(|(probe, _)| key_index_exec(probe_schema, probe))
                        .collect::<Result<Vec<_>, _>>()?;
                    let build_keys = keys
                        .iter()
                        .map(|(_, build)| key_index_exec(build_schema, build))
                        .collect::<Result<Vec<_>, _>>()?;
                    requests.push(BuildRequest {
                        step: steps.len(),
                        plan: &node.children[1],
                        stats: &node_stats.children[1],
                        join_stats: Arc::clone(&node_stats.stats),
                        kind: BuildKind::Hash { keys: build_keys },
                    });
                    steps.push(Step {
                        kind: StepKind::HashProbe {
                            // Placeholder: patched once the registered build runs.
                            table: Arc::new(JoinTable {
                                hasher: RandomState::new(),
                                parts: vec![HashMap::new()],
                                unkeyed: Vec::new(),
                                total_rows: 0,
                            }),
                            keys: probe_keys,
                            residual: bind_exec_opt(residual.as_ref(), &node.schema)?,
                        },
                        stats: std::sync::Arc::clone(&node_stats.stats),
                        progress: Some(ProgressInfo {
                            rel_set: node.rel_set,
                            estimated_rows: node.estimated_rows,
                            reports_exhaustion: false,
                        }),
                    });
                    exhaust_marks.push(std::sync::Arc::clone(&node_stats.stats));
                    node = &node.children[0];
                    node_stats = &node_stats.children[0];
                }
                PlanKind::NestedLoopJoin { predicate } => {
                    requests.push(BuildRequest {
                        step: steps.len(),
                        plan: &node.children[1],
                        stats: &node_stats.children[1],
                        join_stats: Arc::clone(&node_stats.stats),
                        kind: BuildKind::NlInner,
                    });
                    steps.push(Step {
                        kind: StepKind::NlProbe {
                            // Placeholder: patched once the registered inner runs.
                            inner: Arc::new(Vec::new()),
                            predicate: bind_exec_opt(predicate.as_ref(), &node.schema)?,
                        },
                        stats: std::sync::Arc::clone(&node_stats.stats),
                        progress: Some(ProgressInfo {
                            rel_set: node.rel_set,
                            estimated_rows: node.estimated_rows,
                            reports_exhaustion: false,
                        }),
                    });
                    exhaust_marks.push(std::sync::Arc::clone(&node_stats.stats));
                    node = &node.children[0];
                    node_stats = &node_stats.children[0];
                }
                PlanKind::MergeJoin { keys, residual } => {
                    let left = &node.children[0];
                    let right = &node.children[1];
                    let left_keys = keys
                        .iter()
                        .map(|(l, _)| key_index_exec(&left.schema, l))
                        .collect::<Result<Vec<_>, _>>()?;
                    let right_keys = keys
                        .iter()
                        .map(|(_, r)| key_index_exec(&right.schema, r))
                        .collect::<Result<Vec<_>, _>>()?;
                    let left_rows =
                        self.eval_merge_input(left, &node_stats.children[0], left_keys)?;
                    let right_rows =
                        self.eval_merge_input(right, &node_stats.children[1], right_keys)?;
                    break Source::MergeJoin {
                        left: Arc::new(left_rows),
                        right: Arc::new(right_rows),
                        residual: bind_exec_opt(residual.as_ref(), &node.schema)?,
                        stats: Arc::clone(&node_stats.stats),
                    };
                }
                PlanKind::IndexNestedLoopJoin {
                    inner_table,
                    inner_alias,
                    outer_key,
                    inner_key,
                    inner_predicate,
                    residual,
                    ..
                } => {
                    let outer_schema = &node.children[0].schema;
                    let table = lookup_table_arc(self.storage, inner_table)?;
                    let outer_key_idx = key_index_exec(outer_schema, outer_key)?;
                    let inner_key_idx = table.schema().index_of(None, inner_key)?;
                    let inner_schema = table.schema().qualified(inner_alias);
                    let use_index = table.index_on_column(inner_key_idx, false).is_some();
                    let transient = if !use_index {
                        // No usable index: build a transient lookup table once,
                        // shared read-only by every worker (bounded by the base
                        // table, like the single-threaded operator). Only the key
                        // column is decoded; the other columns stay columnar.
                        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
                        let key_column = table.column(inner_key_idx);
                        for row_id in 0..table.row_count() {
                            if !key_column.is_null_at(row_id) {
                                map.entry(key_column.value_at(row_id))
                                    .or_default()
                                    .push(row_id);
                            }
                        }
                        let entries = map.values().map(Vec::len).sum::<usize>() as u64;
                        self.shared.acquire(entries, 8 * entries);
                        Some(Arc::new(map))
                    } else {
                        None
                    };
                    steps.push(Step {
                        kind: StepKind::IndexProbe {
                            table,
                            inner_key_idx,
                            use_index,
                            transient,
                            outer_key: outer_key_idx,
                            inner_predicate: bind_exec_opt(inner_predicate.as_ref(), &inner_schema)?,
                            residual: bind_exec_opt(residual.as_ref(), &node.schema)?,
                        },
                        stats: std::sync::Arc::clone(&node_stats.stats),
                        progress: Some(ProgressInfo {
                            rel_set: node.rel_set,
                            estimated_rows: node.estimated_rows,
                            reports_exhaustion: true,
                        }),
                    });
                    exhaust_marks.push(std::sync::Arc::clone(&node_stats.stats));
                    node = &node.children[0];
                    node_stats = &node_stats.children[0];
                }
                PlanKind::SeqScan {
                    table, predicate, ..
                } => {
                    let table = lookup_table_arc(self.storage, table)?;
                    let predicate = bind_exec_opt(predicate.as_ref(), &node.schema)?;
                    // Probe kernel support against a zero-row slice: it carries the
                    // table's real column representations, so the decision holds for
                    // every morsel of the scan.
                    let mut probe_cache = MaskCache::new();
                    let kernel = self.columnar
                        && predicate
                            .as_ref()
                            .map(|p| {
                                filter_mask(p, &table.scan_range(0..0), &mut probe_cache).is_some()
                            })
                            .unwrap_or(true);
                    let _ = node_stats
                        .stats
                        .encoding
                        .set(scan_encoding_label(self.columnar, kernel, &table));
                    break Source::Table {
                        table,
                        predicate,
                        kernel,
                        stats: Arc::clone(&node_stats.stats),
                    };
                }
                PlanKind::IndexScan {
                    table,
                    column,
                    lookup,
                    residual,
                    ..
                } => {
                    let table = lookup_table_arc(self.storage, table)?;
                    let column_idx = table.schema().index_of(None, column)?;
                    let needs_range =
                        matches!(lookup, reopt_planner::plan::IndexLookup::Range { .. });
                    let index = table
                        .index_on_column(column_idx, needs_range)
                        .ok_or_else(|| {
                            ExecError::InvalidPlan(format!("no usable index on column '{column}'"))
                        })?;
                    let ids = resolve_index_row_ids(index, lookup);
                    self.shared.acquire(ids.len() as u64, 8 * ids.len() as u64);
                    let _ = node_stats.stats.encoding.set("row");
                    break Source::TableIds {
                        table,
                        ids,
                        residual: bind_exec_opt(residual.as_ref(), &node.schema)?,
                        stats: Arc::clone(&node_stats.stats),
                    };
                }
                PlanKind::Aggregate { .. } | PlanKind::Sort { .. } => {
                    // A breaker in the middle of the chain: materialize its output and
                    // use it as the driving source of this pipeline.
                    break Source::Rows(self.eval_rows(node, node_stats)?);
                }
                PlanKind::Limit { .. } => {
                    // The planner only places LIMIT at the plan root (where
                    // `eval_limit` handles it); `fallback_reason` gates the rest.
                    return Err(ExecError::InvalidPlan(
                        "LIMIT below the plan root has no parallel implementation".into(),
                    ));
                }
            }
        };
        // Execute the registered builds lazily, now that the spine's own source is
        // runnable. Requests were collected root-down, so reverse order runs them
        // innermost-first — matching the single-threaded engine, where the deepest
        // probe pulls (and therefore builds) first — and a stop between builds
        // (suspension on an inner breaker) skips every outer build.
        if !requests.is_empty() {
            BUILDS_PLANNED.fetch_add(requests.len() as u64, Ordering::SeqCst);
            self.builds_planned
                .set(self.builds_planned.get() + requests.len() as u64);
            for request in requests.into_iter().rev() {
                if self.stopped() {
                    break;
                }
                BUILDS_STARTED.fetch_add(1, Ordering::SeqCst);
                self.builds_started.set(self.builds_started.get() + 1);
                match request.kind {
                    BuildKind::Hash { keys } => {
                        let table =
                            self.eval_build(request.plan, request.stats, keys, &request.join_stats)?;
                        if let StepKind::HashProbe { table: slot, .. } =
                            &mut steps[request.step].kind
                        {
                            *slot = table;
                        }
                    }
                    BuildKind::NlInner => {
                        let inner = self.eval_nl_inner(request.plan, request.stats)?;
                        if let StepKind::NlProbe { inner: slot, .. } =
                            &mut steps[request.step].kind
                        {
                            *slot = inner;
                        }
                    }
                }
            }
        }
        // Steps were collected root-down; they apply source-up.
        steps.reverse();
        let total = source.len();
        let morsel_rows = self.batch_size.saturating_mul(MORSEL_BATCHES).max(1);
        let morsels = total.div_ceil(morsel_rows).max(1);
        let workers = self.threads.min(morsels).max(1);
        Ok(Compiled {
            source,
            steps,
            exhaust_marks,
            morsel_rows,
            morsels,
            workers,
        })
    }

    /// Launch one chain job per worker on the resident pool and return the shared
    /// run context. Each job processes one morsel then re-enqueues itself at the
    /// back of this query's task queue, so concurrent queries interleave at morsel
    /// granularity. Chains retire (push their sink local, count down the gate) when
    /// the cursor is exhausted or the query quiesces.
    fn launch_chains<S: SinkFactory>(
        &self,
        compiled: &Arc<Compiled>,
        factory: S,
    ) -> Arc<ChainCtx<S>> {
        let workers = compiled.workers;
        let ctx = Arc::new(ChainCtx {
            compiled: Arc::clone(compiled),
            shared: Arc::clone(&self.shared),
            cursor: AtomicUsize::new(0),
            sink: factory,
            locals: Mutex::new(Vec::new()),
            gate: Gate::new(workers),
            task: self.task.clone(),
        });
        self.pool.ensure_available(workers);
        for _ in 0..workers {
            let local = ctx.sink.make();
            let job_ctx = Arc::clone(&ctx);
            ctx.task
                .submit(move || run_chain_slice(job_ctx, local, MaskCache::new()));
        }
        ctx
    }

    /// Run a compiled pipeline into per-worker sink states, returning one local state
    /// per worker. Inline (single worker) execution uses the same sink code on the
    /// coordinator thread, with the event pump interleaved after every chain batch.
    fn execute_pipeline<S: SinkFactory>(
        &self,
        compiled: &Arc<Compiled>,
        factory: S,
    ) -> Result<Vec<S::Local>, ExecError> {
        let worker_locals: Vec<S::Local> = if compiled.workers <= 1 {
            let cursor = AtomicUsize::new(0);
            let mut local = factory.make();
            let result = worker_loop(
                compiled,
                &self.shared,
                &cursor,
                &mut |morsel, batch| match batch {
                    Some(batch) => factory.consume(&mut local, morsel, batch),
                    None => factory.morsel_done(&mut local, morsel),
                },
                &|| self.pump_events(),
            );
            if result.is_ok() {
                factory.retire(&mut local);
            }
            let locals = vec![local];
            result?;
            locals
        } else {
            let ctx = self.launch_chains(compiled, factory);
            // The coordinator pumps worker-enqueued events while the pool drains
            // the morsel queue.
            ctx.gate.wait_pumping(&|| self.pump_events());
            self.pump_events();
            let locals = std::mem::take(&mut *ctx.locals.lock().expect("chain locals"));
            locals
        };
        if let Some(error) = self.take_error() {
            return Err(error);
        }
        if !self.stopped() && !self.shared.quiesce.load(Ordering::SeqCst) {
            self.finish_pipeline(compiled);
        }
        Ok(worker_locals)
    }

    /// Mark a fully-drained pipeline's operators exhausted and emit the one-shot
    /// exact-cardinality progress reports of its index-NL joins (outer side drained:
    /// the produced count is the join's true output cardinality).
    fn finish_pipeline(&self, compiled: &Compiled) {
        compiled.source.mark_exhausted();
        for mark in &compiled.exhaust_marks {
            mark.exhausted.store(true, Ordering::SeqCst);
        }
        for step in &compiled.steps {
            if let Some(progress) = &step.progress {
                if progress.reports_exhaustion {
                    self.deliver_event(ExecEvent::Progress(ProgressEvent {
                        source: ProgressSource::OuterExhausted,
                        rel_set: progress.rel_set,
                        estimated_rows: progress.estimated_rows,
                        produced_rows: step.stats.rows.load(Ordering::SeqCst),
                        batches: step.stats.batches.load(Ordering::SeqCst),
                        exhausted: true,
                    }));
                    if self.stopped() {
                        return;
                    }
                }
            }
        }
    }

    /// Run a pipeline that collects its output rows: workers exchange batches through
    /// a bounded channel; the coordinator consumes them (so memory stays flat at
    /// `workers x channel depth` batches) while pumping observer events.
    fn run_pipeline_collect(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &StatsTree,
    ) -> Result<Vec<Row>, ExecError> {
        let compiled = Arc::new(self.compile(plan, stats)?);
        self.collect_compiled(&compiled)
    }

    /// Drain an already-compiled pipeline into a row vector (inline on the
    /// coordinator at `workers <= 1`, through the exchange otherwise).
    fn collect_compiled(&self, compiled: &Arc<Compiled>) -> Result<Vec<Row>, ExecError> {
        if self.stopped() {
            return Ok(Vec::new());
        }
        let mut out_rows: Vec<Row> = Vec::new();
        if compiled.workers <= 1 {
            let cursor = AtomicUsize::new(0);
            let out = &mut out_rows;
            let result = worker_loop(
                compiled,
                &self.shared,
                &cursor,
                &mut |_, batch| {
                    if let Some(batch) = batch {
                        out.extend(batch);
                    }
                    Ok(())
                },
                &|| self.pump_events(),
            );
            result?;
        } else {
            let (tx, rx) = sync_channel::<(Tag, RowBatch)>(compiled.workers * 2);
            let ctx = self.launch_chains(
                compiled,
                TaggedChannelSink {
                    tx,
                    shared: Arc::clone(&self.shared),
                    task: self.task.clone(),
                },
            );
            // Consume the exchange while the chains drain the cursor. The context
            // itself holds a sender, so end-of-stream is detected through the gate
            // (all chains retired) rather than channel disconnection.
            let mut tagged: Vec<(Tag, RowBatch)> = Vec::new();
            loop {
                match rx.recv_timeout(Duration::from_micros(100)) {
                    Ok(entry) => tagged.push(entry),
                    Err(RecvTimeoutError::Timeout) => {
                        if ctx.gate.finished() {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                self.pump_events();
            }
            while let Ok(entry) = rx.try_recv() {
                tagged.push(entry);
            }
            self.pump_events();
            // Reassemble in `(morsel, sequence)` order: run-identical to the inline
            // (single-worker) collection, which is the global scan order.
            tagged.sort_by_key(|(tag, _)| *tag);
            for (_, batch) in tagged {
                out_rows.extend(batch);
            }
        }
        if let Some(error) = self.take_error() {
            return Err(error);
        }
        if !self.stopped() && !self.shared.quiesce.load(Ordering::SeqCst) {
            self.finish_pipeline(compiled);
        }
        Ok(out_rows)
    }

    /// Run a pipeline into per-worker partial-aggregation states.
    fn run_pipeline_agg(
        &mut self,
        plan: &'p PhysicalPlan,
        stats: &StatsTree,
        spec: Arc<AggSpec>,
    ) -> Result<Vec<AggLocal>, ExecError> {
        let compiled = Arc::new(self.compile(plan, stats)?);
        if self.stopped() {
            return Ok(Vec::new());
        }
        let factory = AggSinkFactory {
            spec,
            shared: Arc::clone(&self.shared),
        };
        self.execute_pipeline(&compiled, factory)
    }

    fn breaker_states(&mut self) -> Vec<BreakerState> {
        self.completed_builds
            .drain(..)
            .map(|build| {
                let rows = match build.payload {
                    BuildPayload::Hash(table) => std::sync::Arc::try_unwrap(table)
                        .unwrap_or_else(|shared| (*shared).clone())
                        .into_rows(),
                    BuildPayload::Rows(rows) => std::sync::Arc::try_unwrap(rows)
                        .unwrap_or_else(|shared| (*shared).clone()),
                };
                BreakerState {
                    kind: build.kind,
                    rel_set: build.rel_set,
                    schema: build.schema,
                    rows,
                }
            })
            .collect()
    }
}

/// A compiled pipeline: driving source, operator chain, and parallelism parameters.
/// Fully owned (`Send + Sync + 'static`): chain jobs on the resident pool share it
/// through an `Arc` and may outlive the stack frame that compiled it.
struct Compiled {
    source: Source,
    steps: Vec<Step>,
    /// Stats of every chain operator, marked exhausted when the pipeline drains.
    exhaust_marks: Vec<Arc<ParStats>>,
    morsel_rows: usize,
    morsels: usize,
    workers: usize,
}

/// Compile-time proof that compiled pipelines (and their shared run state) can be
/// handed to `'static` pool jobs.
fn _assert_pool_safe() {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<Compiled>();
    assert_send_sync::<Shared>();
}

/// Claim and process **one** morsel: push each batch-sized chunk through the chain
/// and feed the sink with `(morsel, Some(batch))` per produced batch, then a
/// `(morsel, None)` done marker once the morsel is fully processed (a quiesced
/// morsel sends no marker — its partial output is abandoned). Returns `Ok(true)` if
/// the cursor may hold more morsels, `Ok(false)` when the source is exhausted or
/// the query quiesced.
fn process_one_morsel(
    compiled: &Compiled,
    shared: &Shared,
    cursor: &AtomicUsize,
    mask_cache: &mut MaskCache,
    sink: &mut dyn FnMut(usize, Option<RowBatch>) -> Result<(), ExecError>,
    pump: &dyn Fn(),
) -> Result<bool, ExecError> {
    if shared.quiesce.load(Ordering::SeqCst) {
        return Ok(false);
    }
    let morsel = cursor.fetch_add(1, Ordering::SeqCst);
    if morsel >= compiled.morsels {
        return Ok(false);
    }
    let total = compiled.source.len();
    let start = morsel.saturating_mul(compiled.morsel_rows).min(total);
    let end = start.saturating_add(compiled.morsel_rows).min(total);
    let mut pos = start;
    let chunk = (compiled.morsel_rows / MORSEL_BATCHES.max(1)).max(1);
    while pos < end {
        if shared.quiesce.load(Ordering::SeqCst) {
            return Ok(false);
        }
        let chunk_end = pos.saturating_add(chunk).min(end);
        let rows = compiled.source.scan(pos..chunk_end, mask_cache)?;
        pos = chunk_end;
        if rows.is_empty() {
            continue;
        }
        push_chain(&compiled.steps, rows, shared, chunk, &mut |batch| sink(morsel, Some(batch)), pump)?;
    }
    sink(morsel, None)?;
    Ok(true)
}

/// The morsel loop of the inline (single-worker) path: drain the cursor on the
/// coordinator thread, pumping observer events after every chain step.
fn worker_loop(
    compiled: &Compiled,
    shared: &Shared,
    cursor: &AtomicUsize,
    sink: &mut dyn FnMut(usize, Option<RowBatch>) -> Result<(), ExecError>,
    pump: &dyn Fn(),
) -> Result<(), ExecError> {
    // Worker-private kernel cache: truth tables are cheap to rebuild per worker and
    // this keeps the hot mask loop lock-free.
    let mut mask_cache = MaskCache::new();
    while process_one_morsel(compiled, shared, cursor, &mut mask_cache, sink, pump)? {}
    Ok(())
}

/// The shared context of one pipeline run's chain jobs on the resident pool.
struct ChainCtx<S: SinkFactory> {
    compiled: Arc<Compiled>,
    shared: Arc<Shared>,
    cursor: AtomicUsize,
    sink: S,
    /// Retired chains' sink locals, collected for the merge step.
    locals: Mutex<Vec<S::Local>>,
    /// Counts down as chains retire; the coordinator waits on it.
    gate: Gate,
    task: TaskHandle,
}

/// One scheduling quantum of a chain: process a single morsel, then either
/// re-enqueue at the back of this query's task queue (giving equal-priority peers
/// a turn) or retire. Runs on a pool worker; `'static` by construction.
fn run_chain_slice<S: SinkFactory>(ctx: Arc<ChainCtx<S>>, mut local: S::Local, mut cache: MaskCache) {
    // Catch panics from operator code: an uncaught unwind would skip this chain's
    // `Gate::done_one`, leaving the coordinating `wait_pumping` spinning forever
    // (the pool's own catch_unwind only keeps the worker thread alive).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let sink_ref = &ctx.sink;
        let mut sink = |morsel: usize, batch: Option<RowBatch>| match batch {
            Some(batch) => sink_ref.consume(&mut local, morsel, batch),
            None => sink_ref.morsel_done(&mut local, morsel),
        };
        process_one_morsel(
            &ctx.compiled,
            &ctx.shared,
            &ctx.cursor,
            &mut cache,
            &mut sink,
            &|| ctx.shared.wait_for_event_drain(),
        )
    }));
    match outcome {
        Ok(Ok(true)) => {
            let job_ctx = Arc::clone(&ctx);
            ctx.task
                .submit(move || run_chain_slice(job_ctx, local, cache));
        }
        Ok(Ok(false)) => {
            ctx.sink.retire(&mut local);
            ctx.locals.lock().expect("chain locals").push(local);
            ctx.gate.done_one();
        }
        Ok(Err(error)) => {
            ctx.shared.fail(error);
            ctx.locals.lock().expect("chain locals").push(local);
            ctx.gate.done_one();
        }
        Err(payload) => {
            // The local may be mid-update; the error poisons the query before any
            // merge step could miss this chain's dropped local.
            ctx.shared
                .fail(ExecError::Eval(format!("worker panicked: {}", panic_message(&payload))));
            ctx.gate.done_one();
        }
    }
}

/// Best-effort rendering of a panic payload (`&str` and `String` cover `panic!`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Push one batch through the remaining chain steps, re-chunking fan-out output to
/// the batch size between steps so every downstream operator (and the sink exchange)
/// sees batch-sized units. `pump` runs after every step (the inline coordinator
/// drains observer events there, so a suspension decision stops the descent after at
/// most one step's output instead of a whole morsel's fan-out; threaded workers pass
/// a no-op — their coordinator pumps concurrently).
fn push_chain(
    steps: &[Step],
    batch: RowBatch,
    shared: &Shared,
    batch_size: usize,
    sink: &mut dyn FnMut(RowBatch) -> Result<(), ExecError>,
    pump: &dyn Fn(),
) -> Result<(), ExecError> {
    let Some((step, rest)) = steps.split_first() else {
        return sink(batch);
    };
    let out = step.apply(batch, shared, batch_size)?;
    pump();
    if out.is_empty() || shared.drop_inflight() {
        return Ok(());
    }
    if out.len() <= batch_size {
        return push_chain(rest, out, shared, batch_size, sink, pump);
    }
    let mut iter = out.into_iter();
    loop {
        let chunk: RowBatch = iter.by_ref().take(batch_size).collect();
        if chunk.is_empty() {
            return Ok(());
        }
        push_chain(rest, chunk, shared, batch_size, sink, pump)?;
        if shared.drop_inflight() {
            return Ok(());
        }
    }
}

/// A pipeline sink with per-worker local state: `make` is called once per chain,
/// `consume` once per produced chain batch (tagged with the morsel index it came
/// from), `morsel_done` once per fully-processed morsel, and `retire` once when a
/// chain retires cleanly. `execute_pipeline` returns every chain's local state for
/// the merge step. `'static` because sinks ride inside pool jobs that may outlive
/// the coordinating stack frame.
trait SinkFactory: Send + Sync + 'static {
    type Local: Send + 'static;
    fn make(&self) -> Self::Local;
    fn consume(
        &self,
        local: &mut Self::Local,
        morsel: usize,
        batch: RowBatch,
    ) -> Result<(), ExecError>;
    /// Called after the last batch of a fully-processed morsel (quiesced morsels
    /// never report done).
    fn morsel_done(&self, _local: &mut Self::Local, _morsel: usize) -> Result<(), ExecError> {
        Ok(())
    }
    /// Called once when a chain retires cleanly (cursor exhausted or quiesce), before
    /// its local is handed to the merge step.
    fn retire(&self, _local: &mut Self::Local) {}
}

/// Partitioned hash-join build sink: rows land in per-worker, per-partition buffers,
/// keyed and pre-hashed with the table's shared hasher.
struct BuildSinkFactory {
    hasher: RandomState,
    keys: Vec<usize>,
    nparts: usize,
    shared: Arc<Shared>,
    /// The build subtree's relation set and estimate (for memory-pressure events).
    rel_set: RelSet,
    estimated_rows: f64,
}

impl SinkFactory for BuildSinkFactory {
    type Local = BuildLocal;

    fn make(&self) -> BuildLocal {
        BuildLocal {
            parts: (0..self.nparts).map(|_| Vec::new()).collect(),
            unkeyed: Vec::new(),
            seq: 0,
        }
    }

    fn consume(&self, local: &mut BuildLocal, morsel: usize, batch: RowBatch) -> Result<(), ExecError> {
        let bytes: u64 = batch.iter().map(|row| row.width() as u64).sum();
        self.shared.reserve_or_spill(
            bytes,
            BreakerKind::HashBuild,
            self.rel_set,
            self.estimated_rows,
        )?;
        self.shared.acquire(batch.len() as u64, bytes);
        for row in batch {
            let tag = (morsel, local.seq);
            local.seq += 1;
            match extract_key(&row, &self.keys) {
                Some(key) => {
                    let part = (self.hasher.hash_one(&key[..]) as usize) % local.parts.len();
                    local.parts[part].push((tag, key, row));
                }
                None => local.unkeyed.push((tag, row)),
            }
        }
        Ok(())
    }
}

/// Partial-aggregation sink: one accumulator set per group per worker.
struct AggSinkFactory {
    spec: Arc<AggSpec>,
    shared: Arc<Shared>,
}

impl SinkFactory for AggSinkFactory {
    type Local = AggLocal;

    fn make(&self) -> AggLocal {
        let mut local = AggLocal {
            groups: HashMap::new(),
            states: Vec::new(),
            seq: 0,
        };
        if self.spec.group_exprs.is_empty() {
            local.states.push((
                Vec::new(),
                self.spec
                    .agg_funcs
                    .iter()
                    .map(|&f| Accumulator::new(f))
                    .collect(),
                (0, 0),
            ));
        }
        local
    }

    fn consume(&self, local: &mut AggLocal, morsel: usize, batch: RowBatch) -> Result<(), ExecError> {
        if self.spec.group_exprs.is_empty() {
            for row in &batch {
                for (accumulator, arg) in local.states[0].1.iter_mut().zip(&self.spec.agg_args) {
                    accumulator.update(arg.as_ref(), row)?;
                }
            }
            Ok(())
        } else {
            self.spec.consume(local, morsel, &batch, &self.shared)
        }
    }
}

/// Exchange sink: chain batches flow through a bounded channel to whichever
/// thread holds the receiver (the coordinator for mid-plan collection, the
/// client-pulled pipeline facade for a streaming root). Each chain sends through
/// its own cloned handle. A send can only fail once the receiver is gone for
/// good — the pipeline was suspended or dropped — so it quiesces the query
/// rather than letting orphaned chains keep scanning.
struct ChannelSink {
    tx: SyncSender<RowBatch>,
    shared: Arc<Shared>,
    /// The owning query's task handle: sends run inside its blocking section so a
    /// worker stalled behind a slow-pulling client stops counting against the
    /// pool's thread cap (see [`TaskHandle::blocking`]).
    task: TaskHandle,
}

impl SinkFactory for ChannelSink {
    type Local = SyncSender<RowBatch>;

    fn make(&self) -> SyncSender<RowBatch> {
        self.tx.clone()
    }

    fn consume(
        &self,
        local: &mut SyncSender<RowBatch>,
        _morsel: usize,
        batch: RowBatch,
    ) -> Result<(), ExecError> {
        if self.task.blocking(|| local.send(batch)).is_err() {
            self.shared.quiesce.store(true, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// Tag-ordered exchange sink: like [`ChannelSink`], but every batch carries its
/// `(morsel, sequence)` tag so the coordinator can reassemble the collection in
/// global scan order — materialized mid-plan collections (sort inputs, nested-loop
/// inners) become run-identical to the inline (single-worker) collection order.
struct TaggedChannelSink {
    tx: SyncSender<(Tag, RowBatch)>,
    shared: Arc<Shared>,
    task: TaskHandle,
}

/// Per-chain sender plus its batch sequence counter.
struct TaggedSender {
    tx: SyncSender<(Tag, RowBatch)>,
    seq: u64,
}

impl SinkFactory for TaggedChannelSink {
    type Local = TaggedSender;

    fn make(&self) -> TaggedSender {
        TaggedSender {
            tx: self.tx.clone(),
            seq: 0,
        }
    }

    fn consume(&self, local: &mut TaggedSender, morsel: usize, batch: RowBatch) -> Result<(), ExecError> {
        let tag = (morsel, local.seq);
        local.seq += 1;
        if self.task.blocking(|| local.tx.send((tag, batch))).is_err() {
            self.shared.quiesce.store(true, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// Keyed sort sink of one merge-join input: every retired chain holds a run sorted
/// by `(key, morsel, sequence)`; the coordinator k-way-merges the runs (see
/// [`kway_merge`]). Buffered rows are tracked but not reserved against the memory
/// governor, mirroring the single-threaded `drain_keyed`.
struct MergeSinkFactory {
    keys: Vec<usize>,
    shared: Arc<Shared>,
}

/// One chain's keyed run: `(key, tag, row)` entries, sorted at retirement.
struct MergeLocal {
    entries: Vec<(Vec<Value>, Tag, Row)>,
    seq: u64,
}

impl SinkFactory for MergeSinkFactory {
    type Local = MergeLocal;

    fn make(&self) -> MergeLocal {
        MergeLocal {
            entries: Vec::new(),
            seq: 0,
        }
    }

    fn consume(&self, local: &mut MergeLocal, morsel: usize, batch: RowBatch) -> Result<(), ExecError> {
        for row in batch {
            let tag = (morsel, local.seq);
            local.seq += 1;
            // NULL join keys never match under equi-join semantics; drop them while
            // buffering, exactly like the single-threaded `drain_keyed`.
            let Some(key) = extract_key(&row, &self.keys) else {
                continue;
            };
            self.shared.acquire(1, row.width() as u64);
            local.entries.push((key, tag, row));
        }
        Ok(())
    }

    fn retire(&self, local: &mut MergeLocal) {
        // The per-worker partitioned sort: each retired run is ordered by
        // `(key, tag)`, so the coordinator's k-way merge yields the global
        // `(key, morsel, sequence)` order.
        local.entries.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    }
}

/// K-way-merge per-worker sorted runs into one `(key, row)` list ordered by
/// `(key, morsel, sequence)` — a linear min-scan over the run heads (the run count
/// is bounded by the worker count, so a heap buys nothing).
fn kway_merge(runs: Vec<Vec<(Vec<Value>, Tag, Row)>>) -> Vec<(Vec<Value>, Row)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    // Reverse each run so its smallest entry sits at the back and `pop` yields it.
    let mut runs: Vec<Vec<(Vec<Value>, Tag, Row)>> = runs
        .into_iter()
        .map(|mut run| {
            run.reverse();
            run
        })
        .collect();
    let mut out: Vec<(Vec<Value>, Row)> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            let Some(head) = run.last() else {
                continue;
            };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let current = runs[b].last().expect("best run nonempty");
                    // Ties are impossible: a tag belongs to exactly one run.
                    if (&head.0, head.1) < (&current.0, current.1) {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(b) = best else {
            break;
        };
        let (key, _, row) = runs[b].pop().expect("best run nonempty");
        out.push((key, row));
    }
    out
}

/// One message of the LIMIT root exchange: a produced batch of `morsel`, or (with
/// `batch == None`) the marker that `morsel` is fully processed.
struct LimitMsg {
    morsel: usize,
    batch: Option<RowBatch>,
}

/// Morsel-ordered exchange sink for LIMIT roots: batches carry their morsel index
/// and every fully-processed morsel is terminated by a done marker, letting the
/// coordinator reassemble the stream in morsel order and quiesce the query the
/// moment the limit is satisfied (see [`Engine::eval_limit`]).
struct LimitSink {
    tx: SyncSender<LimitMsg>,
    shared: Arc<Shared>,
    task: TaskHandle,
}

impl SinkFactory for LimitSink {
    type Local = SyncSender<LimitMsg>;

    fn make(&self) -> SyncSender<LimitMsg> {
        self.tx.clone()
    }

    fn consume(
        &self,
        local: &mut SyncSender<LimitMsg>,
        morsel: usize,
        batch: RowBatch,
    ) -> Result<(), ExecError> {
        let msg = LimitMsg {
            morsel,
            batch: Some(batch),
        };
        if self.task.blocking(|| local.send(msg)).is_err() {
            self.shared.quiesce.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    fn morsel_done(&self, local: &mut SyncSender<LimitMsg>, morsel: usize) -> Result<(), ExecError> {
        let msg = LimitMsg {
            morsel,
            batch: None,
        };
        if self.task.blocking(|| local.send(msg)).is_err() {
            self.shared.quiesce.store(true, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// Merge the per-worker partitioned build buffers into one [`JoinTable`], in parallel
/// across partitions (on the resident pool) when the build is large. Rows are
/// inserted in `(morsel, sequence)` order — the global scan order — so every bucket's
/// fan-out order during probing is run-identical to the single-threaded build.
fn merge_build(hasher: RandomState, locals: Vec<BuildLocal>, engine: &Engine<'_>) -> JoinTable {
    fn merge_one(buckets: Vec<KeyedRows>) -> PartitionMap {
        let mut rows: KeyedRows = buckets.into_iter().flatten().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let mut map: PartitionMap = HashMap::new();
        for (_, key, row) in rows {
            map.entry(key).or_default().push(row);
        }
        map
    }
    let nparts = locals.iter().map(|l| l.parts.len()).max().unwrap_or(1);
    let keyed_total: usize = locals
        .iter()
        .map(|l| l.parts.iter().map(Vec::len).sum::<usize>())
        .sum();
    // Transpose into per-partition buckets of per-worker buffers, moving the NULL-key
    // rows out along the way (also tag-ordered, for deterministic state extraction).
    let mut unkeyed_tagged: Vec<(Tag, Row)> = Vec::new();
    let mut partition_inputs: Vec<Vec<KeyedRows>> = (0..nparts).map(|_| Vec::new()).collect();
    for mut local in locals {
        unkeyed_tagged.append(&mut local.unkeyed);
        for (part, bucket) in local.parts.into_iter().enumerate() {
            partition_inputs[part].push(bucket);
        }
    }
    unkeyed_tagged.sort_by(|a, b| a.0.cmp(&b.0));
    let unkeyed: Vec<Row> = unkeyed_tagged.into_iter().map(|(_, row)| row).collect();
    let parts: Vec<PartitionMap> = if engine.threads > 1 && keyed_total > 65_536 {
        // One pool job per partition; inputs and outputs live behind Arc'd slots
        // so the jobs are 'static.
        type MergeWork = (
            Vec<Mutex<Option<Vec<KeyedRows>>>>,
            Vec<Mutex<Option<PartitionMap>>>,
        );
        let work: Arc<MergeWork> = Arc::new((
            partition_inputs
                .into_iter()
                .map(|i| Mutex::new(Some(i)))
                .collect(),
            (0..nparts).map(|_| Mutex::new(None)).collect(),
        ));
        let gate = Arc::new(Gate::new(nparts));
        engine.pool.ensure_available(nparts.min(engine.threads));
        for part in 0..nparts {
            let work = Arc::clone(&work);
            let gate = Arc::clone(&gate);
            let shared = Arc::clone(&engine.shared);
            engine.task.submit(move || {
                // As in `run_chain_slice`: a panic must still retire the gate and
                // fail the query, or the coordinator below waits forever.
                let map = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let input = work.0[part].lock().expect("merge input").take().unwrap_or_default();
                    merge_one(input)
                }));
                match map {
                    Ok(map) => *work.1[part].lock().expect("merge slot") = Some(map),
                    Err(payload) => shared.fail(ExecError::Eval(format!(
                        "build merge panicked: {}",
                        panic_message(&payload)
                    ))),
                }
                gate.done_one();
            });
        }
        gate.wait_pumping(&|| engine.pump_events());
        work.1
            .iter()
            .map(|slot| slot.lock().expect("merge slot").take().unwrap_or_default())
            .collect()
    } else {
        partition_inputs.into_iter().map(merge_one).collect()
    };
    let total_rows = (keyed_total + unkeyed.len()) as u64;
    JoinTable {
        hasher,
        parts,
        unkeyed,
        total_rows,
    }
}

/// Merge per-worker partial aggregation states and emit the result rows. Locals
/// arrive in worker *completion* order, which is nondeterministic — that is safe
/// because every accumulator merges exactly (float SUM/AVG accumulate into a
/// [`crate::exact::ExactSum`] fixed-point superaccumulator and round once at
/// emission), making the merged values independent of merge order. Groups are
/// emitted in first-seen `(morsel, sequence)` order — the global scan order — so the
/// output row order is also run-identical across thread counts and matches the
/// single-threaded engine's first-seen emission.
fn merge_aggregates(
    spec: &AggSpec,
    single_group: bool,
    locals: Vec<AggLocal>,
    shared: &Shared,
) -> Vec<Row> {
    if single_group {
        let mut merged: Vec<Accumulator> =
            spec.agg_funcs.iter().map(|&f| Accumulator::new(f)).collect();
        for local in locals {
            if let Some((_, state, _)) = local.states.into_iter().next() {
                for (accumulator, partial) in merged.iter_mut().zip(state) {
                    accumulator.merge(partial);
                }
            }
        }
        shared.acquire(1, 8);
        return vec![Row::from_values(
            merged.into_iter().map(Accumulator::finish).collect(),
        )];
    }
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut states: Vec<(Vec<Value>, Vec<Accumulator>, Tag)> = Vec::new();
    for local in locals {
        for (key, partial, tag) in local.states {
            match groups.get(&key) {
                Some(&idx) => {
                    for (accumulator, p) in states[idx].1.iter_mut().zip(partial) {
                        accumulator.merge(p);
                    }
                    // Keep the earliest first-seen position across workers.
                    if tag < states[idx].2 {
                        states[idx].2 = tag;
                    }
                }
                None => {
                    groups.insert(key.clone(), states.len());
                    states.push((key, partial, tag));
                }
            }
        }
    }
    states.sort_by_key(|(_, _, tag)| *tag);
    states
        .into_iter()
        .map(|(key, accumulators, _)| {
            let mut values = key;
            values.extend(accumulators.into_iter().map(Accumulator::finish));
            Row::from_values(values)
        })
        .collect()
}

/// Sort materialized rows by the bound sort keys (the parallel analogue of `SortOp`).
fn sort_rows(rows: Vec<Row>, keys: &[(Expr, bool)]) -> Result<Vec<Row>, ExecError> {
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut key = Vec::with_capacity(keys.len());
        for (expr, _) in keys {
            key.push(expr.eval(&row)?);
        }
        keyed.push((key, row));
    }
    let directions: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
    keyed.sort_by(|a, b| {
        for (idx, ascending) in directions.iter().enumerate() {
            let ordering = a.0[idx].cmp(&b.0[idx]);
            let ordering = if *ascending { ordering } else { ordering.reverse() };
            if ordering != std::cmp::Ordering::Equal {
                return ordering;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

// ---------------------------------------------------------------------------
// The public pipeline facade
// ---------------------------------------------------------------------------

/// A streaming root: the live exchange between this query's chain jobs (still
/// running on the resident pool) and the client pulling `next_batch`.
struct StreamingRoot {
    rx: Receiver<RowBatch>,
    /// Keeps the chain-job context (and its retirement gate) reachable.
    ctx: Arc<ChainCtx<ChannelSink>>,
    compiled: Arc<Compiled>,
    /// Seam suspension: whether the one in-flight batch was already delivered.
    seam_delivered: bool,
}

/// How far a parallel pipeline has progressed.
enum RunState {
    NotStarted,
    /// A materialized root (aggregate/sort breaker, inline run, or seam tail):
    /// rows are served in batch-size chunks.
    Serving {
        rows: Vec<Row>,
        pos: usize,
        /// Seam suspension: once `rows` is exhausted, report `Suspended` instead of
        /// end-of-stream.
        seam: bool,
    },
    /// A streaming-shaped root: chain jobs stay live on the pool across pulls,
    /// producing into a bounded exchange as fast as the client consumes.
    Streaming(StreamingRoot),
    Suspended,
    Poisoned,
    /// A streaming root that ran to completion.
    Done,
}

/// A morsel-driven parallel execution of one plan, behind the same contract as the
/// single-threaded [`Pipeline`](crate::exec::Pipeline).
///
/// Breaker-rooted plans (aggregate/sort) materialize their result inside the first
/// `next_batch` call and serve it in batch-size chunks — the breaker buffers
/// everything by definition. Streaming-shaped roots (scan/filter/project/join
/// spines) instead keep a **live root exchange**: the first pull registers the query
/// as a pool task and launches its chain jobs; every pull (including the first)
/// receives the next produced batch from a bounded channel while the jobs keep
/// running between pulls, so the root result is never buffered and a slow consumer
/// back-pressures the pool through the channel bound. The root buffer of
/// breaker-rooted plans is intentionally *not* charged to `peak_buffered_rows`,
/// which keeps its cross-engine meaning of breaker-buffered rows.
pub(crate) struct ParallelPipeline<'p> {
    plan: &'p PhysicalPlan,
    storage: &'p Storage,
    batch_size: usize,
    threads: usize,
    progress_every: u64,
    columnar: bool,
    priority: u8,
    governor: Arc<MemoryGovernor>,
    observer: Option<ObserverHandle<'p>>,
    stats: StatsTree,
    /// The per-run coordinator; lives for the whole pipeline (streaming roots keep
    /// delivering events and surrender breaker state long after the first pull).
    engine: Option<Engine<'p>>,
    state: RunState,
    breaker_states: Vec<BreakerState>,
    peak_buffered_rows: u64,
    peak_buffered_bytes: u64,
    started: Option<Instant>,
    wall: Duration,
}

impl<'p> ParallelPipeline<'p> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        plan: &'p PhysicalPlan,
        storage: &'p Storage,
        batch_size: usize,
        threads: usize,
        progress_every: u64,
        columnar: bool,
        priority: u8,
        governor: Arc<MemoryGovernor>,
        observer: Option<ObserverHandle<'p>>,
    ) -> Self {
        let stats = build_stats_tree(plan);
        Self {
            plan,
            storage,
            batch_size,
            threads,
            progress_every,
            columnar,
            priority,
            governor,
            observer,
            stats,
            engine: None,
            state: RunState::NotStarted,
            breaker_states: Vec::new(),
            peak_buffered_rows: 0,
            peak_buffered_bytes: 0,
            started: None,
            wall: Duration::ZERO,
        }
    }

    /// Start executing on the resident pool. Called on the first pull. Breaker
    /// roots run to completion here; streaming roots launch their chain jobs and
    /// return with the exchange open.
    fn run(&mut self) -> Result<(), ExecError> {
        self.started = Some(Instant::now());
        let pool = WorkerPool::global();
        let task = pool.register(self.priority);
        self.engine = Some(Engine {
            storage: self.storage,
            batch_size: self.batch_size,
            threads: self.threads,
            columnar: self.columnar,
            observer: self.observer.clone(),
            shared: Arc::new(Shared {
                quiesce: AtomicBool::new(false),
                seam: AtomicBool::new(false),
                observer_active: self.observer.is_some(),
                progress_every: self.progress_every,
                events: Mutex::new(VecDeque::new()),
                error: Mutex::new(None),
                buffered_current: AtomicU64::new(0),
                buffered_peak: AtomicU64::new(0),
                buffered_bytes_current: AtomicU64::new(0),
                buffered_bytes_peak: AtomicU64::new(0),
                governor: Arc::clone(&self.governor),
                reserved: AtomicU64::new(0),
                spill_needed: AtomicBool::new(false),
            }),
            stop: std::cell::Cell::new(None),
            completed_builds: Vec::new(),
            builds_planned: std::cell::Cell::new(0),
            builds_started: std::cell::Cell::new(0),
            pool,
            task,
        });
        let plan = self.plan;
        if let PlanKind::Limit { count } = plan.kind {
            let result = {
                let engine = self.engine.as_mut().expect("engine");
                engine.eval_limit(plan, &self.stats, count)
            };
            return self.settle_materialized(result);
        }
        if matches!(plan.kind, PlanKind::Aggregate { .. } | PlanKind::Sort { .. }) {
            let result = {
                let engine = self.engine.as_mut().expect("engine");
                engine.eval_rows(plan, &self.stats)
            };
            return self.settle_materialized(result);
        }
        // A streaming-shaped root: compile the spine (registered builds run lazily
        // at the end of the compile), then serve through a live exchange.
        let compiled = {
            let engine = self.engine.as_mut().expect("engine");
            engine.compile(plan, &self.stats)
        };
        let compiled = match compiled {
            Ok(compiled) => Arc::new(compiled),
            Err(error) => return self.settle_materialized(Err(error)),
        };
        let engine = self.engine.as_ref().expect("engine");
        if engine.stopped() || compiled.workers <= 1 {
            // Stopped during the builds, or a source too small to parallelize:
            // collect inline on the coordinator (tiny inputs never pay the pool).
            let result = engine.collect_compiled(&compiled);
            return self.settle_materialized(result);
        }
        let (tx, rx) = sync_channel::<RowBatch>(compiled.workers * 2);
        let ctx = engine.launch_chains(
            &compiled,
            ChannelSink {
                tx,
                shared: Arc::clone(&engine.shared),
                task: engine.task.clone(),
            },
        );
        self.state = RunState::Streaming(StreamingRoot {
            rx,
            ctx,
            compiled,
            seam_delivered: false,
        });
        Ok(())
    }

    /// Resolve a materialized run result into the serving/suspended/poisoned state,
    /// mirroring the single-threaded suspension contract.
    fn settle_materialized(&mut self, result: Result<Vec<Row>, ExecError>) -> Result<(), ExecError> {
        let engine = self.engine.as_mut().expect("engine");
        engine.pump_events();
        let stop = engine.stop.get();
        // A spill abort whose memory-pressure event led the observer to suspend
        // resolves as a suspension: the policy chose to re-plan instead of paying
        // for disk, so completed builds stay extractable and no error surfaces.
        let spill_suspended = stop.is_some() && matches!(result, Err(ExecError::Spill(_)));
        let states = match &result {
            Ok(_) => engine.breaker_states(),
            Err(_) if spill_suspended => engine.breaker_states(),
            Err(_) => Vec::new(),
        };
        self.finalize_counters();
        match result {
            Err(_) if spill_suspended => {
                self.breaker_states = states;
                self.state = RunState::Suspended;
                Err(ExecError::Suspended)
            }
            Err(error) => {
                self.state = RunState::Poisoned;
                Err(error)
            }
            Ok(rows) => {
                self.breaker_states = states;
                match stop {
                    Some(StopMode::Immediate) => {
                        // In-flight output is discarded, exactly like a mid-pull
                        // suspension of the single-threaded root.
                        self.state = RunState::Suspended;
                        Err(ExecError::Suspended)
                    }
                    Some(StopMode::Seam) => {
                        // Deliver the first produced root batch, then suspend: the
                        // clean hand-off for schedulers that must not lose the batch
                        // that was in flight when the decision was made.
                        let mut rows = rows;
                        rows.truncate(self.batch_size);
                        self.state = RunState::Serving {
                            rows,
                            pos: 0,
                            seam: true,
                        };
                        Ok(())
                    }
                    None => {
                        self.stats.stats.exhausted.store(true, Ordering::SeqCst);
                        self.state = RunState::Serving {
                            rows,
                            pos: 0,
                            seam: false,
                        };
                        Ok(())
                    }
                }
            }
        }
    }

    /// Capture the peak-buffer counters and wall time from the engine.
    fn finalize_counters(&mut self) {
        if let Some(engine) = &self.engine {
            self.peak_buffered_rows = engine.shared.buffered_peak.load(Ordering::SeqCst);
            self.peak_buffered_bytes = engine.shared.buffered_bytes_peak.load(Ordering::SeqCst);
        }
        if let Some(started) = self.started {
            self.wall = started.elapsed();
        }
    }

    /// Tear down a live stream: quiesce this query's chains, close the exchange so
    /// blocked senders unblock, and wait (pumping events) until every chain retired.
    /// Only this query's task drains — other queries' tasks on the pool keep running.
    fn shed_stream(&mut self) {
        let state = std::mem::replace(&mut self.state, RunState::Suspended);
        if let RunState::Streaming(stream) = state {
            let engine = self.engine.as_ref().expect("engine");
            engine.shared.quiesce.store(true, Ordering::SeqCst);
            drop(stream.rx);
            stream.ctx.gate.wait_pumping(&|| engine.pump_events());
        }
    }

    fn collect_stream_breakers(&mut self) {
        self.breaker_states = self.engine.as_mut().expect("engine").breaker_states();
    }

    /// One pull from a live streaming root.
    fn stream_next(&mut self) -> Result<Option<RowBatch>, ExecError> {
        loop {
            self.engine.as_ref().expect("engine").pump_events();
            let stop_pending = self.engine.as_ref().expect("engine").stop.get().is_some();
            if let Some(error) = self.engine.as_ref().expect("engine").take_error() {
                // A spill abort is superseded by a suspension decision taken on its
                // memory-pressure event: fall through to the stop-mode handling so
                // the run suspends (with breaker states) instead of erroring.
                if !(stop_pending && matches!(error, ExecError::Spill(_))) {
                    self.shed_stream();
                    self.state = RunState::Poisoned;
                    self.finalize_counters();
                    return Err(error);
                }
            }
            match self.engine.as_ref().expect("engine").stop.get() {
                Some(StopMode::Immediate) => {
                    // Rows still in the exchange are discarded.
                    self.shed_stream();
                    self.collect_stream_breakers();
                    self.state = RunState::Suspended;
                    self.finalize_counters();
                    return Err(ExecError::Suspended);
                }
                Some(StopMode::Seam) => {
                    let RunState::Streaming(stream) = &mut self.state else {
                        unreachable!("stream_next outside Streaming state");
                    };
                    if !stream.seam_delivered {
                        // Chains finish their in-flight batch under a seam quiesce;
                        // deliver it (if any materialized) before suspending.
                        loop {
                            match stream.rx.recv_timeout(Duration::from_micros(100)) {
                                Ok(batch) => {
                                    stream.seam_delivered = true;
                                    return Ok(Some(batch));
                                }
                                Err(RecvTimeoutError::Timeout) => {
                                    if stream.ctx.gate.finished() {
                                        if let Ok(batch) = stream.rx.try_recv() {
                                            stream.seam_delivered = true;
                                            return Ok(Some(batch));
                                        }
                                        break;
                                    }
                                }
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    }
                    self.shed_stream();
                    self.collect_stream_breakers();
                    self.state = RunState::Suspended;
                    self.finalize_counters();
                    return Err(ExecError::Suspended);
                }
                None => {}
            }
            let RunState::Streaming(stream) = &mut self.state else {
                unreachable!("stream_next outside Streaming state");
            };
            match stream.rx.recv_timeout(Duration::from_micros(100)) {
                Ok(batch) => return Ok(Some(batch)),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    if !stream.ctx.gate.finished() {
                        continue;
                    }
                    if let Ok(batch) = stream.rx.try_recv() {
                        return Ok(Some(batch));
                    }
                    // Every chain retired and the exchange is drained. Check for a
                    // late error, then finish: exhaustion marks plus the one-shot
                    // index-NL exact-cardinality reports (which may themselves
                    // suspend — handled at the top of the loop).
                    let compiled = Arc::clone(&stream.compiled);
                    if let Some(error) = self.engine.as_ref().expect("engine").take_error() {
                        // Surface the late error here and now: `take_error`
                        // consumed the slot, so deferring to the top-of-loop check
                        // (which would find nothing while quiesce stays set) would
                        // spin forever and lose the error.
                        self.shed_stream();
                        self.state = RunState::Poisoned;
                        self.finalize_counters();
                        return Err(error);
                    }
                    let engine = self.engine.as_ref().expect("engine");
                    if engine.shared.quiesce.load(Ordering::SeqCst) {
                        // Quiesced without an error: a suspension decision is in
                        // flight; the next pump at the top of the loop dispatches
                        // it and the stop-mode check takes over.
                        continue;
                    }
                    engine.finish_pipeline(&compiled);
                    if engine.stop.get().is_some() {
                        continue;
                    }
                    self.collect_stream_breakers();
                    self.stats.stats.exhausted.store(true, Ordering::SeqCst);
                    self.state = RunState::Done;
                    self.finalize_counters();
                    return Ok(None);
                }
            }
        }
    }

    pub(crate) fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        match &mut self.state {
            RunState::NotStarted => {
                self.run()?;
                self.next_batch()
            }
            RunState::Suspended => Err(ExecError::Suspended),
            RunState::Poisoned => Err(ExecError::InvalidPlan(
                "pipeline poisoned by an earlier execution error".into(),
            )),
            RunState::Done => Ok(None),
            RunState::Streaming(_) => self.stream_next(),
            RunState::Serving { rows, pos, seam } => {
                if *pos >= rows.len() {
                    if *seam {
                        self.state = RunState::Suspended;
                        return Err(ExecError::Suspended);
                    }
                    return Ok(None);
                }
                let end = (*pos + self.batch_size).min(rows.len());
                let batch = rows[*pos..end].to_vec();
                *pos = end;
                Ok(Some(batch))
            }
        }
    }

    pub(crate) fn is_suspended(&self) -> bool {
        matches!(self.state, RunState::Suspended)
    }

    pub(crate) fn take_breaker_states(&mut self) -> Vec<BreakerState> {
        std::mem::take(&mut self.breaker_states)
    }

    pub(crate) fn metrics(&self) -> QueryMetrics {
        let execution_time = if self.wall > Duration::ZERO {
            self.wall
        } else {
            self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
        };
        QueryMetrics {
            root: assemble_metrics(self.plan, &self.stats),
            execution_time,
            engine: "parallel",
            fallback: None,
        }
    }

    pub(crate) fn peak_buffered_rows(&self) -> u64 {
        self.peak_buffered_rows
    }

    pub(crate) fn peak_buffered_bytes(&self) -> u64 {
        self.peak_buffered_bytes
    }

    /// The plan this pipeline executes (the facade restarts it on the
    /// single-threaded spill engine after a memory-budget abort).
    pub(crate) fn plan(&self) -> &'p PhysicalPlan {
        self.plan
    }

    /// Whether the run aborted because a breaker sink's memory reservation was
    /// denied — the signal for the facade to restart on the spill engine.
    pub(crate) fn needs_spill_fallback(&self) -> bool {
        self.engine
            .as_ref()
            .map(|engine| engine.shared.spill_needed.load(Ordering::SeqCst))
            .unwrap_or(false)
    }
}

impl Drop for ParallelPipeline<'_> {
    fn drop(&mut self) {
        // A pipeline dropped mid-stream abandons its chains gracefully: quiesce the
        // query and close the exchange; the pool drains the remaining jobs (each
        // observes the quiesce flag and retires) without blocking this thread.
        if let (RunState::Streaming(_), Some(engine)) = (&self.state, &self.engine) {
            engine.shared.quiesce.store(true, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{
        ExecutionObserver, Executor, ObserverDecision, ObserverHandle, DEFAULT_BATCH_SIZE,
    };
    use reopt_catalog::Catalog;
    use reopt_planner::{CardinalityOverrides, Optimizer, OptimizerConfig};
    use reopt_sql::parse_sql;
    use reopt_storage::{Column, DataType, IndexKind};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A movie database big enough that default-batch-size pipelines split into
    /// several morsels (title: 12k rows, movie_keyword: 24k rows).
    fn build_env() -> (Storage, Catalog) {
        let mut storage = Storage::new();

        let mut title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("production_year", DataType::Int),
                Column::new("rating", DataType::Float),
            ]),
        );
        for i in 0..12_000i64 {
            title
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("movie {i:05}")),
                    Value::Int(1970 + (i % 50)),
                    Value::Float((i % 100) as f64 / 10.0),
                ]))
                .unwrap();
        }
        title.create_index("title_pkey", "id", IndexKind::BTree).unwrap();

        let mut keyword = Table::new(
            "keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ]),
        );
        for i in 0..40i64 {
            keyword
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("kw{i}")),
                ]))
                .unwrap();
        }

        let mut movie_keyword = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("movie_id", DataType::Int),
                Column::not_null("keyword_id", DataType::Int),
            ]),
        );
        for i in 0..12_000i64 {
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int(i % 40)]))
                .unwrap();
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int((i + 1) % 40)]))
                .unwrap();
        }
        movie_keyword
            .create_index("mk_movie", "movie_id", IndexKind::Hash)
            .unwrap();
        movie_keyword
            .create_index("mk_keyword", "keyword_id", IndexKind::Hash)
            .unwrap();

        storage.create_table(title).unwrap();
        storage.create_table(keyword).unwrap();
        storage.create_table(movie_keyword).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        (storage, catalog)
    }

    fn plan_with(
        sql: &str,
        storage: &Storage,
        catalog: &Catalog,
        config: OptimizerConfig,
    ) -> reopt_planner::PlannedQuery {
        let statement = parse_sql(sql).unwrap();
        Optimizer::new(config)
            .plan_select(
                statement.query().unwrap(),
                storage,
                catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap()
    }

    fn plan(sql: &str, storage: &Storage, catalog: &Catalog) -> reopt_planner::PlannedQuery {
        plan_with(sql, storage, catalog, OptimizerConfig::default())
    }

    fn sorted_rows(rows: &[Row]) -> Vec<String> {
        let mut rendered: Vec<String> = rows.iter().map(|row| format!("{row}")).collect();
        rendered.sort();
        rendered
    }

    /// Queries covering scans, filters, projections, hash and index-NL joins, grouped
    /// and single-row aggregation, and sorting.
    const SWEEP_QUERIES: &[&str] = &[
        "SELECT count(*) AS c FROM title AS t WHERE t.production_year >= 2010",
        "SELECT t.id AS id, t.title AS name FROM title AS t WHERE t.id < 50",
        "SELECT min(t.title) AS m, count(*) AS c
         FROM title AS t, movie_keyword AS mk, keyword AS k
         WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw3'",
        "SELECT t.production_year, count(*) AS movies
         FROM title AS t, movie_keyword AS mk
         WHERE t.id = mk.movie_id AND t.production_year >= 2015
         GROUP BY t.production_year",
        "SELECT t.production_year, count(*) AS movies
         FROM title AS t
         GROUP BY t.production_year
         ORDER BY movies DESC, t.production_year ASC",
        "SELECT sum(t.id) AS s, avg(t.id) AS a FROM title AS t WHERE t.id < 1000",
    ];

    #[test]
    fn parallel_matches_single_threaded_on_every_operator_shape() {
        let (storage, catalog) = build_env();
        for sql in SWEEP_QUERIES {
            let planned = plan(sql, &storage, &catalog);
            let reference = Executor::new(&storage)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            for threads in [2usize, 4, 8] {
                let parallel = Executor::new(&storage)
                    .with_threads(threads)
                    .execute(&planned.plan)
                    .unwrap();
                assert_eq!(
                    sorted_rows(&parallel.rows),
                    sorted_rows(&reference.rows),
                    "threads={threads} changed the result of {sql}"
                );
            }
        }
    }

    #[test]
    fn batch_size_one_parallel_matches_default() {
        let (storage, catalog) = build_env();
        let sql = "SELECT min(t.title) AS m, count(*) AS c
                   FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id AND t.production_year >= 2018";
        let planned = plan(sql, &storage, &catalog);
        let reference = Executor::new(&storage)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap();
        let tiny = Executor::with_batch_size(&storage, 1)
            .with_threads(4)
            .execute(&planned.plan)
            .unwrap();
        assert_eq!(sorted_rows(&tiny.rows), sorted_rows(&reference.rows));
    }

    #[test]
    fn empty_inputs_flow_through_parallel_pipelines() {
        let (storage, catalog) = build_env();
        // No title survives the predicate: scans, joins and aggregates all see empty
        // inputs, across every batch size.
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id AND t.production_year > 3000";
        let planned = plan(sql, &storage, &catalog);
        for batch_size in [1usize, 7, DEFAULT_BATCH_SIZE] {
            let result = Executor::with_batch_size(&storage, batch_size)
                .with_threads(4)
                .execute(&planned.plan)
                .unwrap();
            assert_eq!(result.rows.len(), 1, "batch {batch_size}");
            assert_eq!(result.rows[0].value(0), &Value::Int(0), "batch {batch_size}");
        }
    }

    #[test]
    fn more_threads_than_morsels_degrades_gracefully() {
        let (storage, catalog) = build_env();
        // keyword has 40 rows: at the default batch size that is a single morsel, so
        // the pipeline runs inline no matter how many threads are configured; with
        // batch size 2 (8-row morsels) it splits into 5 morsels, capping the pool at
        // 5 workers. Both must produce the exact table.
        let sql = "SELECT count(*) AS c FROM keyword AS k";
        let planned = plan(sql, &storage, &catalog);
        for batch_size in [2usize, DEFAULT_BATCH_SIZE] {
            let result = Executor::with_batch_size(&storage, batch_size)
                .with_threads(64)
                .execute(&planned.plan)
                .unwrap();
            assert_eq!(result.rows[0].value(0), &Value::Int(40), "batch {batch_size}");
        }
    }

    #[test]
    fn parallel_metrics_aggregate_across_workers() {
        let (storage, catalog) = build_env();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id";
        let planned = plan(sql, &storage, &catalog);
        let executor = Executor::with_batch_size(&storage, 256).with_threads(4);
        let mut pipeline = executor.open(&planned.plan).unwrap();
        let mut rows = 0usize;
        while let Some(batch) = pipeline.next_batch().unwrap() {
            assert!(batch.len() <= 256);
            rows += batch.len();
        }
        assert_eq!(rows, 1);
        let metrics = pipeline.metrics();
        let joins = metrics.root.joins_bottom_up();
        assert_eq!(joins[0].actual_rows, 24_000, "worker counts must sum exactly");
        assert!(joins[0].batches >= 24_000 / 256, "join output is batched");
        metrics
            .root
            .walk(&mut |node| assert!(node.metrics.exhausted, "{}", node.metrics.label));
        assert!(metrics.execution_time > Duration::ZERO);
        // Only breaker state is buffered (a build side or index lookaside), never the
        // 24k-row join output.
        let peak = pipeline.peak_buffered_rows();
        assert!(peak > 0 && peak < 24_000, "peak buffered rows {peak}");
    }

    /// Suspends on the first event that satisfies `trigger`, recording every event.
    struct SuspendWhen {
        events: Vec<ExecEvent>,
        trigger: fn(&ExecEvent) -> bool,
        decision: crate::exec::ObserverDecision,
    }

    impl ExecutionObserver for SuspendWhen {
        fn on_event(&mut self, event: &ExecEvent) -> ObserverDecision {
            self.events.push(event.clone());
            if (self.trigger)(event) {
                self.decision
            } else {
                ObserverDecision::Continue
            }
        }
    }

    /// Hash-joins-only configuration so the plan deterministically has build sides.
    fn hash_only() -> OptimizerConfig {
        OptimizerConfig {
            enable_index_scans: false,
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn suspension_races_breaker_completion_without_losing_state() {
        let (storage, catalog) = build_env();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw3'";
        let planned = plan_with(sql, &storage, &catalog, hash_only());
        // Suspend on the first *progress* event of the probe spine: the decision
        // lands while the worker pool is mid-pipeline, after at least one build
        // completed — the parallel engine must quiesce every worker and still
        // surrender the completed builds.
        let observer = Rc::new(RefCell::new(SuspendWhen {
            events: Vec::new(),
            trigger: |event| matches!(event, ExecEvent::Progress(_)),
            decision: ObserverDecision::Suspend,
        }));
        let executor = Executor::with_batch_size(&storage, 64)
            .with_threads(4)
            .with_progress_interval(1);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();
        let err = pipeline.next_batch().unwrap_err();
        assert_eq!(err, ExecError::Suspended);
        assert!(pipeline.is_suspended());
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);

        let states = pipeline.take_breaker_states();
        assert!(!states.is_empty(), "completed builds survive the race");
        for state in &states {
            assert_eq!(state.kind, BreakerKind::HashBuild);
        }
        // Events stopped at the suspension decision: exactly one progress event was
        // delivered, and every breaker event preceding it completed innermost-first.
        let events = &observer.borrow().events;
        let progress_count = events
            .iter()
            .filter(|e| matches!(e, ExecEvent::Progress(_)))
            .count();
        assert_eq!(progress_count, 1, "no events are delivered after suspension");
        let breaker_sizes: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                ExecEvent::BreakerComplete(b) => Some(b.rel_set.len()),
                _ => None,
            })
            .collect();
        assert!(!breaker_sizes.is_empty());
        assert!(
            breaker_sizes.windows(2).all(|w| w[0] <= w[1]),
            "breaker completions funnel innermost-first: {breaker_sizes:?}"
        );
    }

    #[test]
    fn suspending_on_a_breaker_keeps_that_build_extractable() {
        let (storage, catalog) = build_env();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw3'";
        let planned = plan_with(sql, &storage, &catalog, hash_only());
        let observer = Rc::new(RefCell::new(SuspendWhen {
            events: Vec::new(),
            trigger: |event| match event {
                ExecEvent::BreakerComplete(b) => b.rel_set.len() >= 2,
                _ => false,
            },
            decision: ObserverDecision::Suspend,
        }));
        let executor = Executor::new(&storage).with_threads(4);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);
        let states = pipeline.take_breaker_states();
        let build = states
            .iter()
            .find(|s| s.rel_set.len() == 2)
            .expect("two-relation build state");
        // kw3 is attached to movies with id % 40 in {3} plus (id+1) % 40 == 3:
        // 2 * 12000/40 = 600 rows, built in parallel partitions and reassembled.
        assert_eq!(build.rows.len(), 600);
        assert_eq!(build.schema.len(), 4, "mk and k columns, original qualifiers");
        assert!(build.schema.index_of(Some("mk"), "movie_id").is_ok());
    }

    #[test]
    fn root_seam_suspension_delivers_one_batch_then_suspends() {
        let (storage, catalog) = build_env();
        let sql = "SELECT mk.movie_id AS m FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id";
        let planned = plan_with(sql, &storage, &catalog, hash_only());
        let observer = Rc::new(RefCell::new(SuspendWhen {
            events: Vec::new(),
            trigger: |event| matches!(event, ExecEvent::Progress(_)),
            decision: ObserverDecision::SuspendAtRootSeam,
        }));
        let executor = Executor::with_batch_size(&storage, 32)
            .with_threads(4)
            .with_progress_interval(1);
        let mut pipeline = executor
            .open_observed(&planned.plan, Some(observer.clone() as ObserverHandle))
            .unwrap();
        let first = pipeline.next_batch().unwrap().expect("in-flight batch delivered");
        assert!(!first.is_empty() && first.len() <= 32);
        assert!(!pipeline.is_suspended(), "suspension waits for the seam");
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);
        assert!(pipeline.is_suspended());
    }

    #[test]
    fn every_plan_shape_is_parallel_supported() {
        let (storage, catalog) = build_env();
        // The former denylist entries — LIMIT, float SUM/AVG, merge joins, plain NL
        // joins — all have parallel implementations now.
        for sql in [
            "SELECT t.id AS id FROM title AS t LIMIT 3",
            "SELECT avg(t.rating) AS a FROM title AS t",
            "SELECT sum(t.id) AS s, min(t.title) AS m FROM title AS t",
        ] {
            let planned = plan(sql, &storage, &catalog);
            assert!(plan_supported(&planned.plan), "{sql}");
            assert_eq!(fallback_reason(&planned.plan), None, "{sql}");
        }
        let result = Executor::new(&storage)
            .with_threads(4)
            .execute(&plan("SELECT t.id AS id FROM title AS t LIMIT 3", &storage, &catalog).plan)
            .unwrap();
        assert_eq!(result.rows.len(), 3);
    }

    /// Render float cells as their exact bit patterns (other values as display text),
    /// so equality means *bit* identity, not approximate equality.
    fn float_bits(rows: &[Row]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|row| {
                row.values()
                    .iter()
                    .map(|value| match value {
                        Value::Float(f) => format!("bits:{:016x}", f.to_bits()),
                        other => format!("{other}"),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn float_aggregates_bit_identical_across_threads_and_runs() {
        let (storage, catalog) = build_env();
        for sql in [
            "SELECT sum(t.rating) AS s, avg(t.rating) AS a FROM title AS t",
            "SELECT t.production_year, sum(t.rating) AS s, avg(t.rating) AS a
             FROM title AS t GROUP BY t.production_year",
        ] {
            let planned = plan(sql, &storage, &catalog);
            assert!(plan_supported(&planned.plan), "{sql}");
            let reference = Executor::new(&storage)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            let want = float_bits(&reference.rows);
            for threads in [2usize, 4] {
                for run in 0..3 {
                    let result = Executor::new(&storage)
                        .with_threads(threads)
                        .execute(&planned.plan)
                        .unwrap();
                    // Unsorted comparison: group emission order (first-seen in scan
                    // order) must also be deterministic.
                    assert_eq!(
                        float_bits(&result.rows),
                        want,
                        "threads={threads} run={run} {sql}"
                    );
                }
            }
        }
    }

    #[test]
    fn limit_rows_identical_to_single_threaded() {
        let (storage, catalog) = build_env();
        for sql in [
            // Order-insensitive shapes: parallel truncation must still pick the
            // same (scan-order) prefix as the single-threaded engine.
            "SELECT t.id AS id FROM title AS t LIMIT 10",
            "SELECT t.id AS id, t.title AS name FROM title AS t
             WHERE t.production_year >= 1990 LIMIT 257",
            // ORDER BY ... LIMIT: plan-defined order, truncated after the sort.
            "SELECT t.id AS id FROM title AS t ORDER BY id DESC LIMIT 7",
            "SELECT t.production_year, count(*) AS c FROM title AS t
             GROUP BY t.production_year ORDER BY c DESC, t.production_year ASC LIMIT 5",
            // LIMIT larger than the result: the child drains completely.
            "SELECT t.id AS id FROM title AS t WHERE t.id < 20 LIMIT 1000",
        ] {
            let planned = plan(sql, &storage, &catalog);
            assert!(plan_supported(&planned.plan), "{sql}");
            let reference = Executor::new(&storage)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            let want: Vec<String> = reference.rows.iter().map(|r| format!("{r}")).collect();
            for threads in [2usize, 4] {
                for run in 0..2 {
                    let parallel = Executor::new(&storage)
                        .with_threads(threads)
                        .execute(&planned.plan)
                        .unwrap();
                    let got: Vec<String> = parallel.rows.iter().map(|r| format!("{r}")).collect();
                    assert_eq!(got, want, "threads={threads} run={run} {sql}");
                }
            }
        }
    }

    /// Merge-joins-only configuration (hash and index-NL joins disabled).
    fn merge_only() -> OptimizerConfig {
        OptimizerConfig {
            enable_index_scans: false,
            enable_hash_joins: false,
            enable_index_nl_joins: false,
            ..OptimizerConfig::default()
        }
    }

    fn has_kind(plan: &PhysicalPlan, f: &dyn Fn(&PlanKind) -> bool) -> bool {
        f(&plan.kind) || plan.children.iter().any(|child| has_kind(child, f))
    }

    #[test]
    fn merge_join_parallel_matches_single_threaded() {
        let (storage, catalog) = build_env();
        for sql in [
            "SELECT t.id AS id, mk.keyword_id AS kid
             FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND mk.keyword_id < 5",
            "SELECT count(*) AS c, min(t.title) AS m
             FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year >= 2010",
        ] {
            let planned = plan_with(sql, &storage, &catalog, merge_only());
            assert!(
                has_kind(&planned.plan, &|k| matches!(k, PlanKind::MergeJoin { .. })),
                "expected a merge join: {sql}"
            );
            assert!(plan_supported(&planned.plan), "{sql}");
            let reference = Executor::new(&storage)
                .with_threads(1)
                .execute(&planned.plan)
                .unwrap();
            for threads in [2usize, 4] {
                let parallel = Executor::new(&storage)
                    .with_threads(threads)
                    .execute(&planned.plan)
                    .unwrap();
                assert_eq!(
                    sorted_rows(&parallel.rows),
                    sorted_rows(&reference.rows),
                    "threads={threads} {sql}"
                );
            }
        }
    }

    /// Plain-NL-joins-only configuration (every other join algorithm disabled).
    fn nl_only() -> OptimizerConfig {
        OptimizerConfig {
            enable_index_scans: false,
            enable_hash_joins: false,
            enable_merge_joins: false,
            enable_index_nl_joins: false,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn nl_join_parallel_matches_single_threaded() {
        let (storage, catalog) = build_env();
        let sql = "SELECT mk.movie_id AS mid, k.keyword AS kw
                   FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND mk.movie_id < 50";
        let planned = plan_with(sql, &storage, &catalog, nl_only());
        assert_eq!(fallback_reason(&planned.plan), None);
        assert!(
            has_kind(&planned.plan, &|k| matches!(k, PlanKind::NestedLoopJoin { .. })),
            "expected a nested-loop join"
        );
        assert!(plan_supported(&planned.plan));
        let reference = Executor::new(&storage)
            .with_threads(1)
            .execute(&planned.plan)
            .unwrap();
        assert!(!reference.rows.is_empty());
        for threads in [2usize, 4] {
            let parallel = Executor::new(&storage)
                .with_threads(threads)
                .execute(&planned.plan)
                .unwrap();
            assert_eq!(
                sorted_rows(&parallel.rows),
                sorted_rows(&reference.rows),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn suspension_on_an_inner_breaker_skips_outer_builds() {
        let (storage, catalog) = build_env();
        // Two relations each joining directly to `t`: the plan is a left-deep spine
        // with both hash builds registered on it (no derivable mk1-mk2 join exists,
        // so a bushy shape is off the table).
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk1, movie_keyword AS mk2
                   WHERE t.id = mk1.movie_id AND t.id = mk2.movie_id";
        let planned = plan_with(sql, &storage, &catalog, hash_only());
        // Baseline: an unsuspended run starts every registered build.
        let mut baseline = ParallelPipeline::new(
            &planned.plan,
            &storage,
            DEFAULT_BATCH_SIZE,
            4,
            0,
            true,
            crate::exec::DEFAULT_PRIORITY,
            MemoryGovernor::unlimited(),
            None,
        );
        while baseline.next_batch().unwrap().is_some() {}
        let engine = baseline.engine.as_ref().expect("engine");
        let planned_builds = engine.builds_planned.get();
        assert_eq!(planned_builds, engine.builds_started.get());
        assert!(planned_builds >= 2, "both builds ride the probe spine");

        // Suspending on the first (innermost) breaker completion must skip the
        // outer build entirely — the lazy scheduler never starts it.
        let observer = Rc::new(RefCell::new(SuspendWhen {
            events: Vec::new(),
            trigger: |event| matches!(event, ExecEvent::BreakerComplete(_)),
            decision: ObserverDecision::Suspend,
        }));
        let mut pipeline = ParallelPipeline::new(
            &planned.plan,
            &storage,
            DEFAULT_BATCH_SIZE,
            4,
            0,
            true,
            crate::exec::DEFAULT_PRIORITY,
            MemoryGovernor::unlimited(),
            Some(observer as ObserverHandle),
        );
        assert_eq!(pipeline.next_batch().unwrap_err(), ExecError::Suspended);
        let engine = pipeline.engine.as_ref().expect("engine");
        assert_eq!(engine.builds_planned.get(), planned_builds);
        assert!(
            engine.builds_started.get() < planned_builds,
            "suspension must schedule fewer builds than the eager baseline ({} of {})",
            engine.builds_started.get(),
            planned_builds
        );
    }

    #[test]
    fn errors_inside_workers_poison_the_pipeline() {
        let (storage, catalog) = build_env();
        let planned = plan("SELECT count(*) AS c FROM keyword AS k", &storage, &catalog);
        let mut emptied = storage.clone();
        emptied.drop_table("keyword").unwrap();
        let executor = Executor::new(&emptied).with_threads(4);
        let mut pipeline = executor.open(&planned.plan).unwrap();
        let err = pipeline.next_batch().unwrap_err();
        assert!(matches!(err, ExecError::TableNotFound(_)));
        // Poisoned thereafter.
        assert!(pipeline.next_batch().is_err());
    }

    #[test]
    fn late_worker_error_surfaces_instead_of_hanging_the_stream() {
        let (storage, catalog) = build_env();
        // The filter divides by zero only on the very last title row (id 11999),
        // so the error lands while the stream is already draining: chains are
        // about to retire and earlier batches were delivered. The terminal branch
        // of `stream_next` must surface the error (then poison the pipeline)
        // rather than consume it and spin on the quiesce flag forever.
        let sql = "SELECT t.id AS id FROM title AS t WHERE 1 / (11999 - t.id) >= 0";
        let planned = plan(sql, &storage, &catalog);
        let executor = Executor::with_batch_size(&storage, 64).with_threads(4);
        let mut pipeline = executor.open(&planned.plan).unwrap();
        let error = loop {
            match pipeline.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream ended without surfacing the worker error"),
                Err(error) => break error,
            }
        };
        assert!(matches!(error, ExecError::Eval(_)), "unexpected error: {error}");
        assert!(pipeline.next_batch().is_err(), "poisoned thereafter");
    }
}

