//! Per-operator execution metrics (the EXPLAIN ANALYZE view of a run).

use reopt_planner::RelSet;
use std::time::Duration;

/// Metrics of a single executed operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorMetrics {
    /// The operator's display label (mirrors the plan node's label).
    pub label: String,
    /// The base relations the operator covers.
    pub rel_set: RelSet,
    /// Whether this operator is a join.
    pub is_join: bool,
    /// Estimated output cardinality (from the optimizer).
    pub estimated_rows: f64,
    /// Actual output cardinality: the rows the operator *produced*. Under early
    /// termination (a LIMIT upstream) this can be fewer than the operator's full
    /// output would have been; check [`OperatorMetrics::exhausted`] before treating
    /// this as a true cardinality.
    pub actual_rows: u64,
    /// Number of output batches the operator produced.
    pub batches: u64,
    /// Whether the operator **and its entire subtree** ran to completion. Operators
    /// terminated early — typically by a LIMIT upstream — report `false`, as does a
    /// Limit node that hit its count without draining its input (its `actual_rows`
    /// is a truncated count for its relation set). Only exhausted counts are true
    /// cardinalities; re-optimization detection must not consume anything else.
    pub exhausted: bool,
    /// Wall-clock time spent in this operator, excluding its children.
    pub elapsed: Duration,
    /// For scans: how the operator read its input — `"dictionary"` / `"native"`
    /// (vectorized over column chunks, with/without dictionary-coded columns),
    /// `"fallback-row"` (columnar execution on, but the predicate shape has no
    /// vectorized kernel), or `"row"` (columnar execution off, or an index scan
    /// materializing rows by id). `None` for non-scan operators.
    pub encoding: Option<&'static str>,
    /// Bytes this operator wrote to spill files (0 unless a memory budget forced
    /// the breaker out of core).
    pub spilled_bytes: u64,
    /// Number of spill partitions / runs the operator wrote (0 when it stayed in
    /// memory).
    pub spill_partitions: u64,
}

impl OperatorMetrics {
    /// The Q-error of this operator: `max(est/actual, actual/est)` with both sides
    /// clamped to at least one row, as in Moerkotte et al. (reference \[36\] of the paper).
    pub fn q_error(&self) -> f64 {
        let estimated = self.estimated_rows.max(1.0);
        let actual = (self.actual_rows as f64).max(1.0);
        (estimated / actual).max(actual / estimated)
    }

    /// Whether the estimate was an underestimate.
    pub fn is_underestimate(&self) -> bool {
        self.estimated_rows < self.actual_rows as f64
    }
}

/// The metrics tree of one executed plan (same shape as the plan tree).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsNode {
    /// This operator's metrics.
    pub metrics: OperatorMetrics,
    /// Children metrics, in the same order as the plan's children.
    pub children: Vec<MetricsNode>,
}

impl MetricsNode {
    /// Depth-first pre-order traversal.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a MetricsNode)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }

    /// All join operators in the tree, ordered bottom-up (smallest relation sets first,
    /// ties broken by tree depth — deepest first). This is the order in which the
    /// re-optimization controller looks for "the lowest join operator in the query plan"
    /// whose estimate is off (Section V of the paper).
    pub fn joins_bottom_up(&self) -> Vec<&OperatorMetrics> {
        let mut joins: Vec<(usize, &OperatorMetrics)> = Vec::new();
        self.collect_joins(0, &mut joins);
        joins.sort_by(|a, b| {
            a.1.rel_set
                .len()
                .cmp(&b.1.rel_set.len())
                .then(b.0.cmp(&a.0))
        });
        joins.into_iter().map(|(_, m)| m).collect()
    }

    fn collect_joins<'a>(&'a self, depth: usize, out: &mut Vec<(usize, &'a OperatorMetrics)>) {
        if self.metrics.is_join {
            out.push((depth, &self.metrics));
        }
        for child in &self.children {
            child.collect_joins(depth + 1, out);
        }
    }

    /// The lowest operator whose Q-error exceeds `threshold`, if any: smallest
    /// relation set first, ties broken by depth (deepest first) then visit order.
    /// Only *exhausted* operators over a non-empty relation set qualify — truncated
    /// counts are never true cardinalities. This is the detection primitive shared by
    /// the restart and selective-improvement re-optimization policies ("the lowest
    /// operator in the plan whose estimate is off", Sections IV-E and V of the paper).
    pub fn lowest_mis_estimated(&self, threshold: f64) -> Option<&MetricsNode> {
        let mut candidates: Vec<(usize, usize, &MetricsNode)> = Vec::new();
        self.collect_with_depth(0, &mut candidates);
        candidates
            .into_iter()
            .filter(|(_, _, node)| {
                node.metrics.exhausted
                    && !node.metrics.rel_set.is_empty()
                    && node.metrics.q_error() > threshold
            })
            .min_by(|a, b| {
                a.2.metrics
                    .rel_set
                    .len()
                    .cmp(&b.2.metrics.rel_set.len())
                    .then(b.1.cmp(&a.1))
                    .then(a.0.cmp(&b.0))
            })
            .map(|(_, _, node)| node)
    }

    fn collect_with_depth<'a>(
        &'a self,
        depth: usize,
        out: &mut Vec<(usize, usize, &'a MetricsNode)>,
    ) {
        out.push((out.len(), depth, self));
        for child in &self.children {
            child.collect_with_depth(depth + 1, out);
        }
    }

    /// Total `(spilled bytes, spill partitions)` across all operators — `(0, 0)`
    /// unless a finite memory budget forced some breaker out of core.
    pub fn total_spilled(&self) -> (u64, u64) {
        let mut bytes = 0;
        let mut partitions = 0;
        self.walk(&mut |node| {
            bytes += node.metrics.spilled_bytes;
            partitions += node.metrics.spill_partitions;
        });
        (bytes, partitions)
    }

    /// Total wall-clock time across all operators.
    pub fn total_elapsed(&self) -> Duration {
        let mut total = Duration::ZERO;
        self.walk(&mut |node| total += node.metrics.elapsed);
        total
    }

    /// Render the metrics tree as EXPLAIN ANALYZE style text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let arrow = if depth == 0 { "" } else { "-> " };
        let partial = if self.metrics.exhausted { "" } else { " partial" };
        let encoding = self
            .metrics
            .encoding
            .map(|e| format!(" encoding={e}"))
            .unwrap_or_default();
        // Spill accounting renders only when the operator actually spilled, so
        // in-memory runs (the default) are byte-identical to builds without the
        // out-of-core subsystem.
        let spilled = if self.metrics.spilled_bytes > 0 || self.metrics.spill_partitions > 0 {
            format!(
                " spilled: {} bytes in {} partitions",
                self.metrics.spilled_bytes, self.metrics.spill_partitions
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{indent}{arrow}{}  (estimated rows={:.0} actual rows={}{partial} batches={} q-error={:.2}{encoding}{spilled} time={:.3}ms)\n",
            self.metrics.label,
            self.metrics.estimated_rows,
            self.metrics.actual_rows,
            self.metrics.batches,
            self.metrics.q_error(),
            self.metrics.elapsed.as_secs_f64() * 1e3,
        ));
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

/// The result of running one statement: output cardinality plus the metrics tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetrics {
    /// The metrics tree.
    pub root: MetricsNode,
    /// Total execution wall-clock time (sum over operators).
    pub execution_time: Duration,
    /// Which engine produced the result: `"parallel"` (the morsel-driven engine,
    /// `threads > 1`) or `"single-thread"` (the pull-based operator tree).
    pub engine: &'static str,
    /// Why a `threads > 1` session ran (or finished) on the single-threaded engine
    /// anyway: an unsupported plan shape, or a mid-run memory-budget abort that
    /// restarted the query on the spill-capable engine. `None` when the engine
    /// matches the session configuration — a silent fallback is an operator-visible
    /// regression, not business as usual.
    pub fallback: Option<&'static str>,
}

impl QueryMetrics {
    /// The `engine=...` suffix EXPLAIN ANALYZE and `ReoptReport` append to a run:
    /// `"engine=parallel"`, or `"engine=single-thread (fallback: <reason>)"` when a
    /// multi-threaded session degraded.
    pub fn engine_label(&self) -> String {
        match self.fallback {
            Some(reason) => format!("engine={} (fallback: {reason})", self.engine),
            None => format!("engine={}", self.engine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(label: &str, rels: &[usize], is_join: bool, est: f64, actual: u64) -> OperatorMetrics {
        OperatorMetrics {
            label: label.into(),
            rel_set: RelSet::from_indexes(rels.iter().copied()),
            is_join,
            estimated_rows: est,
            actual_rows: actual,
            batches: 1,
            exhausted: true,
            elapsed: Duration::from_millis(1),
            encoding: None,
            spilled_bytes: 0,
            spill_partitions: 0,
        }
    }

    #[test]
    fn partial_operators_are_flagged_in_render() {
        let mut m = metrics("Hash Join", &[0, 1], true, 10.0, 5);
        m.exhausted = false;
        let tree = MetricsNode {
            metrics: m,
            children: vec![],
        };
        let rendered = tree.render();
        assert!(rendered.contains("actual rows=5 partial"), "{rendered}");
    }

    #[test]
    fn spill_accounting_renders_only_when_nonzero() {
        let clean = MetricsNode {
            metrics: metrics("Hash Join", &[0, 1], true, 10.0, 10),
            children: vec![],
        };
        assert!(!clean.render().contains("spilled:"));
        let mut m = metrics("Hash Join", &[0, 1], true, 10.0, 10);
        m.spilled_bytes = 4096;
        m.spill_partitions = 8;
        let spilled = MetricsNode {
            metrics: m,
            children: vec![],
        };
        assert!(
            spilled.render().contains("spilled: 4096 bytes in 8 partitions"),
            "{}",
            spilled.render()
        );
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(metrics("x", &[0], false, 10.0, 1000).q_error(), 100.0);
        assert_eq!(metrics("x", &[0], false, 1000.0, 10).q_error(), 100.0);
        assert_eq!(metrics("x", &[0], false, 0.0, 0).q_error(), 1.0);
        assert!(metrics("x", &[0], false, 10.0, 1000).is_underestimate());
        assert!(!metrics("x", &[0], false, 1000.0, 10).is_underestimate());
    }

    #[test]
    fn joins_bottom_up_orders_by_relset_size() {
        let tree = MetricsNode {
            metrics: metrics("top join", &[0, 1, 2], true, 10.0, 10),
            children: vec![
                MetricsNode {
                    metrics: metrics("lower join", &[0, 1], true, 5.0, 500),
                    children: vec![
                        MetricsNode {
                            metrics: metrics("scan a", &[0], false, 100.0, 100),
                            children: vec![],
                        },
                        MetricsNode {
                            metrics: metrics("scan b", &[1], false, 100.0, 100),
                            children: vec![],
                        },
                    ],
                },
                MetricsNode {
                    metrics: metrics("scan c", &[2], false, 100.0, 100),
                    children: vec![],
                },
            ],
        };
        let joins = tree.joins_bottom_up();
        assert_eq!(joins.len(), 2);
        assert_eq!(joins[0].label, "lower join");
        assert_eq!(joins[1].label, "top join");
        assert_eq!(tree.total_elapsed(), Duration::from_millis(5));
        let rendered = tree.render();
        assert!(rendered.contains("actual rows=500"));
        assert!(rendered.contains("q-error=100.00"));
    }
}
