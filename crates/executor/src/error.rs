//! Executor errors.

use reopt_expr::EvalError;
use reopt_storage::StorageError;
use std::fmt;

/// Errors raised while executing a physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A table referenced by the plan does not exist (e.g. dropped between planning and
    /// execution).
    TableNotFound(String),
    /// A column could not be resolved against an operator's input schema.
    BindError(String),
    /// An expression failed to evaluate.
    Eval(String),
    /// The plan shape was invalid (wrong number of children, missing index, ...).
    InvalidPlan(String),
    /// Execution was suspended by an [`ExecutionObserver`](crate::exec::ExecutionObserver)
    /// — at a pipeline-breaker boundary, a streaming progress report, or the root
    /// batch seam — so a re-optimizer can take over. Not a failure: the pipeline's
    /// completed breaker state remains extractable via
    /// [`Pipeline::take_breaker_states`](crate::exec::Pipeline::take_breaker_states).
    Suspended,
    /// Out-of-core execution failed: a spill-file I/O error, or a grace-hash
    /// partition still exceeded the memory budget at the recursion depth cap (all
    /// rows sharing one join key, so repartitioning cannot help).
    Spill(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::TableNotFound(name) => write!(f, "table '{name}' not found at execution"),
            ExecError::BindError(detail) => write!(f, "binding error: {detail}"),
            ExecError::Eval(detail) => write!(f, "evaluation error: {detail}"),
            ExecError::InvalidPlan(detail) => write!(f, "invalid plan: {detail}"),
            ExecError::Suspended => {
                write!(f, "execution suspended at a pipeline-breaker boundary for re-optimization")
            }
            ExecError::Spill(detail) => write!(f, "spill error: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(err: EvalError) -> Self {
        ExecError::Eval(err.to_string())
    }
}

impl From<StorageError> for ExecError {
    fn from(err: StorageError) -> Self {
        match err {
            StorageError::TableNotFound(name) => ExecError::TableNotFound(name),
            other => ExecError::BindError(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = EvalError::DivisionByZero.into();
        assert!(matches!(e, ExecError::Eval(_)));
        let e: ExecError = StorageError::TableNotFound("t".into()).into();
        assert_eq!(e, ExecError::TableNotFound("t".into()));
        let e: ExecError = StorageError::ColumnNotFound("c".into()).into();
        assert!(matches!(e, ExecError::BindError(_)));
        assert!(ExecError::InvalidPlan("x".into()).to_string().contains("x"));
    }
}
