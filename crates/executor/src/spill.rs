//! The process-wide memory governor for out-of-core execution.
//!
//! Breaker sinks (hash-join builds, sort and aggregation buffers) reserve bytes
//! against one shared [`MemoryGovernor`] as they buffer. The governor is a plain
//! byte budget, shared across every session of a database the same way the
//! admission semaphore is: `Database::set_mem_budget` mutates it in place, so
//! sessions connected before or after the change all reserve against the same
//! counters.
//!
//! When a reservation is denied, the sink does **not** immediately spill: it
//! first surfaces [`ExecEvent::MemoryPressure`](crate::ExecEvent) through the
//! observer stream, giving a re-optimization policy the chance to suspend and
//! re-plan the remainder of the query instead of paying disk I/O. Only when the
//! policy declines does the sink switch to its out-of-core strategy (grace-hash
//! partitioning or external merge sort) and release its in-memory reservation.
//!
//! The default budget is **unlimited** (`REOPT_MEM_BUDGET` unset or `0`), in
//! which case every reservation succeeds without touching shared state beyond a
//! single atomic load — the spill path stays cold and execution is byte-for-byte
//! identical to a build without this module.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable setting the initial byte budget. Unset or `0` means
/// unlimited.
pub const MEM_BUDGET_ENV: &str = "REOPT_MEM_BUDGET";

/// Sentinel for "no budget": reservations always succeed.
const UNLIMITED: u64 = u64::MAX;

/// A shared byte budget that breaker sinks reserve against while buffering.
#[derive(Debug)]
pub struct MemoryGovernor {
    /// Current budget in bytes; [`UNLIMITED`] disables accounting.
    budget: AtomicU64,
    /// Bytes currently reserved across all sinks and sessions.
    reserved: AtomicU64,
    /// High-water mark of `reserved` (observability + tests).
    peak_reserved: AtomicU64,
    /// Number of denied reservations (each denial is one memory-pressure event).
    denials: AtomicU64,
}

impl MemoryGovernor {
    /// A governor with no budget: every reservation succeeds.
    pub fn unlimited() -> Arc<Self> {
        Self::new(None)
    }

    /// A governor with a fixed byte budget (`None` = unlimited).
    pub fn new(budget: Option<u64>) -> Arc<Self> {
        Arc::new(Self {
            budget: AtomicU64::new(normalize(budget)),
            reserved: AtomicU64::new(0),
            peak_reserved: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        })
    }

    /// A governor initialised from `REOPT_MEM_BUDGET` (bytes; unset or `0` means
    /// unlimited).
    pub fn from_env() -> Arc<Self> {
        let budget = std::env::var(MEM_BUDGET_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&b| b > 0);
        Self::new(budget)
    }

    /// The current budget, or `None` when unlimited.
    pub fn budget(&self) -> Option<u64> {
        match self.budget.load(Ordering::SeqCst) {
            UNLIMITED => None,
            b => Some(b),
        }
    }

    /// Whether accounting is disabled.
    pub fn is_unlimited(&self) -> bool {
        self.budget.load(Ordering::SeqCst) == UNLIMITED
    }

    /// Change the budget in place (`None` = unlimited). Every session sharing
    /// this governor sees the new budget on its next reservation.
    pub fn set_budget(&self, budget: Option<u64>) {
        self.budget.store(normalize(budget), Ordering::SeqCst);
    }

    /// Bytes currently reserved across all sinks.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently reserved bytes.
    pub fn peak_reserved(&self) -> u64 {
        self.peak_reserved.load(Ordering::SeqCst)
    }

    /// Total reservations denied so far.
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::SeqCst)
    }

    /// Try to reserve `bytes` more. Fails (without reserving anything) if the
    /// budget would be exceeded. Callers outside [`Reservation`] (the parallel
    /// engine's shared run state) must pair every success with [`release`].
    pub(crate) fn try_reserve(&self, bytes: u64) -> bool {
        if self.is_unlimited() {
            return true;
        }
        let mut current = self.reserved.load(Ordering::SeqCst);
        loop {
            let budget = self.budget.load(Ordering::SeqCst);
            let next = match current.checked_add(bytes) {
                Some(next) if next <= budget => next,
                _ => {
                    self.denials.fetch_add(1, Ordering::SeqCst);
                    return false;
                }
            };
            match self.reserved.compare_exchange(
                current,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.peak_reserved.fetch_max(next, Ordering::SeqCst);
                    return true;
                }
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn release(&self, bytes: u64) {
        if bytes > 0 {
            self.reserved.fetch_sub(bytes, Ordering::SeqCst);
        }
    }

    /// Start an empty reservation against this governor. Grow it as the sink
    /// buffers; dropping the reservation releases everything it holds.
    pub fn reservation(self: &Arc<Self>) -> Reservation {
        Reservation {
            governor: Arc::clone(self),
            bytes: 0,
        }
    }
}

fn normalize(budget: Option<u64>) -> u64 {
    match budget {
        Some(0) | None => UNLIMITED,
        Some(b) => b,
    }
}

/// RAII slice of the governor's budget held by one breaker sink.
#[derive(Debug)]
pub struct Reservation {
    governor: Arc<MemoryGovernor>,
    bytes: u64,
}

impl Reservation {
    /// Try to grow the reservation by `additional` bytes. On denial the
    /// reservation is unchanged (the sink still holds what it already had).
    pub fn grow(&mut self, additional: u64) -> bool {
        if self.governor.is_unlimited() {
            return true;
        }
        if self.governor.try_reserve(additional) {
            self.bytes += additional;
            true
        } else {
            false
        }
    }

    /// Release the whole reservation (e.g. after the buffer moved to disk).
    pub fn release_all(&mut self) {
        self.governor.release(self.bytes);
        self.bytes = 0;
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The governor this reservation counts against.
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.governor
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.governor.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_always_grants() {
        let gov = MemoryGovernor::unlimited();
        let mut res = gov.reservation();
        assert!(res.grow(u64::MAX));
        assert!(res.grow(u64::MAX));
        assert_eq!(gov.reserved(), 0, "unlimited mode skips accounting");
        assert_eq!(gov.denials(), 0);
    }

    #[test]
    fn budget_denies_over_reservation_and_releases_on_drop() {
        let gov = MemoryGovernor::new(Some(100));
        let mut a = gov.reservation();
        assert!(a.grow(60));
        let mut b = gov.reservation();
        assert!(b.grow(40));
        assert!(!b.grow(1), "101st byte must be denied");
        assert_eq!(b.bytes(), 40, "denial leaves the reservation unchanged");
        assert_eq!(gov.reserved(), 100);
        assert_eq!(gov.peak_reserved(), 100);
        assert_eq!(gov.denials(), 1);
        drop(a);
        assert!(b.grow(1));
        assert_eq!(gov.reserved(), 41);
        drop(b);
        assert_eq!(gov.reserved(), 0);
    }

    #[test]
    fn release_all_frees_mid_query() {
        let gov = MemoryGovernor::new(Some(50));
        let mut res = gov.reservation();
        assert!(res.grow(50));
        res.release_all();
        assert_eq!(res.bytes(), 0);
        assert_eq!(gov.reserved(), 0);
        assert!(res.grow(50), "freed budget is reusable");
    }

    #[test]
    fn set_budget_applies_in_place() {
        let gov = MemoryGovernor::new(Some(10));
        let mut res = gov.reservation();
        assert!(!res.grow(20));
        gov.set_budget(Some(100));
        assert!(res.grow(20));
        gov.set_budget(None);
        assert!(gov.is_unlimited());
        assert_eq!(gov.budget(), None);
    }

    #[test]
    fn zero_budget_means_unlimited() {
        let gov = MemoryGovernor::new(Some(0));
        assert!(gov.is_unlimited());
    }
}
