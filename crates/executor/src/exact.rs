//! Exact, order-independent summation of `f64` values.
//!
//! [`ExactSum`] is a Kulisch-style fixed-point superaccumulator: a 2176-bit
//! two's-complement integer whose least-significant bit has weight 2^-1074 (the
//! smallest subnormal). Every finite `f64` is an integer multiple of that unit
//! with magnitude below 2^1024, so each summand lands in the accumulator
//! *exactly* — addition is plain integer addition, which is associative and
//! commutative. The final [`ExactSum::to_f64`] rounds the true sum once
//! (half-to-even), so the result is independent of summation order, partitioning
//! and thread count: the morsel-parallel engine merging per-worker partials in
//! any order produces the bit-identical value the single-threaded engine
//! produces row by row. Non-finite inputs are tracked as flags (also
//! order-independent): any NaN — or both +inf and -inf — makes the sum NaN,
//! otherwise a single-signed infinity wins.
//!
//! Capacity: bit 2098 is the top bit of the largest finite `f64`, leaving ~77
//! headroom bits before the sign bit — the accumulator would need on the order
//! of 2^77 maximal summands to overflow, which no workload reaches.
//!
//! One deliberate semantic difference from running `f64` addition: a sequence
//! whose *intermediate* running total overflows (`1e308 + 1e308 - 1e308`)
//! saturated to `inf` under the old scheme but now yields the finite, exact
//! result. That is a strict accuracy improvement and is what makes the value
//! order-independent in the first place.

/// Number of 64-bit limbs: 34 × 64 = 2176 bits.
const LIMBS: usize = 34;

/// An exact `f64` accumulator (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSum {
    /// Little-endian two's-complement fixed-point value; bit 0 weighs 2^-1074.
    limbs: [u64; LIMBS],
    /// A NaN was added.
    has_nan: bool,
    /// A +inf was added.
    has_pos_inf: bool,
    /// A -inf was added.
    has_neg_inf: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// The zero sum.
    pub fn new() -> Self {
        ExactSum {
            limbs: [0; LIMBS],
            has_nan: false,
            has_pos_inf: false,
            has_neg_inf: false,
        }
    }

    /// Add one `f64` summand, exactly.
    pub fn add(&mut self, v: f64) {
        let bits = v.to_bits();
        let negative = bits >> 63 == 1;
        let bexp = ((bits >> 52) & 0x7ff) as u32;
        let frac = bits & ((1u64 << 52) - 1);
        if bexp == 0x7ff {
            if frac != 0 {
                self.has_nan = true;
            } else if negative {
                self.has_neg_inf = true;
            } else {
                self.has_pos_inf = true;
            }
            return;
        }
        // value = mant * 2^(pos - 1074): normals carry the implicit leading bit,
        // subnormals share the minimum exponent (pos = 0).
        let mant = if bexp == 0 { frac } else { frac | (1u64 << 52) };
        if mant == 0 {
            return; // ±0.0
        }
        let pos = (bexp.max(1) - 1) as usize;
        let (limb, off) = (pos / 64, pos % 64);
        let wide = (mant as u128) << off; // ≤ 53 + 63 bits, fits u128
        let lo = wide as u64;
        let hi = (wide >> 64) as u64;
        if negative {
            let mut borrow;
            (self.limbs[limb], borrow) = self.limbs[limb].overflowing_sub(lo);
            let (v2, b2) = self.limbs[limb + 1].overflowing_sub(hi);
            let (v3, b3) = v2.overflowing_sub(borrow as u64);
            self.limbs[limb + 1] = v3;
            borrow = b2 || b3;
            let mut i = limb + 2;
            while borrow && i < LIMBS {
                (self.limbs[i], borrow) = self.limbs[i].overflowing_sub(1);
                i += 1;
            }
        } else {
            let mut carry;
            (self.limbs[limb], carry) = self.limbs[limb].overflowing_add(lo);
            let (v2, c2) = self.limbs[limb + 1].overflowing_add(hi);
            let (v3, c3) = v2.overflowing_add(carry as u64);
            self.limbs[limb + 1] = v3;
            carry = c2 || c3;
            let mut i = limb + 2;
            while carry && i < LIMBS {
                (self.limbs[i], carry) = self.limbs[i].overflowing_add(1);
                i += 1;
            }
        }
    }

    /// Merge another partial sum into this one (exact; order-independent).
    pub fn merge(&mut self, other: &ExactSum) {
        let mut carry = false;
        for i in 0..LIMBS {
            let (v1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (v2, c2) = v1.overflowing_add(carry as u64);
            self.limbs[i] = v2;
            carry = c1 || c2;
        }
        self.has_nan |= other.has_nan;
        self.has_pos_inf |= other.has_pos_inf;
        self.has_neg_inf |= other.has_neg_inf;
    }

    /// The sum, rounded once to the nearest `f64` (ties to even). Overflow past
    /// the largest finite `f64` rounds to ±inf, the exact zero is +0.0.
    pub fn to_f64(&self) -> f64 {
        if self.has_nan || (self.has_pos_inf && self.has_neg_inf) {
            return f64::NAN;
        }
        if self.has_pos_inf {
            return f64::INFINITY;
        }
        if self.has_neg_inf {
            return f64::NEG_INFINITY;
        }
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            // Two's-complement negate to get the magnitude.
            let mut carry = true;
            for limb in mag.iter_mut() {
                let (v, c) = (!*limb).overflowing_add(carry as u64);
                *limb = v;
                carry = c;
            }
        }
        let msb = match (0..LIMBS)
            .rev()
            .find(|&i| mag[i] != 0)
            .map(|i| i * 64 + 63 - mag[i].leading_zeros() as usize)
        {
            Some(msb) => msb,
            None => return 0.0,
        };
        let magnitude = if msb <= 52 {
            // Below 2^53 units the bit pattern *is* the (sub)normal encoding:
            // value = mag[0] * 2^-1074 for every mag[0] < 2^53.
            f64::from_bits(mag[0])
        } else {
            // Take the top 53 bits, round half-to-even on the guard/sticky bits.
            let mut m53 = bits_from(&mag, msb - 52, 53);
            let guard = bit_at(&mag, msb - 53);
            let sticky = (0..msb - 53).any(|i| bit_at(&mag, i));
            let mut exp = msb;
            if guard && (sticky || m53 & 1 == 1) {
                m53 += 1;
                if m53 == 1 << 53 {
                    m53 >>= 1;
                    exp += 1;
                }
            }
            // value = 1.f × 2^(exp - 1074); biased exponent = exp - 1074 + 1023.
            let bexp = exp as u64 - 51;
            if bexp >= 0x7ff {
                f64::INFINITY
            } else {
                f64::from_bits((bexp << 52) | (m53 & ((1u64 << 52) - 1)))
            }
        };
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Whether any non-finite value was added.
    pub fn non_finite(&self) -> bool {
        self.has_nan || self.has_pos_inf || self.has_neg_inf
    }

    /// Encode as (flags, limbs) for spill records: limbs bit-cast to `i64`.
    pub fn encode(&self) -> (i64, [i64; LIMBS]) {
        let flags = self.has_nan as i64 | (self.has_pos_inf as i64) << 1 | (self.has_neg_inf as i64) << 2;
        let mut limbs = [0i64; LIMBS];
        for (out, limb) in limbs.iter_mut().zip(self.limbs.iter()) {
            *out = *limb as i64;
        }
        (flags, limbs)
    }

    /// Rebuild from [`ExactSum::encode`] output.
    pub fn decode(flags: i64, limbs: impl Iterator<Item = i64>) -> Option<Self> {
        let mut sum = ExactSum::new();
        sum.has_nan = flags & 1 != 0;
        sum.has_pos_inf = flags & 2 != 0;
        sum.has_neg_inf = flags & 4 != 0;
        let mut n = 0;
        for (slot, limb) in sum.limbs.iter_mut().zip(limbs) {
            *slot = limb as u64;
            n += 1;
        }
        (n == LIMBS).then_some(sum)
    }

    /// Number of limbs [`ExactSum::encode`] produces (spill-record sizing).
    pub const ENCODED_LIMBS: usize = LIMBS;
}

/// Bit `i` of the little-endian limb array.
fn bit_at(limbs: &[u64; LIMBS], i: usize) -> bool {
    limbs[i / 64] >> (i % 64) & 1 == 1
}

/// `count` bits starting at bit `lo` (little-endian), as a u64. `count` < 64.
fn bits_from(limbs: &[u64; LIMBS], lo: usize, count: usize) -> u64 {
    let (limb, off) = (lo / 64, lo % 64);
    let mut v = limbs[limb] >> off;
    if off != 0 && limb + 1 < LIMBS {
        v |= limbs[limb + 1] << (64 - off);
    }
    v & ((1u64 << count) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(values: &[f64]) -> f64 {
        let mut acc = ExactSum::new();
        for &v in values {
            acc.add(v);
        }
        acc.to_f64()
    }

    #[test]
    fn exact_on_simple_sequences() {
        assert_eq!(sum_of(&[]), 0.0);
        assert_eq!(sum_of(&[1.5]), 1.5);
        assert_eq!(sum_of(&[0.1, 0.2]), 0.1f64 + 0.2f64);
        assert_eq!(sum_of(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(sum_of(&[-1.0, 1.0]), 0.0);
        assert!(sum_of(&[-1.0, 1.0]).is_sign_positive(), "exact zero is +0.0");
        assert_eq!(sum_of(&[1e308, 1e308, -1e308]), 1e308);
        assert_eq!(sum_of(&[5e-324, 5e-324]), 1e-323);
        assert_eq!(sum_of(&[f64::MAX, f64::MIN_POSITIVE, -f64::MIN_POSITIVE]), f64::MAX);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // 1e16 + 1 - 1e16 loses the 1 under running f64 addition when the order
        // is unlucky; the superaccumulator never does.
        assert_eq!(sum_of(&[1e16, 1.0, -1e16]), 1.0);
        assert_eq!(sum_of(&[1.0, 1e16, -1e16]), 1.0);
        assert_eq!(sum_of(&[1e300, 5e-324, -1e300]), 5e-324);
    }

    #[test]
    fn order_and_partitioning_independent() {
        let values = [
            0.1, -0.3, 1e15, 3.7e-12, -2.5e8, 1e-300, 9.9e200, -9.9e200, 42.0, -0.0, 7.25e-30,
        ];
        let forward = sum_of(&values);
        let mut reversed = values;
        reversed.reverse();
        assert_eq!(forward.to_bits(), sum_of(&reversed).to_bits());
        // Every split point, merged in both orders.
        for split in 0..values.len() {
            let (a, b) = values.split_at(split);
            let mut left = ExactSum::new();
            a.iter().for_each(|&v| left.add(v));
            let mut right = ExactSum::new();
            b.iter().for_each(|&v| right.add(v));
            let mut ab = left.clone();
            ab.merge(&right);
            let mut ba = right.clone();
            ba.merge(&left);
            assert_eq!(ab, ba);
            assert_eq!(ab.to_f64().to_bits(), forward.to_bits());
        }
    }

    #[test]
    fn rounding_is_half_to_even() {
        // 2^53 + 1 is not representable; the exact sum must round to even (2^53).
        let two53 = 9007199254740992.0f64;
        assert_eq!(sum_of(&[two53, 1.0]), two53);
        // 2^53 + 2 is representable.
        assert_eq!(sum_of(&[two53, 2.0]), two53 + 2.0);
        // 2^53 + 3 rounds up to 2^53 + 4 (ties to even on the guard+sticky).
        assert_eq!(sum_of(&[two53, 1.0, 1.0, 1.0]), two53 + 4.0);
    }

    #[test]
    fn overflow_rounds_to_infinity_flags_win() {
        assert_eq!(sum_of(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(sum_of(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
        // A saturating intermediate no longer poisons the result…
        assert_eq!(sum_of(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
        // …but real infinities do, order-independently.
        assert_eq!(sum_of(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(sum_of(&[1.0, f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(sum_of(&[f64::NAN, 1.0]).is_nan());
        let mut with_inf = ExactSum::new();
        with_inf.add(f64::INFINITY);
        assert!(with_inf.non_finite());
    }

    #[test]
    fn matches_running_sum_on_integers() {
        // Integer-valued doubles below 2^53 sum associatively either way; the
        // accumulator must agree bit-for-bit with the running total.
        let values: Vec<f64> = (0..10_000).map(|i| (i * 7 % 1000) as f64).collect();
        let running: f64 = values.iter().sum();
        assert_eq!(sum_of(&values).to_bits(), running.to_bits());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut acc = ExactSum::new();
        for v in [0.1, -7.5e300, 5e-324, f64::INFINITY] {
            acc.add(v);
        }
        let (flags, limbs) = acc.encode();
        let back = ExactSum::decode(flags, limbs.iter().copied()).expect("decodes");
        assert_eq!(back, acc);
        assert!(ExactSum::decode(0, [0i64; 3].iter().copied()).is_none(), "truncated");
    }

    #[test]
    fn subnormal_accumulation_promotes_to_normal() {
        let mut acc = ExactSum::new();
        for _ in 0..1_000_000 {
            acc.add(5e-324);
        }
        // The sum is exactly 1_000_000 units of 2^-1074, i.e. the f64 whose raw
        // bit pattern is 1_000_000 (still subnormal, no rounding involved).
        assert_eq!(acc.to_f64().to_bits(), 1_000_000);
    }
}
