//! # reopt-executor
//!
//! Execution of physical plans with EXPLAIN ANALYZE style instrumentation.
//!
//! Operators are *materialized*: each node consumes its children fully and produces a
//! `Vec<Row>`. The paper's re-optimization simulation itself breaks pipelines by
//! materializing intermediate results into temporary tables, so a vector-at-a-time
//! executor is a faithful substrate for the experiments (and keeps per-operator actual
//! cardinalities trivially observable).
//!
//! Every executed node produces an [`OperatorMetrics`] record with the estimated and
//! actual output cardinality and the wall-clock time spent producing it — the
//! information the paper extracts from `EXPLAIN ANALYZE` to drive re-optimization.

pub mod error;
pub mod exec;
pub mod metrics;

pub use error::ExecError;
pub use exec::{execute_plan, ExecutionResult, Executor};
pub use metrics::{MetricsNode, OperatorMetrics, QueryMetrics};
