//! # reopt-executor
//!
//! Pipelined, vectorized execution of physical plans with EXPLAIN ANALYZE style
//! instrumentation.
//!
//! Operators are *pull-based batch iterators*: every plan node becomes an operator
//! producing fixed-size batches ([`exec::DEFAULT_BATCH_SIZE`] rows by default,
//! configurable via [`Executor::with_batch_size`]). Internally a batch is either
//! columnar — typed column slices over the table's storage, on which scan and filter
//! kernels run tight vectorized loops (dictionary codes compare as integers) — or a
//! row batch; columnar batches are decoded to rows at the root seam, at breaker
//! materialization points, and in front of row-only operators, so the public
//! `next_batch() -> Option<RowBatch>` contract is unchanged (see
//! [`Executor::with_columnar`] and the `REOPT_COLUMNAR` kill switch). Memory is
//! bounded to one in-flight batch per streaming operator plus the buffers of
//! *pipeline breakers* — the build side of a hash join, the inner side of a
//! nested-loop join, both sorted inputs of a merge join, aggregate group states and
//! sort buffers. The rows and bytes held by breakers are tracked and surfaced as
//! [`ExecutionResult::peak_buffered_rows`] / `peak_buffered_bytes`, which is what
//! lets the many-to-many JOB join graphs (tens of millions of intermediate rows)
//! execute in bounded memory instead of materializing every intermediate.
//!
//! The batch seam doubles as a suspend/resume point: [`Executor::open`] returns a
//! [`Pipeline`] that can be pulled one batch at a time, which is the hook a mid-query
//! re-optimizer (or an async scheduler) needs to pause execution between batches.
//! Going further, [`Executor::open_observed`] installs an [`ExecutionObserver`] that
//! receives a stream of [`ExecEvent`]s: every *pipeline-breaker completion* (the
//! points where true subtree cardinalities first become known, even mid-flight inside
//! a single root `next_batch` call) and the *progress reports* of streaming joins —
//! produced-vs-estimated rows every N output batches plus a final report when an
//! index-NL join's outer side exhausts — so a cardinality overshoot is detectable
//! long before any breaker completes. The observer may suspend execution immediately
//! or on the root batch seam ([`ObserverDecision`]). A suspended [`Pipeline`]
//! surrenders its completed hash-build sides and nested-loop inners via
//! [`Pipeline::take_breaker_states`] so a re-optimizer can re-plan the remaining
//! joins around the already-computed state instead of restarting from scratch.
//!
//! Every executed node produces an [`OperatorMetrics`] record with the estimated and
//! actual output cardinality, the number of batches, and the wall-clock time spent
//! producing them (self time, excluding children) — the information the paper extracts
//! from `EXPLAIN ANALYZE` to drive re-optimization.

pub mod error;
pub mod exact;
pub mod exec;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod spill;

pub use error::ExecError;
pub use pool::{TaskHandle, WorkerPool, MAX_POOL_THREADS};
pub use exec::{
    default_columnar, default_thread_count, execute_plan, BreakerEvent, BreakerKind, BreakerState,
    ExecEvent, ExecutionObserver, ExecutionResult, Executor, MemoryPressureEvent, ObserverDecision,
    ObserverHandle, Pipeline, ProgressEvent, ProgressSource, RowBatch, DEFAULT_BATCH_SIZE,
    DEFAULT_PRIORITY, DEFAULT_PROGRESS_INTERVAL,
};
pub use metrics::{MetricsNode, OperatorMetrics, QueryMetrics};
pub use parallel::{
    fallback_reason, lazy_builds_planned_total, lazy_builds_started_total, plan_fallbacks_total,
    plan_supported,
};
pub use spill::{MemoryGovernor, Reservation, MEM_BUDGET_ENV};
