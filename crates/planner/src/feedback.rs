//! Keying and seeding for the cross-query cardinality feedback cache.
//!
//! The catalog's `FeedbackCache` stores observed cardinalities under normalized
//! *(relation set, predicate signature)* keys, but the catalog sits below the planner
//! and cannot see [`QuerySpec`]s or expressions. This module is the bridge:
//!
//! * [`feedback_key`] renders a relation subset of a bound query into a
//!   [`FeedbackKey`] — per-relation fingerprints (table plus alias-normalized local
//!   predicates), join edges with canonical relation ordinals, and the complex
//!   predicates applicable within the subset. The rendering is independent of FROM
//!   order and alias spelling, so the same logical sub-join keys identically across
//!   queries.
//! * [`seed_overrides_from_cache`] does the reverse: scan the cache, match each
//!   entry's fingerprints onto a new query's relations, verify the match by
//!   re-rendering the key, and emit [`CardinalityOverrides`] to seed the first
//!   planning pass. Exact entries pin estimates; lower bounds only floor them.
//!
//! Matching is conservative: an entry seeds a subset only when the re-rendered key is
//! structurally equal, so a near-miss loses a seeding opportunity but can never
//! inject a wrong association. Self-joins make the fingerprint→relation assignment
//! ambiguous; the search enumerates subsets (combinations within equal-fingerprint
//! groups) under a small attempt budget.

use crate::cardinality::CardinalityOverrides;
use crate::relset::RelSet;
use crate::spec::QuerySpec;
use reopt_catalog::{FeedbackCache, FeedbackKey, RelationFingerprint};
use reopt_expr::{ColumnRef, Expr};

/// Maximum candidate subsets tried per cache entry when self-joins make the
/// fingerprint assignment ambiguous.
const MAX_MATCH_ATTEMPTS: usize = 64;

/// Render one local predicate with the relation's alias replaced by a placeholder, so
/// `t.production_year > 2000` and `x.production_year > 2000` fingerprint identically.
fn normalized_predicate(predicate: &Expr) -> String {
    predicate
        .map_column_refs(&|r| ColumnRef::qualified("@", &r.name))
        .to_sql()
}

/// The feedback fingerprint of one relation of a bound query: its table name plus
/// normalized, sorted local predicates.
pub fn relation_fingerprint(spec: &QuerySpec, rel: usize) -> RelationFingerprint {
    let relation = &spec.relations[rel];
    RelationFingerprint::new(
        relation.table.clone(),
        spec.local_predicates[rel]
            .iter()
            .map(normalized_predicate)
            .collect(),
    )
}

/// The normalized feedback key for a relation subset of a bound query, or `None` for
/// the empty set.
pub fn feedback_key(spec: &QuerySpec, set: RelSet) -> Option<FeedbackKey> {
    if set.is_empty() {
        return None;
    }
    let members: Vec<usize> = set.iter().collect();
    let mut fingerprints: Vec<(RelationFingerprint, usize)> = members
        .iter()
        .map(|&rel| (relation_fingerprint(spec, rel), rel))
        .collect();
    // Canonical ordinals: sort by fingerprint, ties by position in the set. Ties only
    // occur between indistinguishable relations (same table, same predicates), where
    // either labeling renders the same key for symmetric edge sets; asymmetric
    // self-join shapes may key differently across queries, which only costs a missed
    // seed, never a wrong one.
    fingerprints.sort();
    let mut ordinal_of = std::collections::HashMap::new();
    for (ordinal, (_, rel)) in fingerprints.iter().enumerate() {
        ordinal_of.insert(*rel, ordinal);
    }

    let mut edges = Vec::new();
    for edge in spec.edges_within(set) {
        let left = (ordinal_of[&edge.left_rel], edge.left_column.name.clone());
        let right = (ordinal_of[&edge.right_rel], edge.right_column.name.clone());
        let (a, b) = if left <= right {
            (left, right)
        } else {
            (right, left)
        };
        edges.push(format!("r{}.{} = r{}.{}", a.0, a.1, b.0, b.1));
    }

    let mut predicates = Vec::new();
    for (pred_set, expr) in &spec.complex_predicates {
        if pred_set.is_subset_of(set) {
            let rendered = expr.map_column_refs(&|r| {
                let ordinal = r
                    .qualifier
                    .as_deref()
                    .and_then(|q| spec.relation_by_alias(q))
                    .and_then(|rel| ordinal_of.get(&rel));
                match ordinal {
                    Some(o) => ColumnRef::qualified(format!("r{o}"), &r.name),
                    None => r.clone(),
                }
            });
            predicates.push(rendered.to_sql());
        }
    }

    Some(FeedbackKey::new(
        fingerprints.into_iter().map(|(fp, _)| fp).collect(),
        edges,
        predicates,
    ))
}

/// Enumerate candidate relation subsets matching `groups` (one candidate list per
/// fingerprint, equal fingerprints sharing ascending-order constraints so each subset
/// is tried once), verifying each with `verify` under an attempt budget.
fn search_assignment(
    groups: &[(RelationFingerprint, Vec<usize>)],
    depth: usize,
    used: RelSet,
    min_index: usize,
    attempts: &mut usize,
    verify: &mut impl FnMut(RelSet) -> bool,
) -> Option<RelSet> {
    if depth == groups.len() {
        *attempts += 1;
        return verify(used).then_some(used);
    }
    let (fingerprint, candidates) = &groups[depth];
    let same_group = depth > 0 && groups[depth - 1].0 == *fingerprint;
    let floor = if same_group { min_index } else { 0 };
    for &rel in candidates {
        if *attempts >= MAX_MATCH_ATTEMPTS {
            return None;
        }
        if used.contains(rel) || rel < floor {
            continue;
        }
        if let Some(found) =
            search_assignment(groups, depth + 1, used.insert(rel), rel + 1, attempts, verify)
        {
            return Some(found);
        }
    }
    None
}

/// Match every cache entry against a bound query and build the override table that
/// seeds its first planning pass: exact entries pin subset estimates, lower-bound
/// entries floor them (see `CardinalityOverrides`). Entries that seed are touched in
/// the cache (recency bump + hit count), so useful observations survive LRU eviction.
pub fn seed_overrides_from_cache(spec: &QuerySpec, cache: &FeedbackCache) -> CardinalityOverrides {
    let mut seeds = CardinalityOverrides::new();
    if cache.is_empty() || spec.relations.is_empty() {
        return seeds;
    }
    let query_fingerprints: Vec<RelationFingerprint> = (0..spec.relations.len())
        .map(|rel| relation_fingerprint(spec, rel))
        .collect();

    let mut seeded_keys: Vec<FeedbackKey> = Vec::new();
    for (key, rows, exact) in cache.iter() {
        if key.relations.len() > spec.relations.len() {
            continue;
        }
        // One candidate list per key fingerprint (the key's list is sorted, so equal
        // fingerprints are adjacent and share their candidate list).
        let mut groups: Vec<(RelationFingerprint, Vec<usize>)> =
            Vec::with_capacity(key.relations.len());
        let mut matched = true;
        for fingerprint in &key.relations {
            let candidates: Vec<usize> = query_fingerprints
                .iter()
                .enumerate()
                .filter(|(_, q)| *q == fingerprint)
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                matched = false;
                break;
            }
            groups.push((fingerprint.clone(), candidates));
        }
        if !matched {
            continue;
        }
        let mut attempts = 0;
        let mut verify = |set: RelSet| feedback_key(spec, set).as_ref() == Some(&key);
        if let Some(set) = search_assignment(
            &groups,
            0,
            RelSet::EMPTY,
            0,
            &mut attempts,
            &mut verify,
        ) {
            if exact {
                seeds.set(set, rows);
            } else {
                seeds.set_at_least(set, rows);
            }
            seeded_keys.push(key);
        }
    }
    for key in &seeded_keys {
        cache.lookup(key);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind_select;
    use crate::cardinality::Exactness;
    use reopt_sql::parse_sql;
    use reopt_storage::{Column, DataType, Row, Schema, Storage, Table, Value};

    fn build_storage() -> Storage {
        let mut storage = Storage::new();
        let mut title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("production_year", DataType::Int),
            ]),
        );
        for i in 0..100i64 {
            title
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::Int(1980 + i % 40),
                ]))
                .unwrap();
        }
        let mut mk = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("movie_id", DataType::Int),
                Column::not_null("keyword_id", DataType::Int),
            ]),
        );
        for i in 0..200i64 {
            mk.push_row(Row::from_values(vec![Value::Int(i % 100), Value::Int(i % 10)]))
                .unwrap();
        }
        storage.create_table(title).unwrap();
        storage.create_table(mk).unwrap();
        storage
    }

    fn bind(sql: &str, storage: &Storage) -> QuerySpec {
        let stmt = parse_sql(sql).unwrap();
        bind_select(stmt.query().unwrap(), storage).unwrap()
    }

    #[test]
    fn keys_are_alias_and_from_order_independent() {
        let storage = build_storage();
        let a = bind(
            "SELECT * FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year > 2000",
            &storage,
        );
        let b = bind(
            "SELECT * FROM movie_keyword AS x, title AS y
             WHERE y.id = x.movie_id AND y.production_year > 2000",
            &storage,
        );
        assert_eq!(
            feedback_key(&a, RelSet::all(2)),
            feedback_key(&b, RelSet::all(2))
        );
        // Different predicates produce different keys.
        let c = bind(
            "SELECT * FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year > 1990",
            &storage,
        );
        assert_ne!(
            feedback_key(&a, RelSet::all(2)),
            feedback_key(&c, RelSet::all(2))
        );
        assert_eq!(feedback_key(&a, RelSet::EMPTY), None);
    }

    #[test]
    fn seeding_matches_recorded_subsets_across_queries() {
        let storage = build_storage();
        let recorded = bind(
            "SELECT * FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year > 2000",
            &storage,
        );
        let cache = FeedbackCache::new();
        cache.record(
            feedback_key(&recorded, RelSet::all(2)).unwrap(),
            777.0,
            true,
        );
        cache.record(
            feedback_key(&recorded, RelSet::single(0)).unwrap(),
            42.0,
            false,
        );

        // Same logical query, different aliases and FROM order: both entries seed.
        let query = bind(
            "SELECT * FROM movie_keyword AS a, title AS b
             WHERE b.id = a.movie_id AND b.production_year > 2000",
            &storage,
        );
        let seeds = seed_overrides_from_cache(&query, &cache);
        assert_eq!(seeds.len(), 2);
        // `title` is relation 1 in the new query.
        assert_eq!(
            seeds.get_entry(RelSet::all(2)),
            Some((777.0, Exactness::Exact))
        );
        assert_eq!(
            seeds.get_entry(RelSet::single(1)),
            Some((42.0, Exactness::AtLeast))
        );

        // A query with a different predicate gets nothing.
        let other = bind(
            "SELECT * FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year > 1990",
            &storage,
        );
        let seeds = seed_overrides_from_cache(&other, &cache);
        assert_eq!(seeds.get(RelSet::all(2)), None);
    }

    #[test]
    fn self_join_assignment_verifies_against_the_key() {
        let storage = build_storage();
        let spec = bind(
            "SELECT * FROM title AS t1, title AS t2, movie_keyword AS mk
             WHERE t1.id = mk.movie_id AND t2.id = mk.keyword_id
               AND t1.production_year > 2000",
            &storage,
        );
        // Record the sub-join {t2, mk} (the unfiltered title side).
        let sub = RelSet::from_indexes([1, 2]);
        let cache = FeedbackCache::new();
        cache.record(feedback_key(&spec, sub).unwrap(), 55.0, true);
        let seeds = seed_overrides_from_cache(&spec, &cache);
        // The filtered t1 must not absorb the seed: fingerprints differ.
        assert_eq!(seeds.get_entry(sub), Some((55.0, Exactness::Exact)));
        assert_eq!(seeds.get(RelSet::from_indexes([0, 2])), None);
    }
}
