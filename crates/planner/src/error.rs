//! Planner errors.

use reopt_storage::StorageError;
use std::fmt;

/// Errors raised while binding or optimizing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A table referenced in FROM does not exist.
    UnknownTable(String),
    /// A column reference could not be resolved or was ambiguous.
    UnknownColumn(String),
    /// The same alias appears twice in FROM.
    DuplicateAlias(String),
    /// The query shape is outside the supported subset.
    Unsupported(String),
    /// Too many relations for the bitset representation (more than 64).
    TooManyRelations(usize),
    /// The join graph is disconnected and Cartesian products are disabled.
    DisconnectedJoinGraph,
    /// An underlying storage error.
    Storage(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            PlanError::UnknownColumn(c) => write!(f, "unknown or ambiguous column '{c}'"),
            PlanError::DuplicateAlias(a) => write!(f, "duplicate alias '{a}' in FROM"),
            PlanError::Unsupported(detail) => write!(f, "unsupported query: {detail}"),
            PlanError::TooManyRelations(n) => {
                write!(f, "query references {n} relations; at most 64 are supported")
            }
            PlanError::DisconnectedJoinGraph => {
                f.write_str("join graph is disconnected (Cartesian products are disabled)")
            }
            PlanError::Storage(detail) => write!(f, "storage error: {detail}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<StorageError> for PlanError {
    fn from(err: StorageError) -> Self {
        match err {
            StorageError::TableNotFound(t) => PlanError::UnknownTable(t),
            StorageError::ColumnNotFound(c) => PlanError::UnknownColumn(c),
            other => PlanError::Storage(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert() {
        let e: PlanError = StorageError::TableNotFound("t".into()).into();
        assert_eq!(e, PlanError::UnknownTable("t".into()));
        let e: PlanError = StorageError::ColumnNotFound("c".into()).into();
        assert_eq!(e, PlanError::UnknownColumn("c".into()));
        let e: PlanError = StorageError::TableExists("t".into()).into();
        assert!(matches!(e, PlanError::Storage(_)));
    }

    #[test]
    fn display_messages() {
        assert!(PlanError::DisconnectedJoinGraph.to_string().contains("disconnected"));
        assert!(PlanError::TooManyRelations(70).to_string().contains("70"));
        assert!(PlanError::DuplicateAlias("t".into()).to_string().contains("'t'"));
        assert!(PlanError::Unsupported("subqueries".into())
            .to_string()
            .contains("subqueries"));
    }
}
