//! Physical plans.
//!
//! A [`PhysicalPlan`] is a tree of operators. Every node carries its output schema
//! (columns qualified by relation alias), its estimated output cardinality, its cost and
//! the set of base relations it covers. The re-optimization controller relies on the
//! per-node `(rel_set, estimated_rows)` pair: after execution it compares the estimate
//! with the observed actual cardinality of the same node and materializes the lowest
//! join whose Q-error exceeds the threshold.

use crate::cost::Cost;
use crate::relset::RelSet;
use reopt_expr::{ColumnRef, Expr};
use reopt_sql::AggregateFunc;
use reopt_storage::{DataType, Schema, Value};
use std::fmt;

/// How a base relation is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Full sequential scan.
    Sequential,
    /// Index lookup (equality or range) plus residual filter.
    Index,
}

/// Which join algorithm a join node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Hash join: build on the inner (second) child, probe with the outer (first).
    Hash,
    /// Index nested-loop join: for each outer row, look up matches in a base-table index.
    IndexNestedLoop,
    /// Plain nested-loop join with an arbitrary predicate.
    NestedLoop,
    /// Sort-merge join.
    Merge,
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinAlgorithm::Hash => "Hash Join",
            JoinAlgorithm::IndexNestedLoop => "Index Nested Loop",
            JoinAlgorithm::NestedLoop => "Nested Loop",
            JoinAlgorithm::Merge => "Merge Join",
        })
    }
}

/// How an index scan restricts the indexed column.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexLookup {
    /// `column = value`.
    Equality(Value),
    /// `column IN (values)`, probed value by value.
    InList(Vec<Value>),
    /// A (half-)open range with inclusive/exclusive bounds.
    Range {
        /// Lower bound and whether it is inclusive.
        low: Option<(Value, bool)>,
        /// Upper bound and whether it is inclusive.
        high: Option<(Value, bool)>,
    },
}

/// An aggregate expression in an [`PlanKind::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    /// The aggregate function.
    pub func: AggregateFunc,
    /// The argument (None for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// A projected output expression.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputExpr {
    /// The expression to evaluate.
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

/// The operator-specific part of a plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// Sequential scan of a base relation.
    SeqScan {
        /// Relation index in the query spec.
        rel: usize,
        /// Relation alias.
        alias: String,
        /// Underlying table name.
        table: String,
        /// Filter predicate applied during the scan.
        predicate: Option<Expr>,
    },
    /// Index scan of a base relation.
    IndexScan {
        /// Relation index in the query spec.
        rel: usize,
        /// Relation alias.
        alias: String,
        /// Underlying table name.
        table: String,
        /// The indexed column name (unqualified).
        column: String,
        /// The lookup driving the index.
        lookup: IndexLookup,
        /// Residual predicate applied to fetched rows.
        residual: Option<Expr>,
    },
    /// Hash join. `children[0]` is the probe (outer) side, `children[1]` the build side.
    HashJoin {
        /// Equi-join keys, oriented (outer column, build column).
        keys: Vec<(ColumnRef, ColumnRef)>,
        /// Residual predicate applied to joined rows.
        residual: Option<Expr>,
    },
    /// Index nested-loop join. `children[0]` is the outer side; the inner side is a base
    /// relation accessed through an index.
    IndexNestedLoopJoin {
        /// Inner relation index in the query spec.
        inner_rel: usize,
        /// Inner relation alias.
        inner_alias: String,
        /// Inner table name.
        inner_table: String,
        /// Join key on the outer side.
        outer_key: ColumnRef,
        /// Indexed join key column on the inner side (unqualified name).
        inner_key: String,
        /// Filter applied to inner rows fetched from the index.
        inner_predicate: Option<Expr>,
        /// Residual predicate applied to joined rows (other join keys, complex preds).
        residual: Option<Expr>,
    },
    /// Plain nested-loop join with an arbitrary predicate.
    NestedLoopJoin {
        /// The join predicate (None = cross product).
        predicate: Option<Expr>,
    },
    /// Sort-merge join. Children are sorted internally by the executor.
    MergeJoin {
        /// Equi-join keys, oriented (left column, right column).
        keys: Vec<(ColumnRef, ColumnRef)>,
        /// Residual predicate applied to joined rows.
        residual: Option<Expr>,
    },
    /// Filter on top of a child.
    Filter {
        /// The predicate.
        predicate: Expr,
    },
    /// Hash aggregation (or plain aggregation when `group_by` is empty).
    Aggregate {
        /// Grouping expressions.
        group_by: Vec<Expr>,
        /// Aggregate expressions.
        aggregates: Vec<AggregateExpr>,
    },
    /// Projection.
    Project {
        /// Output expressions.
        exprs: Vec<OutputExpr>,
    },
    /// Sort.
    Sort {
        /// Sort keys and ascending flags.
        keys: Vec<(Expr, bool)>,
    },
    /// Limit.
    Limit {
        /// Maximum number of rows to emit.
        count: usize,
    },
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The operator.
    pub kind: PlanKind,
    /// Child plans (operand order is operator-specific, see [`PlanKind`]).
    pub children: Vec<PhysicalPlan>,
    /// Output schema (columns qualified by relation alias where applicable).
    pub schema: Schema,
    /// Estimated output cardinality.
    pub estimated_rows: f64,
    /// Estimated cost.
    pub cost: Cost,
    /// The set of base relations this subtree covers.
    pub rel_set: RelSet,
}

impl PhysicalPlan {
    /// Whether this node is a join.
    pub fn is_join(&self) -> bool {
        self.join_algorithm().is_some()
    }

    /// The join algorithm, if this node is a join.
    pub fn join_algorithm(&self) -> Option<JoinAlgorithm> {
        match self.kind {
            PlanKind::HashJoin { .. } => Some(JoinAlgorithm::Hash),
            PlanKind::IndexNestedLoopJoin { .. } => Some(JoinAlgorithm::IndexNestedLoop),
            PlanKind::NestedLoopJoin { .. } => Some(JoinAlgorithm::NestedLoop),
            PlanKind::MergeJoin { .. } => Some(JoinAlgorithm::Merge),
            _ => None,
        }
    }

    /// Whether this node is a base-relation scan.
    pub fn is_scan(&self) -> bool {
        matches!(
            self.kind,
            PlanKind::SeqScan { .. } | PlanKind::IndexScan { .. }
        )
    }

    /// The scan kind, if this node is a scan.
    pub fn scan_kind(&self) -> Option<ScanKind> {
        match self.kind {
            PlanKind::SeqScan { .. } => Some(ScanKind::Sequential),
            PlanKind::IndexScan { .. } => Some(ScanKind::Index),
            _ => None,
        }
    }

    /// A short human-readable label for EXPLAIN output.
    pub fn label(&self) -> String {
        match &self.kind {
            PlanKind::SeqScan { alias, table, .. } => format!("Seq Scan on {table} {alias}"),
            PlanKind::IndexScan {
                alias,
                table,
                column,
                ..
            } => format!("Index Scan on {table} {alias} using {column}"),
            PlanKind::HashJoin { keys, .. } => {
                let key_text: Vec<String> = keys
                    .iter()
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                format!("Hash Join on {}", key_text.join(" AND "))
            }
            PlanKind::IndexNestedLoopJoin {
                inner_alias,
                inner_table,
                outer_key,
                inner_key,
                ..
            } => format!(
                "Index Nested Loop Join ({outer_key} = {inner_alias}.{inner_key}) on {inner_table} {inner_alias}"
            ),
            PlanKind::NestedLoopJoin { predicate } => match predicate {
                Some(p) => format!("Nested Loop Join on {}", p.to_sql()),
                None => "Nested Loop Join (cross)".to_string(),
            },
            PlanKind::MergeJoin { keys, .. } => {
                let key_text: Vec<String> = keys
                    .iter()
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                format!("Merge Join on {}", key_text.join(" AND "))
            }
            PlanKind::Filter { predicate } => format!("Filter: {}", predicate.to_sql()),
            PlanKind::Aggregate {
                group_by,
                aggregates,
            } => {
                let agg_text: Vec<String> = aggregates
                    .iter()
                    .map(|a| match &a.arg {
                        Some(e) => format!("{}({})", a.func.name(), e.to_sql()),
                        None => format!("{}(*)", a.func.name()),
                    })
                    .collect();
                if group_by.is_empty() {
                    format!("Aggregate [{}]", agg_text.join(", "))
                } else {
                    format!("Group Aggregate [{}]", agg_text.join(", "))
                }
            }
            PlanKind::Project { exprs } => format!("Project ({} columns)", exprs.len()),
            PlanKind::Sort { keys } => format!("Sort ({} keys)", keys.len()),
            PlanKind::Limit { count } => format!("Limit {count}"),
        }
    }

    /// Depth-first pre-order traversal of the plan tree.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a PhysicalPlan)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }

    /// All join nodes in the tree, in pre-order.
    pub fn join_nodes(&self) -> Vec<&PhysicalPlan> {
        let mut joins = Vec::new();
        self.walk(&mut |node| {
            if node.is_join() {
                joins.push(node);
            }
        });
        joins
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        let mut count = 0;
        self.walk(&mut |_| count += 1);
        count
    }

    /// The maximum depth of the tree.
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PhysicalPlan::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Infer the output type of an expression evaluated against `schema`.
/// Used to build the schemas of Project and Aggregate nodes.
pub fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Column(reference) | Expr::BoundColumn { reference, .. } => schema
            .index_of(reference.qualifier.as_deref(), &reference.name)
            .ok()
            .and_then(|idx| schema.column(idx))
            .map(|c| c.data_type())
            .unwrap_or(DataType::Text),
        Expr::Literal(value) => value.data_type().unwrap_or(DataType::Text),
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || op.is_logical() {
                DataType::Bool
            } else {
                let l = infer_type(left, schema);
                let r = infer_type(right, schema);
                if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
        }
        Expr::Like { .. }
        | Expr::InList { .. }
        | Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::Not(_) => DataType::Bool,
    }
}

/// Infer the output type of an aggregate.
pub fn infer_aggregate_type(func: AggregateFunc, arg: Option<&Expr>, schema: &Schema) -> DataType {
    match func {
        AggregateFunc::Count => DataType::Int,
        AggregateFunc::Avg => DataType::Float,
        AggregateFunc::Sum => match arg.map(|e| infer_type(e, schema)) {
            Some(DataType::Float) => DataType::Float,
            _ => DataType::Int,
        },
        AggregateFunc::Min | AggregateFunc::Max => arg
            .map(|e| infer_type(e, schema))
            .unwrap_or(DataType::Text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::Column;

    fn scan(alias: &str, rel: usize, rows: f64) -> PhysicalPlan {
        PhysicalPlan {
            kind: PlanKind::SeqScan {
                rel,
                alias: alias.into(),
                table: format!("table_{alias}"),
                predicate: None,
            },
            children: vec![],
            schema: Schema::new(vec![Column::new("id", DataType::Int)]).qualified(alias),
            estimated_rows: rows,
            cost: Cost::new(0.0, rows),
            rel_set: RelSet::single(rel),
        }
    }

    fn join(left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan {
        let rel_set = left.rel_set.union(right.rel_set);
        let schema = left.schema.join(&right.schema);
        PhysicalPlan {
            kind: PlanKind::HashJoin {
                keys: vec![(
                    ColumnRef::qualified("a", "id"),
                    ColumnRef::qualified("b", "id"),
                )],
                residual: None,
            },
            children: vec![left, right],
            schema,
            estimated_rows: 10.0,
            cost: Cost::new(0.0, 100.0),
            rel_set,
        }
    }

    #[test]
    fn node_classification() {
        let plan = join(scan("a", 0, 100.0), scan("b", 1, 200.0));
        assert!(plan.is_join());
        assert_eq!(plan.join_algorithm(), Some(JoinAlgorithm::Hash));
        assert!(!plan.is_scan());
        assert!(plan.children[0].is_scan());
        assert_eq!(plan.children[0].scan_kind(), Some(ScanKind::Sequential));
        assert_eq!(plan.rel_set, RelSet::from_indexes([0, 1]));
    }

    #[test]
    fn traversal_helpers() {
        let plan = join(
            join(scan("a", 0, 1.0), scan("b", 1, 1.0)),
            scan("c", 2, 1.0),
        );
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.join_nodes().len(), 2);
        let mut labels = Vec::new();
        plan.walk(&mut |n| labels.push(n.label()));
        assert_eq!(labels.len(), 5);
        assert!(labels[0].starts_with("Hash Join"));
    }

    #[test]
    fn labels_are_descriptive() {
        let s = scan("t", 0, 5.0);
        assert_eq!(s.label(), "Seq Scan on table_t t");
        let j = join(scan("a", 0, 1.0), scan("b", 1, 1.0));
        assert!(j.label().contains("a.id = b.id"));
        let agg = PhysicalPlan {
            kind: PlanKind::Aggregate {
                group_by: vec![],
                aggregates: vec![AggregateExpr {
                    func: AggregateFunc::Min,
                    arg: Some(Expr::col("t", "id")),
                    name: "m".into(),
                }],
            },
            children: vec![s],
            schema: Schema::new(vec![Column::new("m", DataType::Int)]),
            estimated_rows: 1.0,
            cost: Cost::ZERO,
            rel_set: RelSet::single(0),
        };
        assert!(agg.label().contains("MIN(t.id)"));
        assert_eq!(JoinAlgorithm::Merge.to_string(), "Merge Join");
    }

    #[test]
    fn type_inference() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("score", DataType::Float),
            Column::new("name", DataType::Text),
        ])
        .qualified("t");
        assert_eq!(infer_type(&Expr::col("t", "id"), &schema), DataType::Int);
        assert_eq!(infer_type(&Expr::col("t", "name"), &schema), DataType::Text);
        assert_eq!(
            infer_type(
                &Expr::binary(
                    reopt_expr::BinaryOp::Add,
                    Expr::col("t", "id"),
                    Expr::col("t", "score")
                ),
                &schema
            ),
            DataType::Float
        );
        assert_eq!(
            infer_type(&Expr::eq(Expr::col("t", "id"), Expr::lit(1)), &schema),
            DataType::Bool
        );
        assert_eq!(
            infer_aggregate_type(AggregateFunc::Count, None, &schema),
            DataType::Int
        );
        assert_eq!(
            infer_aggregate_type(AggregateFunc::Avg, Some(&Expr::col("t", "id")), &schema),
            DataType::Float
        );
        assert_eq!(
            infer_aggregate_type(AggregateFunc::Min, Some(&Expr::col("t", "name")), &schema),
            DataType::Text
        );
        assert_eq!(
            infer_aggregate_type(AggregateFunc::Sum, Some(&Expr::col("t", "score")), &schema),
            DataType::Float
        );
    }
}
