//! Join-order enumeration.
//!
//! Two strategies are provided, mirroring PostgreSQL's split between exhaustive dynamic
//! programming and a heuristic fallback for very large join graphs:
//!
//! * [`EnumerationAlgorithm::DpCcp`] — the connected-subgraph / complement-pair
//!   enumeration of Moerkotte & Neumann ("Analysis of Two Existing and One New Dynamic
//!   Programming Algorithm", VLDB 2006). It enumerates every bushy join order without
//!   Cartesian products and is efficient on the sparse (mostly snowflake-shaped) join
//!   graphs of the Join Order Benchmark.
//! * [`EnumerationAlgorithm::Greedy`] — greedy operator ordering (GOO): repeatedly join
//!   the pair of sub-plans with the smallest estimated output. Used beyond the
//!   `greedy_threshold` (PostgreSQL switches to GEQO at `geqo_threshold`), and as a
//!   baseline for the ablation benchmarks.
//!
//! For every candidate join the enumerator prices a hash join (both build directions),
//! an index nested-loop join (when the inner side is a single base relation with an
//! index on the join key) and a sort-merge join, keeping the cheapest — so a large
//! cardinality underestimate can flip the choice to a nested-loop strategy, which is
//! exactly the failure mode the paper's query 18a walk-through describes.

use crate::cardinality::CardinalityEstimator;
use crate::cost::CostModel;
use crate::error::PlanError;
use crate::graph::JoinGraph;
use crate::optimizer::OptimizerConfig;
use crate::plan::{PhysicalPlan, PlanKind};
use crate::relset::RelSet;
use crate::spec::QuerySpec;
use reopt_expr::{conjoin, Expr};
use std::collections::HashMap;

/// Which enumeration strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumerationAlgorithm {
    /// Exhaustive DP over connected subgraph / complement pairs (bushy, no cross joins).
    DpCcp,
    /// Greedy operator ordering.
    Greedy,
}

/// Callback answering "does relation `rel` have an index on `column`?" and
/// "how many rows does the underlying table have?".
pub trait IndexInfo {
    /// Whether an index exists on the (unqualified) column of the relation's table.
    fn has_index(&self, rel: usize, column: &str) -> bool;
    /// The unfiltered row count of the relation's table.
    fn table_rows(&self, rel: usize) -> f64;
}

/// Which join algorithm (and orientation) won the pricing race for one sub-plan pair.
enum JoinChoiceKind {
    /// Hash join; `swapped` means the right input is the probe side.
    Hash { swapped: bool },
    /// Sort-merge join.
    Merge,
    /// Index nested-loop join; `swapped` means the left input is the indexed inner.
    IndexNl { swapped: bool },
    /// Plain nested loop (only priced when nothing else is available).
    NestedLoop,
}

/// A priced join decision: the winning algorithm plus the context needed to build the
/// plan node without re-deriving edges, complex predicates or the output estimate.
struct JoinChoice<'a> {
    algorithm: JoinChoiceKind,
    edges: Vec<&'a crate::spec::JoinEdge>,
    complex: Vec<Expr>,
    output_rows: f64,
}

/// The join enumerator.
pub struct JoinEnumerator<'a> {
    spec: &'a QuerySpec,
    graph: &'a JoinGraph,
    estimator: &'a CardinalityEstimator<'a>,
    cost_model: &'a CostModel,
    config: &'a OptimizerConfig,
    index_info: &'a dyn IndexInfo,
}

impl<'a> JoinEnumerator<'a> {
    /// Create an enumerator for one query.
    pub fn new(
        spec: &'a QuerySpec,
        graph: &'a JoinGraph,
        estimator: &'a CardinalityEstimator<'a>,
        cost_model: &'a CostModel,
        config: &'a OptimizerConfig,
        index_info: &'a dyn IndexInfo,
    ) -> Self {
        Self {
            spec,
            graph,
            estimator,
            cost_model,
            config,
            index_info,
        }
    }

    /// Find the cheapest join order for the given per-relation access paths.
    ///
    /// `base_plans[i]` must be the chosen access path for relation `i`.
    pub fn enumerate(
        &self,
        base_plans: Vec<PhysicalPlan>,
        algorithm: EnumerationAlgorithm,
    ) -> Result<PhysicalPlan, PlanError> {
        assert_eq!(base_plans.len(), self.spec.relation_count());
        if base_plans.len() == 1 {
            return Ok(base_plans.into_iter().next().expect("one plan"));
        }
        if !self.graph.is_fully_connected() {
            return Err(PlanError::DisconnectedJoinGraph);
        }
        match algorithm {
            EnumerationAlgorithm::DpCcp => self.dpccp(base_plans),
            EnumerationAlgorithm::Greedy => self.greedy(base_plans),
        }
    }

    /// Exhaustive DP over csg-cmp pairs.
    fn dpccp(&self, base_plans: Vec<PhysicalPlan>) -> Result<PhysicalPlan, PlanError> {
        let n = base_plans.len();
        let mut best: HashMap<RelSet, PhysicalPlan> = HashMap::new();
        for plan in base_plans {
            best.insert(plan.rel_set, plan);
        }

        // Process pairs in increasing size of the joined set so sub-plans exist:
        // bucket by size (O(pairs)) instead of sorting the whole pair list.
        let pairs = enumerate_csg_cmp_pairs(self.graph, n);
        let mut buckets: Vec<Vec<(RelSet, RelSet)>> = vec![Vec::new(); n + 1];
        for (s1, s2) in pairs {
            buckets[s1.union(s2).len()].push((s1, s2));
        }

        for (s1, s2) in buckets.into_iter().flatten() {
            let combined = s1.union(s2);
            let candidate = {
                let (Some(left), Some(right)) = (best.get(&s1), best.get(&s2)) else {
                    continue;
                };
                // Price every join strategy first; a plan (with its cloned subtrees)
                // is only materialized when the winner actually improves the DP table.
                let Some((cost, choice)) = self.cheapest_join(left, right) else {
                    continue;
                };
                match best.get(&combined) {
                    Some(existing) if !cost.is_cheaper_than(existing.cost) => continue,
                    _ => self.materialize_join(left, right, &choice),
                }
            };
            best.insert(combined, candidate);
        }

        best.remove(&RelSet::all(n))
            .ok_or(PlanError::DisconnectedJoinGraph)
    }

    /// Greedy operator ordering: repeatedly join the connected pair of components with
    /// the smallest estimated result.
    fn greedy(&self, base_plans: Vec<PhysicalPlan>) -> Result<PhysicalPlan, PlanError> {
        let mut components: Vec<PhysicalPlan> = base_plans;
        while components.len() > 1 {
            let mut best_pair: Option<(usize, usize, crate::cost::Cost, JoinChoice<'a>)> = None;
            for i in 0..components.len() {
                for j in (i + 1)..components.len() {
                    let Some((cost, choice)) =
                        self.cheapest_join(&components[i], &components[j])
                    else {
                        continue;
                    };
                    let better = match &best_pair {
                        None => true,
                        Some((_, _, best_cost, best_choice)) => {
                            choice.output_rows < best_choice.output_rows
                                || (choice.output_rows == best_choice.output_rows
                                    && cost.is_cheaper_than(*best_cost))
                        }
                    };
                    if better {
                        best_pair = Some((i, j, cost, choice));
                    }
                }
            }
            // Only the round's winner is materialized into a plan node.
            let Some((i, j, _, choice)) = best_pair else {
                return Err(PlanError::DisconnectedJoinGraph);
            };
            let joined = self.materialize_join(&components[i], &components[j], &choice);
            // Remove j first (it is the larger index).
            components.remove(j);
            components.remove(i);
            components.push(joined);
        }
        Ok(components.into_iter().next().expect("one component"))
    }

    /// The cheapest way to join two disjoint sub-plans, or `None` if no join edge
    /// connects them (Cartesian products are not considered).
    pub fn best_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
    ) -> Option<PhysicalPlan> {
        let (_, choice) = self.cheapest_join(left, right)?;
        Some(self.materialize_join(left, right, &choice))
    }

    /// Price every enabled join strategy for two disjoint sub-plans and return the
    /// winner's cost plus a descriptor that [`Self::materialize_join`] can turn into a
    /// plan. Costing does not clone the sub-plans, so losing strategies (and DP
    /// candidates that never beat the table) cost nothing but arithmetic.
    fn cheapest_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
    ) -> Option<(crate::cost::Cost, JoinChoice<'a>)> {
        let edges = self.spec.edges_between(left.rel_set, right.rel_set);
        if edges.is_empty() {
            return None;
        }
        let combined = left.rel_set.union(right.rel_set);
        let output_rows = self.estimator.estimate(combined).max(1.0);
        let complex: Vec<Expr> = self
            .spec
            .complex_predicates_for_join(left.rel_set, right.rel_set)
            .into_iter()
            .cloned()
            .collect();
        // Every edge from `edges_between` spans the two disjoint sets, so each one
        // orients and contributes a join key.
        let key_count = edges.len();

        let mut candidates: Vec<(crate::cost::Cost, JoinChoiceKind)> = Vec::new();

        // Hash joins, both build directions.
        if self.config.enable_hash_joins {
            candidates.push((
                self.cost_model.hash_join(
                    left.cost,
                    right.cost,
                    left.estimated_rows,
                    right.estimated_rows,
                    output_rows,
                    key_count,
                ),
                JoinChoiceKind::Hash { swapped: false },
            ));
            candidates.push((
                self.cost_model.hash_join(
                    right.cost,
                    left.cost,
                    right.estimated_rows,
                    left.estimated_rows,
                    output_rows,
                    key_count,
                ),
                JoinChoiceKind::Hash { swapped: true },
            ));
        }

        // Merge join (one orientation; cost is symmetric in our model).
        if self.config.enable_merge_joins {
            candidates.push((
                self.cost_model.merge_join(
                    left.cost,
                    right.cost,
                    left.estimated_rows,
                    right.estimated_rows,
                    output_rows,
                    key_count,
                ),
                JoinChoiceKind::Merge,
            ));
        }

        // Index nested-loop joins when one side is a single base relation with an index
        // on a join-key column.
        if self.config.enable_index_nl_joins {
            if let Some(cost) = self.index_nl_cost(left, right, &edges, &complex, output_rows) {
                candidates.push((cost, JoinChoiceKind::IndexNl { swapped: false }));
            }
            if let Some(cost) = self.index_nl_cost(right, left, &edges, &complex, output_rows) {
                candidates.push((cost, JoinChoiceKind::IndexNl { swapped: true }));
            }
        }

        // Plain nested loop as a last resort (always available once there is an edge).
        if candidates.is_empty() {
            candidates.push((
                self.cost_model.nested_loop_join(
                    left.cost,
                    right.cost,
                    left.estimated_rows,
                    right.estimated_rows,
                    output_rows,
                ),
                JoinChoiceKind::NestedLoop,
            ));
        }

        let (cost, algorithm) = candidates.into_iter().min_by(|a, b| {
            a.0.total
                .partial_cmp(&b.0.total)
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        Some((
            cost,
            JoinChoice {
                algorithm,
                edges,
                complex,
                output_rows,
            },
        ))
    }

    /// Build the plan a [`Self::cheapest_join`] descriptor stands for (this is where
    /// the sub-plans are cloned into the join node).
    fn materialize_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        choice: &JoinChoice<'a>,
    ) -> PhysicalPlan {
        let JoinChoice {
            algorithm,
            edges,
            complex,
            output_rows,
        } = choice;
        match algorithm {
            JoinChoiceKind::Hash { swapped: false } => {
                self.hash_join(left, right, edges, complex, *output_rows)
            }
            JoinChoiceKind::Hash { swapped: true } => {
                self.hash_join(right, left, edges, complex, *output_rows)
            }
            JoinChoiceKind::Merge => self.merge_join(left, right, edges, complex, *output_rows),
            JoinChoiceKind::IndexNl { swapped: false } => self
                .index_nl_join(left, right, edges, complex, *output_rows)
                .expect("priced index nested-loop candidate materializes"),
            JoinChoiceKind::IndexNl { swapped: true } => self
                .index_nl_join(right, left, edges, complex, *output_rows)
                .expect("priced index nested-loop candidate materializes"),
            JoinChoiceKind::NestedLoop => {
                self.nested_loop_join(left, right, edges, complex, *output_rows)
            }
        }
    }

    /// The index-lookup key for an index nested-loop join with `inner` as the single
    /// indexed base relation: the first orientable edge whose inner-side column has an
    /// index (a non-orientable edge aborts the candidate, as in the seed enumerator).
    /// Shared by pricing and materialization so their eligibility cannot drift.
    fn index_nl_key(
        &self,
        inner: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
    ) -> Option<(usize, reopt_expr::ColumnRef, reopt_expr::ColumnRef)> {
        if inner.rel_set.len() != 1 {
            return None;
        }
        let inner_rel = inner.rel_set.min_index().expect("single relation");
        for (edge_idx, edge) in edges.iter().enumerate() {
            let (inner_col, outer_col) = edge.oriented(inner.rel_set)?;
            if self.index_info.has_index(inner_rel, &inner_col.name) {
                return Some((edge_idx, inner_col, outer_col));
            }
        }
        None
    }

    /// The cost of an index nested-loop join with `inner_rel` as the indexed base
    /// relation (shared by [`Self::cheapest_join`] and [`Self::index_nl_join`]).
    fn index_nl_cost_for(
        &self,
        outer: &PhysicalPlan,
        inner_rel: usize,
        edge_count: usize,
        complex_count: usize,
        output_rows: f64,
    ) -> crate::cost::Cost {
        let inner_table_rows = self.index_info.table_rows(inner_rel);
        let matches_per_lookup =
            (output_rows / outer.estimated_rows.max(1.0)).clamp(0.1, inner_table_rows);
        let has_inner_predicate = !self.spec.local_predicates[inner_rel].is_empty();
        let residual_count = (edge_count - 1) + complex_count + (has_inner_predicate as usize);
        self.cost_model.index_nested_loop_join(
            outer.cost,
            outer.estimated_rows,
            inner_table_rows,
            matches_per_lookup,
            output_rows,
            residual_count,
        )
    }

    /// The cost of an index nested-loop join with `inner` as the indexed base relation,
    /// if possible (pricing counterpart of [`Self::index_nl_join`]).
    fn index_nl_cost(
        &self,
        outer: &PhysicalPlan,
        inner: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
        complex: &[Expr],
        output_rows: f64,
    ) -> Option<crate::cost::Cost> {
        self.index_nl_key(inner, edges)?;
        let inner_rel = inner.rel_set.min_index().expect("single relation");
        Some(self.index_nl_cost_for(outer, inner_rel, edges.len(), complex.len(), output_rows))
    }

    fn join_keys(
        &self,
        outer: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
    ) -> Vec<(reopt_expr::ColumnRef, reopt_expr::ColumnRef)> {
        edges
            .iter()
            .filter_map(|edge| edge.oriented(outer.rel_set))
            .collect()
    }

    fn hash_join(
        &self,
        outer: &PhysicalPlan,
        build: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
        complex: &[Expr],
        output_rows: f64,
    ) -> PhysicalPlan {
        let keys = self.join_keys(outer, edges);
        let cost = self.cost_model.hash_join(
            outer.cost,
            build.cost,
            outer.estimated_rows,
            build.estimated_rows,
            output_rows,
            keys.len(),
        );
        PhysicalPlan {
            kind: PlanKind::HashJoin {
                keys,
                residual: conjoin(complex),
            },
            schema: outer.schema.join(&build.schema),
            estimated_rows: output_rows,
            cost,
            rel_set: outer.rel_set.union(build.rel_set),
            children: vec![outer.clone(), build.clone()],
        }
    }

    fn merge_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
        complex: &[Expr],
        output_rows: f64,
    ) -> PhysicalPlan {
        let keys = self.join_keys(left, edges);
        let cost = self.cost_model.merge_join(
            left.cost,
            right.cost,
            left.estimated_rows,
            right.estimated_rows,
            output_rows,
            keys.len(),
        );
        PhysicalPlan {
            kind: PlanKind::MergeJoin {
                keys,
                residual: conjoin(complex),
            },
            schema: left.schema.join(&right.schema),
            estimated_rows: output_rows,
            cost,
            rel_set: left.rel_set.union(right.rel_set),
            children: vec![left.clone(), right.clone()],
        }
    }

    fn nested_loop_join(
        &self,
        outer: &PhysicalPlan,
        inner: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
        complex: &[Expr],
        output_rows: f64,
    ) -> PhysicalPlan {
        let mut predicates: Vec<Expr> = edges.iter().map(|e| e.to_expr()).collect();
        predicates.extend(complex.iter().cloned());
        let cost = self.cost_model.nested_loop_join(
            outer.cost,
            inner.cost,
            outer.estimated_rows,
            inner.estimated_rows,
            output_rows,
        );
        PhysicalPlan {
            kind: PlanKind::NestedLoopJoin {
                predicate: conjoin(&predicates),
            },
            schema: outer.schema.join(&inner.schema),
            estimated_rows: output_rows,
            cost,
            rel_set: outer.rel_set.union(inner.rel_set),
            children: vec![outer.clone(), inner.clone()],
        }
    }

    /// An index nested-loop join with `inner` as the indexed base relation, if possible.
    fn index_nl_join(
        &self,
        outer: &PhysicalPlan,
        inner: &PhysicalPlan,
        edges: &[&crate::spec::JoinEdge],
        complex: &[Expr],
        output_rows: f64,
    ) -> Option<PhysicalPlan> {
        let (chosen_idx, inner_col, outer_col) = self.index_nl_key(inner, edges)?;
        let inner_rel = inner.rel_set.min_index().expect("single relation");
        let relation = &self.spec.relations[inner_rel];

        // Remaining join edges (beyond the index key) plus complex predicates are
        // residual filters on the joined row.
        let mut residual: Vec<Expr> = edges
            .iter()
            .enumerate()
            .filter(|(edge_idx, _)| *edge_idx != chosen_idx)
            .map(|(_, e)| e.to_expr())
            .collect();
        residual.extend(complex.iter().cloned());

        let inner_predicate = conjoin(&self.spec.local_predicates[inner_rel]);
        let cost = self.index_nl_cost_for(outer, inner_rel, edges.len(), complex.len(), output_rows);
        Some(PhysicalPlan {
            kind: PlanKind::IndexNestedLoopJoin {
                inner_rel,
                inner_alias: relation.alias.clone(),
                inner_table: relation.table.clone(),
                outer_key: outer_col,
                inner_key: inner_col.name.clone(),
                inner_predicate,
                residual: conjoin(&residual),
            },
            schema: outer.schema.join(&relation.schema),
            estimated_rows: output_rows,
            cost,
            rel_set: outer.rel_set.union(inner.rel_set),
            children: vec![outer.clone()],
        })
    }
}

/// Enumerate every connected-subgraph / connected-complement pair of the join graph
/// (each unordered pair is emitted once).
pub fn enumerate_csg_cmp_pairs(graph: &JoinGraph, n: usize) -> Vec<(RelSet, RelSet)> {
    let mut pairs = Vec::new();
    for i in (0..n).rev() {
        let start = RelSet::single(i);
        emit_csg(graph, start, &mut pairs);
        enumerate_csg_rec(graph, start, b_set(i), &mut pairs);
    }
    pairs
}

/// The "prohibited" set {0, ..., i}: nodes that earlier iterations are responsible for.
fn b_set(i: usize) -> RelSet {
    RelSet::all(i + 1)
}

fn enumerate_csg_rec(
    graph: &JoinGraph,
    set: RelSet,
    prohibited: RelSet,
    pairs: &mut Vec<(RelSet, RelSet)>,
) {
    let neighbors = graph.neighbors(set).difference(prohibited);
    if neighbors.is_empty() {
        return;
    }
    for subset in neighbors.nonempty_subsets() {
        emit_csg(graph, set.union(subset), pairs);
    }
    for subset in neighbors.nonempty_subsets() {
        enumerate_csg_rec(graph, set.union(subset), prohibited.union(neighbors), pairs);
    }
}

fn emit_csg(graph: &JoinGraph, s1: RelSet, pairs: &mut Vec<(RelSet, RelSet)>) {
    let min = s1.min_index().expect("csg is non-empty");
    let prohibited = s1.union(b_set(min));
    let neighbors = graph.neighbors(s1).difference(prohibited);
    // Iterate neighbors in descending order, as in the original algorithm
    // (allocation-free bitset walk from the highest set bit down).
    for i in neighbors.iter_descending() {
        let s2 = RelSet::single(i);
        pairs.push((s1, s2));
        enumerate_cmp_rec(
            graph,
            s1,
            s2,
            prohibited.union(b_set(i).intersect(neighbors)),
            pairs,
        );
    }
}

fn enumerate_cmp_rec(
    graph: &JoinGraph,
    s1: RelSet,
    s2: RelSet,
    prohibited: RelSet,
    pairs: &mut Vec<(RelSet, RelSet)>,
) {
    let neighbors = graph.neighbors(s2).difference(prohibited);
    if neighbors.is_empty() {
        return;
    }
    for subset in neighbors.nonempty_subsets() {
        pairs.push((s1, s2.union(subset)));
    }
    for subset in neighbors.nonempty_subsets() {
        enumerate_cmp_rec(graph, s1, s2.union(subset), prohibited.union(neighbors), pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JoinEdge, RelationSpec};
    use reopt_expr::ColumnRef;
    use reopt_sql::{SelectExpr, SelectItem};
    use reopt_storage::{Column, DataType, Schema};
    use std::collections::HashSet;

    /// Build a QuerySpec with the given undirected edges over `n` relations.
    fn spec_with_edges(n: usize, edges: &[(usize, usize)]) -> QuerySpec {
        let relations: Vec<RelationSpec> = (0..n)
            .map(|i| RelationSpec {
                index: i,
                alias: format!("r{i}"),
                table: format!("table{i}"),
                schema: Schema::new(vec![Column::new("id", DataType::Int)])
                    .qualified(&format!("r{i}")),
            })
            .collect();
        let join_edges = edges
            .iter()
            .map(|&(a, b)| JoinEdge {
                left_rel: a,
                left_column: ColumnRef::qualified(format!("r{a}"), "id"),
                right_rel: b,
                right_column: ColumnRef::qualified(format!("r{b}"), "id"),
            })
            .collect();
        QuerySpec {
            local_predicates: vec![Vec::new(); n],
            relations,
            join_edges,
            complex_predicates: vec![],
            output: vec![SelectItem {
                expr: SelectExpr::Wildcard,
                alias: None,
            }],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    /// Brute-force enumeration of csg-cmp pairs for validation: every connected set S1,
    /// every connected S2 disjoint from S1 with an edge between, counted once per
    /// unordered pair.
    fn brute_force_pairs(graph: &JoinGraph, spec: &QuerySpec, n: usize) -> usize {
        let mut count = 0;
        let all = 1u64 << n;
        for m1 in 1..all {
            let s1 = RelSet::from_mask(m1);
            if !graph.is_connected(s1) {
                continue;
            }
            for m2 in (m1 + 1)..all {
                let s2 = RelSet::from_mask(m2);
                if !s1.is_disjoint(s2) || !graph.is_connected(s2) {
                    continue;
                }
                if !spec.edges_between(s1, s2).is_empty() {
                    count += 1;
                }
            }
        }
        count
    }

    fn assert_pair_set_valid(n: usize, edges: &[(usize, usize)]) {
        let spec = spec_with_edges(n, edges);
        let graph = JoinGraph::new(&spec);
        let pairs = enumerate_csg_cmp_pairs(&graph, n);
        // No duplicates (as unordered pairs) and every pair valid.
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        for (s1, s2) in &pairs {
            assert!(graph.is_connected(*s1), "{s1} not connected");
            assert!(graph.is_connected(*s2), "{s2} not connected");
            assert!(s1.is_disjoint(*s2));
            assert!(!spec.edges_between(*s1, *s2).is_empty());
            let key = if s1.mask() < s2.mask() {
                (s1.mask(), s2.mask())
            } else {
                (s2.mask(), s1.mask())
            };
            assert!(seen.insert(key), "duplicate pair {s1} / {s2}");
        }
        assert_eq!(
            pairs.len(),
            brute_force_pairs(&graph, &spec, n),
            "pair count mismatch for n={n}, edges={edges:?}"
        );
    }

    #[test]
    fn dpccp_pairs_chain() {
        assert_pair_set_valid(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_pair_set_valid(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn dpccp_pairs_star() {
        assert_pair_set_valid(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    }

    #[test]
    fn dpccp_pairs_cycle_and_clique() {
        assert_pair_set_valid(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_pair_set_valid(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn dpccp_pairs_snowflake() {
        // A small snowflake: hub 0, spokes 1-3, and leaves hanging off the spokes.
        assert_pair_set_valid(7, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 6)]);
    }

    #[test]
    fn dpccp_handles_two_relations() {
        assert_pair_set_valid(2, &[(0, 1)]);
        let spec = spec_with_edges(2, &[(0, 1)]);
        let graph = JoinGraph::new(&spec);
        let pairs = enumerate_csg_cmp_pairs(&graph, 2);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn csg_count_matches_known_chain_formula() {
        // For a chain of n nodes the number of csg-cmp pairs is n*(n-1)*(n+1)/6.
        for n in 2..=8 {
            let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let spec = spec_with_edges(n, &edges);
            let graph = JoinGraph::new(&spec);
            let pairs = enumerate_csg_cmp_pairs(&graph, n);
            assert_eq!(pairs.len(), n * (n - 1) * (n + 1) / 6, "chain of {n}");
        }
    }
}
