//! # reopt-planner
//!
//! A PostgreSQL-style cost-based query optimizer, built from scratch so that the paper's
//! experiments (cardinality injection, perfect-(n) oracles, re-optimization) have the
//! hooks they need:
//!
//! * [`spec`] / [`binder`] — turn a parsed SELECT into a bound [`QuerySpec`]: base
//!   relations with aliases, per-relation filter predicates, equi-join edges, residual
//!   predicates and the output (projection / aggregation) description.
//! * [`relset`] / [`graph`] — bitset relation sets and the join graph (Figures 3 and 4
//!   of the paper show such graphs for JOB queries 6d and 18a).
//! * [`cardinality`] — selectivity and join-cardinality estimation under the textbook
//!   uniformity + independence assumptions, with [`CardinalityOverrides`] to inject
//!   arbitrary (e.g. true) cardinalities per relation subset — the mechanism the paper
//!   added to PostgreSQL 10.1.
//! * [`cost`] — a PostgreSQL-flavoured cost model (`cpu_tuple_cost`, `random_page_cost`,
//!   hash/merge/nested-loop join costing, access-path costing).
//! * [`enumerate`] — DPccp join-order enumeration over connected subgraphs (bushy plans,
//!   no Cartesian products) with a greedy (GOO) fallback beyond a configurable relation
//!   count, mirroring PostgreSQL's GEQO threshold.
//! * [`partial`] — plan-from-partial-state: collapse an already-materialized relation
//!   subset into a virtual leaf so join enumeration is seeded with the pre-joined set
//!   (the mid-query re-optimization hook).
//! * [`plan`] / [`optimizer`] / [`explain`] — physical plan construction and rendering.

pub mod binder;
pub mod cardinality;
pub mod cost;
pub mod enumerate;
pub mod error;
pub mod explain;
pub mod feedback;
pub mod graph;
pub mod optimizer;
pub mod partial;
pub mod plan;
pub mod relset;
pub mod spec;

pub use binder::bind_select;
pub use cardinality::{CardinalityEstimator, CardinalityOverrides, EstimationLog, Exactness};
pub use cost::{Cost, CostModel};
pub use enumerate::{EnumerationAlgorithm, JoinEnumerator};
pub use error::PlanError;
pub use explain::explain_plan;
pub use feedback::{feedback_key, relation_fingerprint, seed_overrides_from_cache};
pub use graph::JoinGraph;
pub use optimizer::{Optimizer, OptimizerConfig, PlannedQuery};
pub use partial::{collapse_spec, remap_rel_set, CollapsedSpec};
pub use plan::{AggregateExpr, JoinAlgorithm, OutputExpr, PhysicalPlan, PlanKind, ScanKind};
pub use relset::RelSet;
pub use spec::{JoinEdge, QuerySpec, RelationSpec};
