//! The bound logical query: relations, predicates, join edges and output shape.

use crate::relset::RelSet;
use reopt_expr::{referenced_qualifiers, ColumnRef, Expr};
use reopt_sql::{OrderByItem, SelectItem};
use reopt_storage::Schema;

/// One base relation in the FROM list.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSpec {
    /// Position in the FROM list (and bit index in [`RelSet`]s).
    pub index: usize,
    /// The alias used to qualify columns.
    pub alias: String,
    /// The underlying table name in the catalog.
    pub table: String,
    /// The relation's schema, with every column qualified by the alias.
    pub schema: Schema,
}

/// An equi-join edge `left.column = right.column` between two relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Index of the relation on the left side.
    pub left_rel: usize,
    /// Qualified column reference on the left side.
    pub left_column: ColumnRef,
    /// Index of the relation on the right side.
    pub right_rel: usize,
    /// Qualified column reference on the right side.
    pub right_column: ColumnRef,
}

impl JoinEdge {
    /// The set `{left_rel, right_rel}`.
    pub fn rel_set(&self) -> RelSet {
        RelSet::single(self.left_rel).insert(self.right_rel)
    }

    /// Whether the edge connects the two (disjoint) sets.
    pub fn connects(&self, a: RelSet, b: RelSet) -> bool {
        (a.contains(self.left_rel) && b.contains(self.right_rel))
            || (a.contains(self.right_rel) && b.contains(self.left_rel))
    }

    /// The edge as an expression `left.column = right.column`.
    pub fn to_expr(&self) -> Expr {
        Expr::eq(
            Expr::Column(self.left_column.clone()),
            Expr::Column(self.right_column.clone()),
        )
    }

    /// The join key for a given side, oriented so that `for_set` contains the returned
    /// column's relation. Returns `(this_side, other_side)`.
    pub fn oriented(&self, for_set: RelSet) -> Option<(ColumnRef, ColumnRef)> {
        if for_set.contains(self.left_rel) && !for_set.contains(self.right_rel) {
            Some((self.left_column.clone(), self.right_column.clone()))
        } else if for_set.contains(self.right_rel) && !for_set.contains(self.left_rel) {
            Some((self.right_column.clone(), self.left_column.clone()))
        } else {
            None
        }
    }
}

/// A bound query: everything the optimizer needs to know about one SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Base relations, in FROM order.
    pub relations: Vec<RelationSpec>,
    /// Single-relation filter predicates, indexed by relation.
    pub local_predicates: Vec<Vec<Expr>>,
    /// Equi-join edges.
    pub join_edges: Vec<JoinEdge>,
    /// Conjuncts that touch several relations but are not simple equi-joins
    /// (e.g. `a.x + b.y > 10`). Applied as residual filters once all referenced
    /// relations are joined.
    pub complex_predicates: Vec<(RelSet, Expr)>,
    /// The SELECT list.
    pub output: Vec<SelectItem>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT.
    pub limit: Option<usize>,
}

impl QuerySpec {
    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The set of all relations.
    pub fn all_relations(&self) -> RelSet {
        RelSet::all(self.relations.len())
    }

    /// Find a relation index by alias.
    pub fn relation_by_alias(&self, alias: &str) -> Option<usize> {
        self.relations
            .iter()
            .position(|r| r.alias.eq_ignore_ascii_case(alias))
    }

    /// The relation set referenced by an expression (via its column qualifiers).
    /// Qualifiers that do not match any alias are ignored.
    pub fn rel_set_of(&self, expr: &Expr) -> RelSet {
        let mut set = RelSet::EMPTY;
        for qualifier in referenced_qualifiers(expr) {
            if let Some(idx) = self.relation_by_alias(&qualifier) {
                set = set.insert(idx);
            }
        }
        set
    }

    /// All join edges with both endpoints inside `set`.
    pub fn edges_within(&self, set: RelSet) -> Vec<&JoinEdge> {
        self.join_edges
            .iter()
            .filter(|e| set.contains(e.left_rel) && set.contains(e.right_rel))
            .collect()
    }

    /// Indexes (into [`QuerySpec::join_edges`]) of the edges fully inside `set`.
    /// Allocation-free counterpart of [`QuerySpec::edges_within`] for callers that
    /// memoize per-edge state (the cardinality estimator's selectivity memo).
    pub fn edge_indexes_within(&self, set: RelSet) -> impl Iterator<Item = usize> + '_ {
        self.join_edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| set.contains(e.left_rel) && set.contains(e.right_rel))
            .map(|(i, _)| i)
    }

    /// All join edges connecting the disjoint sets `a` and `b`.
    pub fn edges_between(&self, a: RelSet, b: RelSet) -> Vec<&JoinEdge> {
        self.join_edges.iter().filter(|e| e.connects(a, b)).collect()
    }

    /// Complex (non-equi-join multi-relation) predicates that become applicable exactly
    /// when joining `a` and `b`: every referenced relation is inside `a ∪ b` but not
    /// inside `a` or `b` alone.
    pub fn complex_predicates_for_join(&self, a: RelSet, b: RelSet) -> Vec<&Expr> {
        let combined = a.union(b);
        self.complex_predicates
            .iter()
            .filter(|(set, _)| {
                set.is_subset_of(combined) && !set.is_subset_of(a) && !set.is_subset_of(b)
            })
            .map(|(_, e)| e)
            .collect()
    }

    /// The schema of the join of all relations in `set` (columns qualified by alias,
    /// concatenated in relation-index order).
    pub fn schema_of(&self, set: RelSet) -> Schema {
        let mut schema = Schema::empty();
        for idx in set.iter() {
            schema = schema.join(&self.relations[idx].schema);
        }
        schema
    }

    /// Total number of join edges.
    pub fn edge_count(&self) -> usize {
        self.join_edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_sql::SelectExpr;
    use reopt_storage::{Column, DataType};

    fn rel(index: usize, alias: &str, table: &str) -> RelationSpec {
        RelationSpec {
            index,
            alias: alias.into(),
            table: table.into(),
            schema: Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("movie_id", DataType::Int),
            ])
            .qualified(alias),
        }
    }

    fn spec() -> QuerySpec {
        // t -(id = mk.movie_id)- mk -(keyword_id = k.id)- k
        QuerySpec {
            relations: vec![rel(0, "t", "title"), rel(1, "mk", "movie_keyword"), rel(2, "k", "keyword")],
            local_predicates: vec![vec![], vec![], vec![]],
            join_edges: vec![
                JoinEdge {
                    left_rel: 0,
                    left_column: ColumnRef::qualified("t", "id"),
                    right_rel: 1,
                    right_column: ColumnRef::qualified("mk", "movie_id"),
                },
                JoinEdge {
                    left_rel: 1,
                    left_column: ColumnRef::qualified("mk", "id"),
                    right_rel: 2,
                    right_column: ColumnRef::qualified("k", "id"),
                },
            ],
            complex_predicates: vec![(
                RelSet::from_indexes([0, 2]),
                Expr::binary(
                    reopt_expr::BinaryOp::Gt,
                    Expr::col("t", "id"),
                    Expr::col("k", "id"),
                ),
            )],
            output: vec![SelectItem {
                expr: SelectExpr::Wildcard,
                alias: None,
            }],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn relation_lookup_and_sets() {
        let spec = spec();
        assert_eq!(spec.relation_count(), 3);
        assert_eq!(spec.relation_by_alias("MK"), Some(1));
        assert_eq!(spec.relation_by_alias("zzz"), None);
        assert_eq!(spec.all_relations(), RelSet::all(3));
    }

    #[test]
    fn rel_set_of_expression() {
        let spec = spec();
        let e = Expr::eq(Expr::col("t", "id"), Expr::col("k", "id"));
        assert_eq!(spec.rel_set_of(&e), RelSet::from_indexes([0, 2]));
        let e = Expr::eq(Expr::col("unknown", "x"), Expr::lit(1));
        assert_eq!(spec.rel_set_of(&e), RelSet::EMPTY);
    }

    #[test]
    fn edges_within_and_between() {
        let spec = spec();
        assert_eq!(spec.edges_within(RelSet::from_indexes([0, 1])).len(), 1);
        assert_eq!(spec.edges_within(RelSet::all(3)).len(), 2);
        assert_eq!(spec.edges_within(RelSet::from_indexes([0, 2])).len(), 0);
        let between = spec.edges_between(RelSet::single(0), RelSet::from_indexes([1, 2]));
        assert_eq!(between.len(), 1);
        assert_eq!(spec.edge_count(), 2);
    }

    #[test]
    fn edge_orientation_and_expr() {
        let spec = spec();
        let edge = &spec.join_edges[0];
        assert_eq!(edge.rel_set(), RelSet::from_indexes([0, 1]));
        let (own, other) = edge.oriented(RelSet::single(1)).unwrap();
        assert_eq!(own.qualifier.as_deref(), Some("mk"));
        assert_eq!(other.qualifier.as_deref(), Some("t"));
        assert!(edge.oriented(RelSet::from_indexes([0, 1])).is_none());
        assert_eq!(edge.to_expr().to_sql(), "t.id = mk.movie_id");
        assert!(edge.connects(RelSet::single(0), RelSet::single(1)));
        assert!(!edge.connects(RelSet::single(0), RelSet::single(2)));
    }

    #[test]
    fn complex_predicates_applied_at_the_right_join() {
        let spec = spec();
        // Joining {0} with {1}: complex predicate over {0,2} not yet applicable.
        assert!(spec
            .complex_predicates_for_join(RelSet::single(0), RelSet::single(1))
            .is_empty());
        // Joining {0,1} with {2}: now applicable.
        assert_eq!(
            spec.complex_predicates_for_join(RelSet::from_indexes([0, 1]), RelSet::single(2))
                .len(),
            1
        );
        // Joining {0,2} with {1}: already subsumed by one side, not applied again.
        assert!(spec
            .complex_predicates_for_join(RelSet::from_indexes([0, 2]), RelSet::single(1))
            .is_empty());
    }

    #[test]
    fn schema_of_concatenates_in_index_order() {
        let spec = spec();
        let schema = spec.schema_of(RelSet::from_indexes([0, 2]));
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.column(0).unwrap().qualified_name(), "t.id");
        assert_eq!(schema.column(2).unwrap().qualified_name(), "k.id");
    }
}
