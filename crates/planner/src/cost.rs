//! The cost model.
//!
//! The constants follow PostgreSQL's planner cost parameters (`seq_page_cost`,
//! `random_page_cost`, `cpu_tuple_cost`, `cpu_index_tuple_cost`, `cpu_operator_cost`).
//! The paper's experimental setup has every table and index cached in memory, so I/O
//! terms are charged at the (low) cached-page rate and the model is dominated by CPU
//! terms — which is also what makes join-order mistakes expensive in the paper: a
//! nested-loop join over a badly under-estimated intermediate result does far more
//! per-tuple work than a hash join would have.
//!
//! Costs are unit-less, comparable only to each other, exactly as in PostgreSQL.

use std::fmt;

/// A plan cost: the cost to produce the first row and the cost to produce all rows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Cost before the first output row can be produced.
    pub startup: f64,
    /// Total cost to produce all output rows.
    pub total: f64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        startup: 0.0,
        total: 0.0,
    };

    /// Create a cost.
    pub fn new(startup: f64, total: f64) -> Self {
        Self { startup, total }
    }

    /// Add an amount to the total only.
    pub fn add_run_cost(self, amount: f64) -> Cost {
        Cost {
            startup: self.startup,
            total: self.total + amount,
        }
    }

    /// Whether this cost is cheaper than another (by total, then startup).
    pub fn is_cheaper_than(self, other: Cost) -> bool {
        if self.total != other.total {
            self.total < other.total
        } else {
            self.startup < other.startup
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;

    /// Add two costs component-wise.
    fn add(self, other: Cost) -> Cost {
        Cost {
            startup: self.startup + other.startup,
            total: self.total + other.total,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}..{:.2}", self.startup, self.total)
    }
}

/// Cost model parameters and formulas.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of a sequentially fetched page (tables are cached, so this is small).
    pub seq_page_cost: f64,
    /// Cost of a randomly fetched page.
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of evaluating one operator or predicate.
    pub cpu_operator_cost: f64,
    /// Bytes per page, used to convert row widths into page counts.
    pub page_size: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            page_size: 8192.0,
        }
    }
}

impl CostModel {
    /// Number of pages occupied by `rows` rows of `width` bytes.
    pub fn pages_for(&self, rows: f64, width: f64) -> f64 {
        ((rows * width.max(1.0)) / self.page_size).ceil().max(1.0)
    }

    /// Cost of a sequential scan over a table of `table_rows` rows of `width` bytes,
    /// evaluating `predicates` filter predicates per row.
    pub fn seq_scan(&self, table_rows: f64, width: f64, predicates: usize) -> Cost {
        let io = self.pages_for(table_rows, width) * self.seq_page_cost;
        let cpu =
            table_rows * (self.cpu_tuple_cost + self.cpu_operator_cost * predicates as f64);
        Cost::new(0.0, io + cpu)
    }

    /// Cost of an index scan returning `matched_rows` of a table with `table_rows` rows,
    /// evaluating `residual_predicates` per matched row.
    pub fn index_scan(
        &self,
        table_rows: f64,
        matched_rows: f64,
        residual_predicates: usize,
    ) -> Cost {
        let descent = self.cpu_operator_cost * (table_rows.max(2.0)).log2();
        let heap = matched_rows * self.random_page_cost.min(1.0);
        let cpu = matched_rows
            * (self.cpu_index_tuple_cost
                + self.cpu_tuple_cost
                + self.cpu_operator_cost * residual_predicates as f64);
        Cost::new(descent, descent + heap + cpu)
    }

    /// Cost of a hash join: build on the inner input, probe with the outer input.
    pub fn hash_join(
        &self,
        outer: Cost,
        inner: Cost,
        outer_rows: f64,
        inner_rows: f64,
        output_rows: f64,
        key_count: usize,
    ) -> Cost {
        let keys = key_count.max(1) as f64;
        let build = inner_rows * (self.cpu_operator_cost * keys + self.cpu_tuple_cost);
        let probe = outer_rows * self.cpu_operator_cost * keys;
        let emit = output_rows * self.cpu_tuple_cost;
        Cost::new(
            inner.total + build,
            outer.total + inner.total + build + probe + emit,
        )
    }

    /// Cost of a plain nested-loop join with a materialized inner side.
    pub fn nested_loop_join(
        &self,
        outer: Cost,
        inner: Cost,
        outer_rows: f64,
        inner_rows: f64,
        output_rows: f64,
    ) -> Cost {
        let compare = outer_rows * inner_rows * self.cpu_operator_cost;
        let emit = output_rows * self.cpu_tuple_cost;
        Cost::new(
            outer.startup + inner.total,
            outer.total + inner.total + compare + emit,
        )
    }

    /// Cost of an index nested-loop join: for each outer row, an index lookup on the
    /// inner base table followed by fetching the matching rows.
    pub fn index_nested_loop_join(
        &self,
        outer: Cost,
        outer_rows: f64,
        inner_table_rows: f64,
        matches_per_lookup: f64,
        output_rows: f64,
        residual_predicates: usize,
    ) -> Cost {
        let per_lookup = self.cpu_operator_cost * (inner_table_rows.max(2.0)).log2()
            + self.cpu_index_tuple_cost
            + matches_per_lookup
                * (self.cpu_tuple_cost + self.cpu_operator_cost * residual_predicates as f64);
        let emit = output_rows * self.cpu_tuple_cost;
        Cost::new(outer.startup, outer.total + outer_rows * per_lookup + emit)
    }

    /// Cost of sorting `rows` rows with `keys` sort keys.
    pub fn sort(&self, input: Cost, rows: f64, keys: usize) -> Cost {
        let n = rows.max(2.0);
        let cmp = n * n.log2() * self.cpu_operator_cost * keys.max(1) as f64;
        Cost::new(input.total + cmp, input.total + cmp + rows * self.cpu_tuple_cost)
    }

    /// Cost of a sort-merge join (sorting both inputs, then merging).
    pub fn merge_join(
        &self,
        outer: Cost,
        inner: Cost,
        outer_rows: f64,
        inner_rows: f64,
        output_rows: f64,
        key_count: usize,
    ) -> Cost {
        let sorted_outer = self.sort(outer, outer_rows, key_count);
        let sorted_inner = self.sort(inner, inner_rows, key_count);
        let merge = (outer_rows + inner_rows) * self.cpu_operator_cost * key_count.max(1) as f64;
        let emit = output_rows * self.cpu_tuple_cost;
        Cost::new(
            sorted_outer.startup + sorted_inner.startup,
            sorted_outer.total + sorted_inner.total + merge + emit,
        )
    }

    /// Cost of aggregating `input_rows` into `groups` groups with `aggregate_count`
    /// aggregate expressions.
    pub fn aggregate(&self, input: Cost, input_rows: f64, groups: f64, aggregates: usize) -> Cost {
        let work = input_rows * self.cpu_operator_cost * aggregates.max(1) as f64;
        Cost::new(
            input.total + work,
            input.total + work + groups * self.cpu_tuple_cost,
        )
    }

    /// Cost of projecting `rows` rows through `expressions` expressions.
    pub fn project(&self, input: Cost, rows: f64, expressions: usize) -> Cost {
        input.add_run_cost(rows * self.cpu_operator_cost * expressions.max(1) as f64)
    }

    /// Cost of materializing `rows` rows of `width` bytes into a temporary table
    /// (used to charge the re-optimization controller for CREATE TEMP TABLE AS).
    pub fn materialize(&self, input: Cost, rows: f64, width: f64) -> Cost {
        let pages = self.pages_for(rows, width);
        input.add_run_cost(rows * self.cpu_tuple_cost + pages * self.seq_page_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_and_arithmetic() {
        let a = Cost::new(1.0, 10.0);
        let b = Cost::new(0.5, 12.0);
        assert!(a.is_cheaper_than(b));
        assert!(!b.is_cheaper_than(a));
        let c = Cost::new(0.5, 10.0);
        assert!(c.is_cheaper_than(a));
        assert_eq!(a + b, Cost::new(1.5, 22.0));
        assert_eq!(a.add_run_cost(5.0), Cost::new(1.0, 15.0));
        assert_eq!(format!("{a}"), "1.00..10.00");
    }

    #[test]
    fn seq_scan_scales_with_rows() {
        let m = CostModel::default();
        let small = m.seq_scan(1_000.0, 50.0, 1);
        let large = m.seq_scan(100_000.0, 50.0, 1);
        assert!(large.total > small.total * 50.0);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_predicates() {
        let m = CostModel::default();
        let seq = m.seq_scan(1_000_000.0, 50.0, 1);
        let idx = m.index_scan(1_000_000.0, 10.0, 0);
        assert!(idx.total < seq.total);
        // ... but not when most of the table matches.
        let idx_all = m.index_scan(1_000_000.0, 900_000.0, 0);
        assert!(idx_all.total > seq.total);
    }

    #[test]
    fn hash_join_beats_nested_loop_on_large_inputs() {
        let m = CostModel::default();
        let child = Cost::ZERO;
        let hash = m.hash_join(child, child, 100_000.0, 100_000.0, 100_000.0, 1);
        let nl = m.nested_loop_join(child, child, 100_000.0, 100_000.0, 100_000.0);
        assert!(hash.total < nl.total);
    }

    #[test]
    fn index_nested_loop_wins_for_tiny_outer() {
        let m = CostModel::default();
        let child = Cost::ZERO;
        // 5 outer rows probing a 1M-row table: INL should beat hashing the 1M rows.
        let inl = m.index_nested_loop_join(child, 5.0, 1_000_000.0, 2.0, 10.0, 0);
        let hash = m.hash_join(child, child, 5.0, 1_000_000.0, 10.0, 1);
        assert!(inl.total < hash.total);
        // 1M outer rows: hashing wins.
        let inl = m.index_nested_loop_join(child, 1_000_000.0, 1_000_000.0, 2.0, 2_000_000.0, 0);
        let hash = m.hash_join(child, child, 1_000_000.0, 1_000_000.0, 2_000_000.0, 1);
        assert!(hash.total < inl.total);
    }

    #[test]
    fn merge_join_costs_include_sorts() {
        let m = CostModel::default();
        let child = Cost::ZERO;
        let merge = m.merge_join(child, child, 10_000.0, 10_000.0, 10_000.0, 1);
        let hash = m.hash_join(child, child, 10_000.0, 10_000.0, 10_000.0, 1);
        assert!(merge.total > hash.total);
    }

    #[test]
    fn aggregate_project_materialize_accumulate_input_cost() {
        let m = CostModel::default();
        let input = Cost::new(0.0, 100.0);
        assert!(m.aggregate(input, 1000.0, 10.0, 2).total > 100.0);
        assert!(m.project(input, 1000.0, 3).total > 100.0);
        assert!(m.materialize(input, 1000.0, 64.0).total > 100.0);
        assert!(m.sort(input, 1000.0, 1).total > 100.0);
    }

    #[test]
    fn pages_for_has_floor_of_one() {
        let m = CostModel::default();
        assert_eq!(m.pages_for(1.0, 8.0), 1.0);
        assert!(m.pages_for(1_000_000.0, 100.0) > 10_000.0);
    }
}
