//! The join graph: which relations are connected by equi-join predicates.
//!
//! Figures 3 and 4 of the paper draw the join graphs of JOB queries 6d and 18a; the
//! [`JoinGraph::to_dot`] and [`JoinGraph::to_ascii`] renderers reproduce those figures
//! from any bound query.

use crate::relset::RelSet;
use crate::spec::QuerySpec;

/// Adjacency information derived from a [`QuerySpec`].
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// `adjacency[i]` is the set of relations sharing a join edge with relation `i`.
    adjacency: Vec<RelSet>,
    /// Number of relations.
    n: usize,
}

impl JoinGraph {
    /// Build the join graph of a query.
    pub fn new(spec: &QuerySpec) -> Self {
        let n = spec.relation_count();
        let mut adjacency = vec![RelSet::EMPTY; n];
        for edge in &spec.join_edges {
            adjacency[edge.left_rel] = adjacency[edge.left_rel].insert(edge.right_rel);
            adjacency[edge.right_rel] = adjacency[edge.right_rel].insert(edge.left_rel);
        }
        Self { adjacency, n }
    }

    /// Number of relations (nodes).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Neighbors of a single relation.
    pub fn neighbors_of(&self, index: usize) -> RelSet {
        self.adjacency.get(index).copied().unwrap_or(RelSet::EMPTY)
    }

    /// Neighbors of a set of relations: every relation adjacent to a member of `set`,
    /// excluding the set itself.
    pub fn neighbors(&self, set: RelSet) -> RelSet {
        let mut out = RelSet::EMPTY;
        for idx in set.iter() {
            out = out.union(self.adjacency[idx]);
        }
        out.difference(set)
    }

    /// Whether the induced subgraph on `set` is connected (the empty set and singletons
    /// are considered connected).
    pub fn is_connected(&self, set: RelSet) -> bool {
        let Some(start) = set.min_index() else {
            return true;
        };
        let mut reached = RelSet::single(start);
        loop {
            let frontier = self.neighbors(reached).intersect(set);
            if frontier.is_empty() {
                break;
            }
            reached = reached.union(frontier);
        }
        reached == set
    }

    /// Connected components of the full graph.
    pub fn connected_components(&self) -> Vec<RelSet> {
        let mut remaining = RelSet::all(self.n);
        let mut components = Vec::new();
        while let Some(start) = remaining.min_index() {
            let mut component = RelSet::single(start);
            loop {
                let frontier = self.neighbors(component).intersect(remaining);
                if frontier.is_empty() {
                    break;
                }
                component = component.union(frontier);
            }
            components.push(component);
            remaining = remaining.difference(component);
        }
        components
    }

    /// Whether the whole graph is connected.
    pub fn is_fully_connected(&self) -> bool {
        self.n == 0 || self.is_connected(RelSet::all(self.n))
    }

    /// Render the graph in Graphviz DOT format, labelling nodes with their aliases
    /// (reproduces Figures 3 and 4 of the paper for queries 6d and 18a).
    pub fn to_dot(&self, spec: &QuerySpec) -> String {
        let mut out = String::from("graph join_graph {\n");
        for relation in &spec.relations {
            out.push_str(&format!(
                "  {} [label=\"{}\\n({})\"];\n",
                relation.alias, relation.alias, relation.table
            ));
        }
        for edge in &spec.join_edges {
            out.push_str(&format!(
                "  {} -- {} [label=\"{} = {}\"];\n",
                spec.relations[edge.left_rel].alias,
                spec.relations[edge.right_rel].alias,
                edge.left_column,
                edge.right_column
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Render the graph as a simple ASCII adjacency list.
    pub fn to_ascii(&self, spec: &QuerySpec) -> String {
        let mut out = String::new();
        for relation in &spec.relations {
            let neighbors: Vec<&str> = self
                .neighbors_of(relation.index)
                .iter()
                .map(|i| spec.relations[i].alias.as_str())
                .collect();
            out.push_str(&format!(
                "{:<6} -> {}\n",
                relation.alias,
                neighbors.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JoinEdge, RelationSpec};
    use reopt_expr::ColumnRef;
    use reopt_sql::{SelectExpr, SelectItem};
    use reopt_storage::{Column, DataType, Schema};

    /// A chain t0 - t1 - t2 plus an isolated edge t3 - t4 when `disconnect` is true.
    fn chain_spec(n: usize, disconnect: bool) -> QuerySpec {
        let relations: Vec<RelationSpec> = (0..n)
            .map(|i| RelationSpec {
                index: i,
                alias: format!("t{i}"),
                table: format!("table{i}"),
                schema: Schema::new(vec![Column::new("id", DataType::Int)])
                    .qualified(&format!("t{i}")),
            })
            .collect();
        let mut join_edges = Vec::new();
        for i in 0..n.saturating_sub(1) {
            if disconnect && i == n / 2 {
                continue;
            }
            join_edges.push(JoinEdge {
                left_rel: i,
                left_column: ColumnRef::qualified(format!("t{i}"), "id"),
                right_rel: i + 1,
                right_column: ColumnRef::qualified(format!("t{}", i + 1), "id"),
            });
        }
        QuerySpec {
            local_predicates: vec![Vec::new(); n],
            relations,
            join_edges,
            complex_predicates: vec![],
            output: vec![SelectItem {
                expr: SelectExpr::Wildcard,
                alias: None,
            }],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn neighbors_of_chain() {
        let spec = chain_spec(4, false);
        let graph = JoinGraph::new(&spec);
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.neighbors_of(0), RelSet::single(1));
        assert_eq!(graph.neighbors_of(1), RelSet::from_indexes([0, 2]));
        assert_eq!(
            graph.neighbors(RelSet::from_indexes([1, 2])),
            RelSet::from_indexes([0, 3])
        );
    }

    #[test]
    fn connectivity_checks() {
        let spec = chain_spec(5, false);
        let graph = JoinGraph::new(&spec);
        assert!(graph.is_fully_connected());
        assert!(graph.is_connected(RelSet::from_indexes([1, 2, 3])));
        assert!(!graph.is_connected(RelSet::from_indexes([0, 2])));
        assert!(graph.is_connected(RelSet::single(4)));
        assert!(graph.is_connected(RelSet::EMPTY));
    }

    #[test]
    fn disconnected_graph_components() {
        let spec = chain_spec(5, true);
        let graph = JoinGraph::new(&spec);
        assert!(!graph.is_fully_connected());
        let components = graph.connected_components();
        assert_eq!(components.len(), 2);
        assert_eq!(components[0].union(components[1]), RelSet::all(5));
    }

    #[test]
    fn single_node_graph() {
        let spec = chain_spec(1, false);
        let graph = JoinGraph::new(&spec);
        assert!(graph.is_fully_connected());
        assert_eq!(graph.connected_components(), vec![RelSet::single(0)]);
    }

    #[test]
    fn dot_and_ascii_rendering() {
        let spec = chain_spec(3, false);
        let graph = JoinGraph::new(&spec);
        let dot = graph.to_dot(&spec);
        assert!(dot.contains("graph join_graph"));
        assert!(dot.contains("t0 -- t1"));
        assert!(dot.contains("table2"));
        let ascii = graph.to_ascii(&spec);
        assert!(ascii.contains("t1"));
        assert!(ascii.contains("t0, t2"));
    }
}
