//! Plan-from-partial-state: seed join enumeration with pre-joined relation sets.
//!
//! The mid-query re-optimization controller suspends a running pipeline once a
//! pipeline breaker finishes materializing a badly mis-estimated subtree. At that
//! point the subtree's output — every row, with all of the subtree's local predicates
//! and join edges already applied — exists in memory (a completed hash-build side or
//! nested-loop inner). Rather than discarding that work, the controller registers the
//! rows as a *virtual leaf table* and asks the optimizer to re-plan only the
//! **remaining** join order.
//!
//! [`collapse_spec`] performs the query-level half of that: it rewrites a bound
//! [`QuerySpec`] so the materialized subset becomes a single base relation backed by
//! the virtual table. Because intermediate schemas in this engine keep every column of
//! every base relation (qualified by its original alias), no column renaming or
//! expression rewriting is needed — join edges, residual predicates, the SELECT list,
//! GROUP BY and ORDER BY continue to bind against the virtual relation's schema
//! verbatim. Join enumeration over the collapsed spec is therefore *seeded* with the
//! pre-joined set as one atomic leaf: DPccp can no longer split it, and the true
//! cardinality of the set (from the virtual table's ANALYZE statistics) anchors every
//! estimate above it.
//!
//! [`remap_rel_set`] translates relation subsets between the original and collapsed
//! indexings so that observed cardinalities from the suspended run can be re-injected
//! as [`CardinalityOverrides`](crate::CardinalityOverrides) for the re-planning round.
//!
//! The collapse also accepts a **mid-stream, partially-consumed** breaker set: when a
//! suspension is triggered by a streaming progress signal rather than the breaker's
//! own completion, a completed hash build elsewhere in the plan may already have been
//! partially probed by its parent. The buffered rows themselves are still the exact,
//! complete materialization of their subtree (breakers fully drain their input before
//! anything consumes them), so collapsing around such a set stays correct — the
//! re-planned remainder simply recomputes whatever probing was in flight. The only
//! constraints are structural and unchanged: the subset must be a non-empty proper
//! subset of the query's relations.

use crate::relset::RelSet;
use crate::spec::{JoinEdge, QuerySpec, RelationSpec};
use reopt_storage::Schema;

/// The result of collapsing a relation subset into a virtual leaf relation.
#[derive(Debug, Clone, PartialEq)]
pub struct CollapsedSpec {
    /// The rewritten query: the subset's relations replaced by one virtual relation.
    pub spec: QuerySpec,
    /// The subset (in the *original* indexing) that was collapsed.
    pub subset: RelSet,
    /// Maps old relation indexes to new ones; `None` for members of the collapsed
    /// subset (they are all represented by [`CollapsedSpec::virtual_index`]).
    pub mapping: Vec<Option<usize>>,
    /// The index of the virtual relation in the new spec.
    pub virtual_index: usize,
}

impl CollapsedSpec {
    /// Translate a relation subset from the original indexing into this collapse's
    /// indexing (see [`remap_rel_set`]). Returns `None` when the set is inexpressible:
    /// interior to the virtual leaf, or partially overlapping it.
    pub fn remap(&self, set: RelSet) -> Option<RelSet> {
        remap_rel_set(set, self.subset, &self.mapping, self.virtual_index)
    }
}

/// Collapse `subset` into a single virtual relation named `alias`, backed by the
/// storage table `table` whose schema is the materialized subtree's output schema
/// (columns qualified by the *original* relation aliases).
///
/// Everything the subtree already computed is dropped from the collapsed spec: the
/// subset members' local predicates, the join edges fully inside the subset, and the
/// complex predicates fully inside the subset. Edges and predicates crossing the
/// boundary are kept verbatim — their column references still resolve because the
/// virtual relation's schema retains the original qualifiers.
///
/// # Panics
///
/// Panics if `subset` is empty or covers every relation of the query (there would be
/// nothing left to plan).
pub fn collapse_spec(
    spec: &QuerySpec,
    subset: RelSet,
    alias: &str,
    table: &str,
    schema: Schema,
) -> CollapsedSpec {
    assert!(!subset.is_empty(), "cannot collapse an empty subset");
    assert!(
        subset.is_proper_subset_of(spec.all_relations()),
        "cannot collapse the whole query"
    );

    let mut mapping: Vec<Option<usize>> = Vec::with_capacity(spec.relation_count());
    let mut relations: Vec<RelationSpec> = Vec::new();
    let mut local_predicates: Vec<Vec<reopt_expr::Expr>> = Vec::new();
    for relation in &spec.relations {
        if subset.contains(relation.index) {
            mapping.push(None);
        } else {
            let index = relations.len();
            mapping.push(Some(index));
            relations.push(RelationSpec {
                index,
                alias: relation.alias.clone(),
                table: relation.table.clone(),
                schema: relation.schema.clone(),
            });
            local_predicates.push(spec.local_predicates[relation.index].clone());
        }
    }
    let virtual_index = relations.len();
    relations.push(RelationSpec {
        index: virtual_index,
        alias: alias.to_string(),
        table: table.to_string(),
        schema,
    });
    // The virtual relation's predicates were all applied while materializing it.
    local_predicates.push(Vec::new());

    let map_rel = |old: usize| mapping[old].unwrap_or(virtual_index);

    let join_edges: Vec<JoinEdge> = spec
        .join_edges
        .iter()
        .filter(|edge| !(subset.contains(edge.left_rel) && subset.contains(edge.right_rel)))
        .map(|edge| JoinEdge {
            left_rel: map_rel(edge.left_rel),
            left_column: edge.left_column.clone(),
            right_rel: map_rel(edge.right_rel),
            right_column: edge.right_column.clone(),
        })
        .collect();

    let complex_predicates = spec
        .complex_predicates
        .iter()
        .filter(|(set, _)| !set.is_subset_of(subset))
        .map(|(set, predicate)| {
            let remapped = RelSet::from_indexes(set.iter().map(map_rel));
            (remapped, predicate.clone())
        })
        .collect();

    CollapsedSpec {
        spec: QuerySpec {
            relations,
            local_predicates,
            join_edges,
            complex_predicates,
            output: spec.output.clone(),
            group_by: spec.group_by.clone(),
            order_by: spec.order_by.clone(),
            limit: spec.limit,
        },
        subset,
        mapping,
        virtual_index,
    }
}

/// Translate a relation subset from the original indexing into the collapsed one.
///
/// Returns `None` when the set cannot be expressed in the collapsed spec: a strict
/// subset of the collapsed relations (its cardinality is interior to the virtual leaf)
/// or a partial overlap (the virtual leaf cannot be split). Sets disjoint from the
/// collapsed subset map member-wise; sets containing it map onto the remapped members
/// plus the virtual relation; the collapsed subset itself maps to the virtual
/// singleton.
pub fn remap_rel_set(
    set: RelSet,
    subset: RelSet,
    mapping: &[Option<usize>],
    virtual_index: usize,
) -> Option<RelSet> {
    if set.is_empty() {
        return None;
    }
    let outside = set.difference(subset);
    let mapped = RelSet::from_indexes(
        outside
            .iter()
            .map(|rel| mapping[rel].expect("relation outside the subset has a mapping")),
    );
    if set.is_disjoint(subset) {
        Some(mapped)
    } else if subset.is_subset_of(set) {
        Some(mapped.insert(virtual_index))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_expr::{ColumnRef, Expr};
    use reopt_sql::{SelectExpr, SelectItem};
    use reopt_storage::{Column, DataType};

    fn rel(index: usize, alias: &str, table: &str, columns: &[&str]) -> RelationSpec {
        RelationSpec {
            index,
            alias: alias.into(),
            table: table.into(),
            schema: Schema::new(
                columns
                    .iter()
                    .map(|c| Column::new(*c, DataType::Int))
                    .collect(),
            )
            .qualified(alias),
        }
    }

    /// A chain t -(id = mk.movie_id)- mk -(keyword_id = k.id)- k with a filter on k
    /// and a complex predicate across t and k.
    fn spec() -> QuerySpec {
        QuerySpec {
            relations: vec![
                rel(0, "t", "title", &["id", "production_year"]),
                rel(1, "mk", "movie_keyword", &["movie_id", "keyword_id"]),
                rel(2, "k", "keyword", &["id", "keyword"]),
            ],
            local_predicates: vec![
                vec![],
                vec![],
                vec![Expr::eq(Expr::col("k", "keyword"), Expr::lit(7))],
            ],
            join_edges: vec![
                JoinEdge {
                    left_rel: 0,
                    left_column: ColumnRef::qualified("t", "id"),
                    right_rel: 1,
                    right_column: ColumnRef::qualified("mk", "movie_id"),
                },
                JoinEdge {
                    left_rel: 1,
                    left_column: ColumnRef::qualified("mk", "keyword_id"),
                    right_rel: 2,
                    right_column: ColumnRef::qualified("k", "id"),
                },
            ],
            complex_predicates: vec![(
                RelSet::from_indexes([0, 2]),
                Expr::binary(
                    reopt_expr::BinaryOp::Gt,
                    Expr::col("t", "id"),
                    Expr::col("k", "id"),
                ),
            )],
            output: vec![SelectItem {
                expr: SelectExpr::Wildcard,
                alias: None,
            }],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    fn virtual_schema(spec: &QuerySpec, subset: RelSet) -> Schema {
        spec.schema_of(subset)
    }

    #[test]
    fn collapse_replaces_subset_with_virtual_leaf() {
        let spec = spec();
        let subset = RelSet::from_indexes([1, 2]);
        let collapsed = collapse_spec(
            &spec,
            subset,
            "mq1",
            "reopt_mq1",
            virtual_schema(&spec, subset),
        );

        assert_eq!(collapsed.spec.relation_count(), 2);
        assert_eq!(collapsed.mapping, vec![Some(0), None, None]);
        assert_eq!(collapsed.virtual_index, 1);
        // The surviving relation is re-indexed, the virtual one appended.
        assert_eq!(collapsed.spec.relations[0].alias, "t");
        assert_eq!(collapsed.spec.relations[0].index, 0);
        assert_eq!(collapsed.spec.relations[1].alias, "mq1");
        assert_eq!(collapsed.spec.relations[1].table, "reopt_mq1");
        // The k filter was applied inside the subtree and is gone; the virtual
        // relation carries no local predicates.
        assert!(collapsed.spec.local_predicates[1].is_empty());
        // The mk-k edge collapsed away; the t-mk edge now targets the virtual leaf
        // with its original column references intact.
        assert_eq!(collapsed.spec.join_edges.len(), 1);
        let edge = &collapsed.spec.join_edges[0];
        assert_eq!((edge.left_rel, edge.right_rel), (0, 1));
        assert_eq!(edge.right_column, ColumnRef::qualified("mk", "movie_id"));
        // The t/k complex predicate crosses the boundary: kept, with k mapped to the
        // virtual index.
        assert_eq!(collapsed.spec.complex_predicates.len(), 1);
        assert_eq!(
            collapsed.spec.complex_predicates[0].0,
            RelSet::from_indexes([0, 1])
        );
        // The virtual schema still binds the original qualified columns.
        let schema = &collapsed.spec.relations[1].schema;
        assert!(schema.index_of(Some("mk"), "movie_id").is_ok());
        assert!(schema.index_of(Some("k"), "keyword").is_ok());
    }

    #[test]
    fn collapse_of_singleton_keeps_other_relations() {
        let spec = spec();
        let subset = RelSet::single(2);
        let collapsed =
            collapse_spec(&spec, subset, "mq1", "reopt_mq1", virtual_schema(&spec, subset));
        assert_eq!(collapsed.spec.relation_count(), 3);
        assert_eq!(collapsed.virtual_index, 2);
        // Both edges survive; the mk-k edge now points at the virtual leaf.
        assert_eq!(collapsed.spec.join_edges.len(), 2);
        assert_eq!(collapsed.spec.join_edges[1].right_rel, 2);
        // k's filter is gone (applied during materialization).
        assert!(collapsed.spec.local_predicates[2].is_empty());
    }

    #[test]
    fn remap_translates_observed_subsets() {
        let spec = spec();
        let subset = RelSet::from_indexes([1, 2]);
        let collapsed =
            collapse_spec(&spec, subset, "mq1", "reopt_mq1", virtual_schema(&spec, subset));
        let remap = |set: RelSet| {
            remap_rel_set(set, subset, &collapsed.mapping, collapsed.virtual_index)
        };
        // Disjoint: maps member-wise.
        assert_eq!(remap(RelSet::single(0)), Some(RelSet::single(0)));
        // The subset itself: the virtual singleton.
        assert_eq!(remap(subset), Some(RelSet::single(1)));
        // A superset: outside members plus the virtual leaf.
        assert_eq!(remap(RelSet::all(3)), Some(RelSet::from_indexes([0, 1])));
        // Interior and partially-overlapping sets are inexpressible.
        assert_eq!(remap(RelSet::single(1)), None);
        assert_eq!(remap(RelSet::from_indexes([0, 1])), None);
        assert_eq!(remap(RelSet::EMPTY), None);
    }

    #[test]
    #[should_panic(expected = "cannot collapse the whole query")]
    fn collapsing_everything_panics() {
        let spec = spec();
        let subset = RelSet::all(3);
        collapse_spec(&spec, subset, "mq1", "reopt_mq1", Schema::empty());
    }
}
