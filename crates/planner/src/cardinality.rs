//! Cardinality estimation.
//!
//! This is the component whose failure modes the paper studies. It follows the
//! System-R / PostgreSQL playbook:
//!
//! * **base relations** — row count from ANALYZE statistics times the product of the
//!   selectivities of the relation's filter predicates (MCV lists, histograms, default
//!   selectivities), assuming *independence* between predicates;
//! * **joins** — for a relation set `S`, the product of the filtered base cardinalities
//!   of the members times the selectivity of every join edge inside `S`, where an
//!   equi-join edge's selectivity is `1 / max(n_distinct(a), n_distinct(b))` — the
//!   *uniformity* assumption — again multiplying edge selectivities independently.
//!
//! The estimate for a set is therefore independent of the join order, which is exactly
//! how a Selinger-style optimizer scores every plan for the same subset identically.
//!
//! [`CardinalityOverrides`] lets a caller pin the estimate of any relation subset to an
//! arbitrary value. The perfect-(n) oracle of the paper is "override every subset of
//! size ≤ n with its true cardinality"; the re-optimization controller overrides the
//! subsets it has already materialized; the selective-improvement simulator overrides
//! the subtree below a detected estimation error.
//!
//! Every distinct subset whose cardinality is requested is counted in an
//! [`EstimationLog`]; Table I of the paper reports exactly these counts by subset size.

use crate::relset::RelSet;
use crate::spec::{JoinEdge, QuerySpec};
use reopt_catalog::{Catalog, ColumnStatistics};
use reopt_expr::{as_column_constant_comparison, BinaryOp, Expr};
use reopt_storage::Value;
use std::cell::RefCell;
use std::collections::HashMap;

/// Default selectivity of an equality predicate when no statistics help (PostgreSQL's
/// `DEFAULT_EQ_SEL`).
pub const DEFAULT_EQ_SEL: f64 = 0.005;
/// Default selectivity of an inequality / range predicate (PostgreSQL's
/// `DEFAULT_INEQ_SEL`).
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity of a `LIKE` pattern that starts with a wildcard
/// (PostgreSQL's `DEFAULT_MATCH_SEL`).
pub const DEFAULT_MATCH_SEL: f64 = 0.005;
/// Default selectivity of a prefix `LIKE` pattern (`'abc%'`).
pub const DEFAULT_PREFIX_SEL: f64 = 0.02;
/// Fallback row count for tables that were never analyzed.
pub const DEFAULT_ROW_COUNT: f64 = 1000.0;

/// Whether an injected cardinality is a true count or only a lower bound.
///
/// The re-optimization driver observes both kinds: a completed (exhausted) operator
/// yields an *exact* count, while a suspended streaming join mid-probe has only seen
/// *at least* that many rows. The estimator pins estimates on exact entries but merely
/// floors the model on lower bounds — memoizing a bound as truth would freeze an
/// estimate below the real cardinality forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Exactness {
    /// A true cardinality: the operator ran to completion.
    #[default]
    Exact,
    /// A lower bound: the operator was suspended after producing this many rows.
    AtLeast,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OverrideEntry {
    rows: f64,
    exactness: Exactness,
}

/// Injected cardinalities, keyed by relation subset.
#[derive(Debug, Clone, Default)]
pub struct CardinalityOverrides {
    map: HashMap<RelSet, OverrideEntry>,
    /// Multi-relation override sets bucketed by size (`by_size[len]`), kept in sync
    /// with `map`. [`CardinalityOverrides::largest_anchor_within`] is called for
    /// every uncached multi-relation estimate, and a perfect-(n) oracle run injects
    /// thousands of subsets — walking size buckets from the largest candidate down
    /// finds the anchor without scanning the whole table per estimate.
    by_size: Vec<Vec<RelSet>>,
}

impl PartialEq for CardinalityOverrides {
    fn eq(&self, other: &Self) -> bool {
        // `by_size` is a derived index whose bucket ordering depends on insertion
        // history; logical equality is the map's.
        self.map == other.map
    }
}

impl CardinalityOverrides {
    /// An empty override table (the default PostgreSQL-style estimator).
    pub fn new() -> Self {
        Self::default()
    }

    fn insert_entry(&mut self, set: RelSet, rows: f64, exactness: Exactness) {
        let entry = OverrideEntry {
            rows: rows.max(0.0),
            exactness,
        };
        if self.map.insert(set, entry).is_none() && set.len() >= 2 {
            let size = set.len();
            if self.by_size.len() <= size {
                self.by_size.resize(size + 1, Vec::new());
            }
            self.by_size[size].push(set);
        }
    }

    /// Pin the cardinality of `set` to `rows` (an exact, observed count).
    pub fn set(&mut self, set: RelSet, rows: f64) {
        self.insert_entry(set, rows, Exactness::Exact);
    }

    /// Record that `set` produces *at least* `rows` rows. An existing entry is only
    /// replaced when the bound says more than it does: an exact count stands unless
    /// the bound exceeds it (the count was stale), and a previous bound only grows.
    pub fn set_at_least(&mut self, set: RelSet, rows: f64) {
        if let Some(existing) = self.map.get(&set) {
            if rows <= existing.rows {
                return;
            }
        }
        self.insert_entry(set, rows, Exactness::AtLeast);
    }

    /// The injected cardinality for `set`, if any (exact or bound).
    pub fn get(&self, set: RelSet) -> Option<f64> {
        self.map.get(&set).map(|e| e.rows)
    }

    /// The injected cardinality and its exactness for `set`, if any.
    pub fn get_entry(&self, set: RelSet) -> Option<(f64, Exactness)> {
        self.map.get(&set).map(|e| (e.rows, e.exactness))
    }

    /// Remove an override.
    pub fn clear(&mut self, set: RelSet) {
        if self.map.remove(&set).is_some() && set.len() >= 2 {
            if let Some(bucket) = self.by_size.get_mut(set.len()) {
                bucket.retain(|entry| *entry != set);
            }
        }
    }

    /// Number of overrides.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no overrides.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merge another override table into this one. Incoming exact entries win
    /// outright; incoming bounds obey [`CardinalityOverrides::set_at_least`]'s
    /// never-downgrade rule.
    pub fn merge(&mut self, other: &CardinalityOverrides) {
        for (set, entry) in &other.map {
            match entry.exactness {
                Exactness::Exact => self.set(*set, entry.rows),
                Exactness::AtLeast => self.set_at_least(*set, entry.rows),
            }
        }
    }

    /// Iterate over all overrides.
    pub fn iter(&self) -> impl Iterator<Item = (RelSet, f64)> + '_ {
        self.map.iter().map(|(s, e)| (*s, e.rows))
    }

    /// Iterate over all overrides with their exactness.
    pub fn iter_entries(&self) -> impl Iterator<Item = (RelSet, f64, Exactness)> + '_ {
        self.map.iter().map(|(s, e)| (*s, e.rows, e.exactness))
    }

    /// The largest injected multi-relation subset that is a *proper* subset of `set`
    /// (ties broken deterministically by bitmask). The estimator anchors superset
    /// estimates on it, the way PostgreSQL's bottom-up join-rows computation lets an
    /// injected sub-join cardinality flow into every estimate above it — without this,
    /// correcting one join leaves all its supersets as wrong as before and a
    /// re-optimization loop has to rediscover the error one level at a time.
    pub fn largest_anchor_within(&self, set: RelSet) -> Option<(RelSet, f64)> {
        // Walk size buckets from the largest candidate down; the first bucket with a
        // match wins, so densely-populated override tables (the perfect-(n) oracle)
        // are not scanned in full for every estimate.
        let max_candidate = set.len().saturating_sub(1).min(self.by_size.len().saturating_sub(1));
        for size in (2..=max_candidate).rev() {
            let best = self.by_size[size]
                .iter()
                .filter(|s| s.is_proper_subset_of(set))
                .max_by_key(|s| s.mask());
            if let Some(anchor) = best {
                return Some((*anchor, self.map[anchor].rows));
            }
        }
        None
    }
}

/// A count of how many distinct relation subsets of each size had their cardinality
/// estimated while planning (Table I of the paper), plus the estimator's cache and
/// memo counters (the DPccp enumerator requests the same subsets and re-derives the
/// same edge selectivities across thousands of csg-cmp pairs; these counters show how
/// much of that work was served from memory).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EstimationLog {
    counts: Vec<u64>,
    /// Estimator calls answered from the per-subset cardinality cache.
    pub subset_cache_hits: u64,
    /// Join-edge / complex-predicate selectivity lookups served from the per-edge memo.
    pub selectivity_memo_hits: u64,
    /// Selectivity lookups that had to be computed (first touch of each edge).
    pub selectivity_memo_misses: u64,
}

impl EstimationLog {
    /// Record an estimate for a subset of `size` relations.
    pub fn record(&mut self, size: usize) {
        if self.counts.len() <= size {
            self.counts.resize(size + 1, 0);
        }
        self.counts[size] += 1;
    }

    /// Fraction of selectivity lookups served from the memo (0 when none happened).
    pub fn selectivity_memo_hit_rate(&self) -> f64 {
        let total = self.selectivity_memo_hits + self.selectivity_memo_misses;
        if total == 0 {
            0.0
        } else {
            self.selectivity_memo_hits as f64 / total as f64
        }
    }

    /// Number of distinct subsets of exactly `size` relations estimated.
    pub fn count_for_size(&self, size: usize) -> u64 {
        self.counts.get(size).copied().unwrap_or(0)
    }

    /// Total number of distinct subsets estimated.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another log into this one.
    pub fn merge(&mut self, other: &EstimationLog) {
        for (size, count) in other.counts.iter().enumerate() {
            if *count > 0 {
                if self.counts.len() <= size {
                    self.counts.resize(size + 1, 0);
                }
                self.counts[size] += count;
            }
        }
        self.subset_cache_hits += other.subset_cache_hits;
        self.selectivity_memo_hits += other.selectivity_memo_hits;
        self.selectivity_memo_misses += other.selectivity_memo_misses;
    }

    /// The largest subset size with a recorded estimate.
    pub fn max_size(&self) -> usize {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
    }
}

/// The cardinality estimator for one query.
pub struct CardinalityEstimator<'a> {
    spec: &'a QuerySpec,
    catalog: &'a Catalog,
    overrides: &'a CardinalityOverrides,
    cache: RefCell<HashMap<RelSet, f64>>,
    /// Per-edge join selectivities, computed once per planning call: the DPccp
    /// enumerator prices every csg-cmp pair, and each multi-relation estimate walks
    /// the edges inside its set — without the memo the same catalog lookups repeat
    /// thousands of times on the large JOB join graphs.
    edge_selectivity: RefCell<Vec<Option<f64>>>,
    /// Per-predicate selectivities of the complex (multi-relation) predicates.
    complex_selectivity: RefCell<Vec<Option<f64>>>,
    log: RefCell<EstimationLog>,
}

impl<'a> CardinalityEstimator<'a> {
    /// Create an estimator for a bound query.
    pub fn new(
        spec: &'a QuerySpec,
        catalog: &'a Catalog,
        overrides: &'a CardinalityOverrides,
    ) -> Self {
        Self {
            spec,
            catalog,
            overrides,
            cache: RefCell::new(HashMap::new()),
            edge_selectivity: RefCell::new(vec![None; spec.join_edges.len()]),
            complex_selectivity: RefCell::new(vec![None; spec.complex_predicates.len()]),
            log: RefCell::new(EstimationLog::default()),
        }
    }

    /// The query this estimator serves.
    pub fn spec(&self) -> &QuerySpec {
        self.spec
    }

    /// A snapshot of the estimation log so far.
    pub fn estimation_log(&self) -> EstimationLog {
        self.log.borrow().clone()
    }

    /// Estimated cardinality (output rows) of the join of all relations in `set`, with
    /// each relation's filter predicates applied. Overrides win over the model.
    pub fn estimate(&self, set: RelSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        if let Some(rows) = self.cache.borrow().get(&set) {
            self.log.borrow_mut().subset_cache_hits += 1;
            return *rows;
        }
        self.log.borrow_mut().record(set.len());
        let rows = match self.overrides.get_entry(set) {
            // An exact observation pins the estimate.
            Some((injected, Exactness::Exact)) => injected.max(1.0),
            // A lower bound only floors the model: the true count may be far above
            // the bound, so the model's own estimate still applies when larger.
            Some((bound, Exactness::AtLeast)) => self.model_estimate(set).max(bound).max(1.0),
            None => self.model_estimate(set),
        };
        self.cache.borrow_mut().insert(set, rows);
        rows
    }

    /// The unfiltered row count of a base relation.
    pub fn raw_table_rows(&self, rel: usize) -> f64 {
        let relation = &self.spec.relations[rel];
        self.catalog
            .table_statistics(&relation.table)
            .map(|s| s.row_count as f64)
            .unwrap_or(DEFAULT_ROW_COUNT)
            .max(1.0)
    }

    /// The selectivity of all filter predicates attached to a base relation
    /// (independence assumed).
    pub fn local_selectivity(&self, rel: usize) -> f64 {
        self.spec.local_predicates[rel]
            .iter()
            .map(|p| self.predicate_selectivity(rel, p))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// The model estimate for a subset (no overrides): product of filtered base
    /// cardinalities times the selectivity of every join edge inside the set.
    fn model_estimate(&self, set: RelSet) -> f64 {
        if set.len() == 1 {
            let rel = set.min_index().expect("non-empty");
            let rows = self.raw_table_rows(rel) * self.local_selectivity(rel);
            return rows.max(1.0);
        }
        // Anchor on the largest injected subset, if any: an observed sub-join
        // cardinality then flows into every superset estimate (as PostgreSQL's
        // bottom-up join-rows computation propagates injected path rows), instead of
        // every superset being rebuilt from the same wrong base estimates.
        let mut anchored = RelSet::EMPTY;
        let mut rows: f64 = 1.0;
        if let Some((anchor, _)) = self.overrides.largest_anchor_within(set) {
            anchored = anchor;
            // Route through `estimate` so an at-least anchor floors its own model
            // estimate instead of being taken as truth (the anchor is a proper
            // subset, so the recursion terminates).
            rows = self.estimate(anchor).max(1.0);
        }
        for rel in set.difference(anchored).iter() {
            // Reuse (and cache / log) the single-relation estimate so that injected
            // base-table cardinalities (perfect-(1)) flow into join estimates.
            rows *= self.estimate(RelSet::single(rel));
        }
        for edge_idx in self.spec.edge_indexes_within(set) {
            let edge = &self.spec.join_edges[edge_idx];
            // Edges interior to the anchor are already reflected in its observed rows.
            if anchored.contains(edge.left_rel) && anchored.contains(edge.right_rel) {
                continue;
            }
            rows *= self.memoized_edge_selectivity(edge_idx);
        }
        for (pred_idx, (pred_set, _)) in self.spec.complex_predicates.iter().enumerate() {
            if pred_set.is_subset_of(set) && !pred_set.is_subset_of(anchored) {
                // A residual predicate touching several relations: charge a default
                // selectivity depending on its shape.
                rows *= self.memoized_complex_selectivity(pred_idx);
            }
        }
        rows.max(1.0)
    }

    /// The memoized selectivity of join edge `edge_idx`: computed on first touch,
    /// served from the memo for every later subset containing the edge.
    fn memoized_edge_selectivity(&self, edge_idx: usize) -> f64 {
        if let Some(selectivity) = self.edge_selectivity.borrow()[edge_idx] {
            self.log.borrow_mut().selectivity_memo_hits += 1;
            return selectivity;
        }
        self.log.borrow_mut().selectivity_memo_misses += 1;
        let selectivity = self.join_edge_selectivity(&self.spec.join_edges[edge_idx]);
        self.edge_selectivity.borrow_mut()[edge_idx] = Some(selectivity);
        selectivity
    }

    /// The memoized selectivity of complex predicate `pred_idx`.
    fn memoized_complex_selectivity(&self, pred_idx: usize) -> f64 {
        if let Some(selectivity) = self.complex_selectivity.borrow()[pred_idx] {
            self.log.borrow_mut().selectivity_memo_hits += 1;
            return selectivity;
        }
        self.log.borrow_mut().selectivity_memo_misses += 1;
        let selectivity = self.generic_selectivity(&self.spec.complex_predicates[pred_idx].1);
        self.complex_selectivity.borrow_mut()[pred_idx] = Some(selectivity);
        selectivity
    }

    /// Selectivity of one equi-join edge under the uniformity assumption:
    /// `(1 - nullfrac_l) * (1 - nullfrac_r) / max(n_distinct_l, n_distinct_r)`.
    pub fn join_edge_selectivity(&self, edge: &JoinEdge) -> f64 {
        let left = self.column_statistics(edge.left_rel, &edge.left_column.name);
        let right = self.column_statistics(edge.right_rel, &edge.right_column.name);
        let nd_left = left.map(|s| s.n_distinct).unwrap_or_else(|| {
            self.raw_table_rows(edge.left_rel).max(DEFAULT_ROW_COUNT) * 0.1
        });
        let nd_right = right.map(|s| s.n_distinct).unwrap_or_else(|| {
            self.raw_table_rows(edge.right_rel).max(DEFAULT_ROW_COUNT) * 0.1
        });
        let null_left = left.map(|s| s.null_fraction).unwrap_or(0.0);
        let null_right = right.map(|s| s.null_fraction).unwrap_or(0.0);
        let selectivity = (1.0 - null_left) * (1.0 - null_right) / nd_left.max(nd_right).max(1.0);
        selectivity.clamp(1e-12, 1.0)
    }

    /// The ANALYZE statistics for `alias.column` of relation `rel`, if available.
    pub fn column_statistics(&self, rel: usize, column: &str) -> Option<&ColumnStatistics> {
        let relation = &self.spec.relations[rel];
        self.catalog
            .table_statistics(&relation.table)
            .and_then(|stats| stats.column(column))
    }

    /// Selectivity of a single-relation predicate.
    pub fn predicate_selectivity(&self, rel: usize, predicate: &Expr) -> f64 {
        let sel = match predicate {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => self.predicate_selectivity(rel, left) * self.predicate_selectivity(rel, right),
            Expr::Binary {
                op: BinaryOp::Or,
                left,
                right,
            } => {
                let a = self.predicate_selectivity(rel, left);
                let b = self.predicate_selectivity(rel, right);
                a + b - a * b
            }
            Expr::Not(inner) => 1.0 - self.predicate_selectivity(rel, inner),
            Expr::IsNull { expr, negated } => {
                let null_fraction = expr
                    .as_column_ref()
                    .and_then(|c| self.column_statistics(rel, &c.name))
                    .map(|s| s.null_fraction)
                    .unwrap_or(0.01);
                if *negated {
                    1.0 - null_fraction
                } else {
                    null_fraction
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let base: f64 = match expr.as_column_ref() {
                    Some(column) => list
                        .iter()
                        .map(|v| self.equality_selectivity(rel, &column.name, v))
                        .sum(),
                    None => DEFAULT_EQ_SEL * list.len() as f64,
                };
                let base = base.clamp(0.0, 1.0);
                if *negated {
                    1.0 - base
                } else {
                    base
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let base = self.like_selectivity(rel, expr, pattern);
                if *negated {
                    1.0 - base
                } else {
                    base
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let base = match (expr.as_column_ref(), low.as_literal(), high.as_literal()) {
                    (Some(column), Some(lo), Some(hi)) => {
                        self.range_selectivity(rel, &column.name, Some(lo), Some(hi))
                    }
                    _ => DEFAULT_RANGE_SEL * DEFAULT_RANGE_SEL,
                };
                if *negated {
                    1.0 - base
                } else {
                    base
                }
            }
            _ => {
                if let Some((column, op, value)) = as_column_constant_comparison(predicate) {
                    match op {
                        BinaryOp::Eq => self.equality_selectivity(rel, &column.name, &value),
                        BinaryOp::NotEq => {
                            1.0 - self.equality_selectivity(rel, &column.name, &value)
                        }
                        BinaryOp::Lt | BinaryOp::LtEq => {
                            self.range_selectivity(rel, &column.name, None, Some(&value))
                        }
                        BinaryOp::Gt | BinaryOp::GtEq => {
                            self.range_selectivity(rel, &column.name, Some(&value), None)
                        }
                        _ => 0.25,
                    }
                } else {
                    self.generic_selectivity(predicate)
                }
            }
        };
        sel.clamp(1e-9, 1.0)
    }

    /// Default selectivity for predicates the model has no statistics-based estimate for
    /// (e.g. comparisons between two columns of the same relation).
    fn generic_selectivity(&self, predicate: &Expr) -> f64 {
        match predicate {
            Expr::Binary { op, .. } if *op == BinaryOp::Eq => DEFAULT_EQ_SEL,
            Expr::Binary { op, .. } if op.is_comparison() => DEFAULT_RANGE_SEL,
            _ => 0.25,
        }
    }

    /// Selectivity of `column = value` using the MCV list, falling back to the
    /// uniformity assumption over the non-MCV values.
    fn equality_selectivity(&self, rel: usize, column: &str, value: &Value) -> f64 {
        let Some(stats) = self.column_statistics(rel, column) else {
            return DEFAULT_EQ_SEL;
        };
        if value.is_null() {
            return 0.0;
        }
        if let Some(frequency) = stats.mcv.frequency_of(value) {
            return frequency;
        }
        let remaining = stats.non_mcv_fraction();
        let distinct = stats.non_mcv_distinct();
        (remaining / distinct).clamp(1e-9, 1.0)
    }

    /// Selectivity of a (half-)open range predicate over a column, combining MCV entries
    /// and the histogram, each weighted by the row mass they describe.
    fn range_selectivity(
        &self,
        rel: usize,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> f64 {
        let Some(stats) = self.column_statistics(rel, column) else {
            return DEFAULT_RANGE_SEL;
        };
        let in_range = |value: &Value| -> bool {
            let above = low.map(|lo| value >= lo).unwrap_or(true);
            let below = high.map(|hi| value <= hi).unwrap_or(true);
            above && below
        };
        // MCV mass inside the range.
        let mcv_mass: f64 = stats
            .mcv
            .entries()
            .iter()
            .filter(|(value, _)| in_range(value))
            .map(|(_, frequency)| frequency)
            .sum();
        // Histogram mass inside the range.
        let histogram_fraction = if stats.histogram.is_empty() {
            if stats.mcv.is_empty() {
                DEFAULT_RANGE_SEL
            } else {
                0.0
            }
        } else {
            let below_high = high
                .map(|hi| stats.histogram.fraction_below(hi))
                .unwrap_or(1.0);
            let below_low = low
                .map(|lo| stats.histogram.fraction_below(lo))
                .unwrap_or(0.0);
            (below_high - below_low).max(0.0)
        };
        (mcv_mass + histogram_fraction * stats.non_mcv_fraction()).clamp(1e-9, 1.0)
    }

    /// Selectivity of a LIKE predicate: exact-match patterns behave like equality,
    /// prefix patterns use a prefix default, substring patterns use the match default —
    /// the same shape of heuristics PostgreSQL applies in `patternsel`.
    fn like_selectivity(&self, rel: usize, expr: &Expr, pattern: &str) -> f64 {
        let has_wildcard = pattern.contains('%') || pattern.contains('_');
        if !has_wildcard {
            if let Some(column) = expr.as_column_ref() {
                return self.equality_selectivity(rel, &column.name, &Value::from(pattern));
            }
            return DEFAULT_EQ_SEL;
        }
        if pattern.starts_with('%') || pattern.starts_with('_') {
            DEFAULT_MATCH_SEL
        } else {
            DEFAULT_PREFIX_SEL
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind_select;
    use reopt_sql::parse_sql;
    use reopt_storage::{Column, DataType, Row, Schema, Storage, Table};

    /// Build a small company/trades database with heavy skew on trades.company_id,
    /// mirroring the Nasdaq example of Section IV-C of the paper.
    fn build_env() -> (Storage, Catalog) {
        let mut storage = Storage::new();

        let mut company = Table::new(
            "company",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("symbol", DataType::Text),
            ]),
        );
        for i in 0..1000i64 {
            company
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("SYM{i}")),
                ]))
                .unwrap();
        }

        let mut trades = Table::new(
            "trades",
            Schema::new(vec![
                Column::not_null("company_id", DataType::Int),
                Column::new("shares", DataType::Int),
            ]),
        );
        // Company 1 accounts for half of all trades; the rest are uniform.
        for i in 0..20_000i64 {
            let company_id = if i % 2 == 0 { 1 } else { i % 1000 };
            trades
                .push_row(Row::from_values(vec![
                    Value::Int(company_id),
                    Value::Int(i % 500),
                ]))
                .unwrap();
        }
        storage.create_table(company).unwrap();
        storage.create_table(trades).unwrap();

        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        (storage, catalog)
    }

    fn bind(sql: &str, storage: &Storage) -> QuerySpec {
        let stmt = parse_sql(sql).unwrap();
        bind_select(stmt.query().unwrap(), storage).unwrap()
    }

    #[test]
    fn base_table_estimate_matches_row_count() {
        let (storage, catalog) = build_env();
        let spec = bind("SELECT * FROM trades AS tr", &storage);
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        assert!((rows - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn equality_on_mcv_value_uses_frequency() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM trades AS tr WHERE tr.company_id = 1",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        // True count is 10 000; MCV statistics should put the estimate close.
        assert!(rows > 8_000.0 && rows < 12_000.0, "estimate {rows}");
    }

    #[test]
    fn equality_on_rare_value_uses_uniformity() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM trades AS tr WHERE tr.company_id = 777",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        // ~10 rows truly; the uniform assumption over non-MCV values should land
        // in the tens, far below the MCV estimate.
        assert!(rows < 200.0, "estimate {rows}");
    }

    #[test]
    fn range_selectivity_uses_histogram() {
        let (storage, catalog) = build_env();
        let spec = bind("SELECT * FROM trades AS tr WHERE tr.shares < 250", &storage);
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        assert!(
            (rows - 10_000.0).abs() < 2_500.0,
            "estimate {rows} should be about half the table"
        );
    }

    #[test]
    fn join_estimate_underestimates_skewed_join() {
        // The Nasdaq example: company.symbol = 'SYM1' selects the heavy hitter, but the
        // uniformity assumption on the join key underestimates the join size.
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM company AS c, trades AS tr
             WHERE c.id = tr.company_id AND c.symbol = 'SYM1'",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let joined = est.estimate(RelSet::all(2));
        // True result is ~10 000 rows (half of trades); the independence+uniformity
        // estimate is roughly |c_filtered| * |trades| / ndistinct = 1 * 20000 / 1000.
        assert!(joined < 500.0, "estimate {joined} should be a big underestimate");
    }

    #[test]
    fn overrides_take_priority_and_flow_upward() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM company AS c, trades AS tr WHERE c.id = tr.company_id",
            &storage,
        );
        let mut overrides = CardinalityOverrides::new();
        overrides.set(RelSet::single(0), 5.0);
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        assert_eq!(est.estimate(RelSet::single(0)), 5.0);
        // The join estimate uses the overridden base cardinality.
        let joined = est.estimate(RelSet::all(2));
        let expected = 5.0 * 20_000.0 * est.join_edge_selectivity(&spec.join_edges[0]);
        assert!((joined - expected.max(1.0)).abs() < 1.0);
        // Full-set override wins over everything.
        let mut overrides2 = CardinalityOverrides::new();
        overrides2.set(RelSet::all(2), 123.0);
        let est2 = CardinalityEstimator::new(&spec, &catalog, &overrides2);
        assert_eq!(est2.estimate(RelSet::all(2)), 123.0);
    }

    #[test]
    fn estimation_log_counts_distinct_subsets() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM company AS c, trades AS tr WHERE c.id = tr.company_id",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        est.estimate(RelSet::all(2));
        est.estimate(RelSet::all(2));
        est.estimate(RelSet::single(1));
        let log = est.estimation_log();
        assert_eq!(log.count_for_size(2), 1);
        assert_eq!(log.count_for_size(1), 2); // both singles via the join estimate
        assert_eq!(log.total(), 3);
        assert_eq!(log.max_size(), 2);
    }

    #[test]
    fn selectivity_memo_serves_repeated_edge_lookups() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM company AS c, trades AS tr WHERE c.id = tr.company_id",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        // First multi-relation estimate touches the edge: one memo miss, no hits.
        est.estimate(RelSet::all(2));
        let log = est.estimation_log();
        assert_eq!(log.selectivity_memo_misses, 1);
        assert_eq!(log.selectivity_memo_hits, 0);
        // Identical subsets are served by the subset cache (the memo is not even
        // consulted), so force a recomputation path by clearing the subset cache.
        est.cache.borrow_mut().clear();
        est.estimate(RelSet::all(2));
        let log = est.estimation_log();
        assert_eq!(log.selectivity_memo_misses, 1, "the edge is computed once");
        assert_eq!(log.selectivity_memo_hits, 1);
        assert!(log.selectivity_memo_hit_rate() > 0.49);
        // Repeated estimates of a cached subset count as subset-cache hits.
        est.estimate(RelSet::all(2));
        assert_eq!(est.estimation_log().subset_cache_hits, 1);
    }

    #[test]
    fn largest_anchor_prefers_biggest_subset_and_survives_clear_and_merge() {
        let mut o = CardinalityOverrides::new();
        o.set(RelSet::single(0), 5.0); // singles never anchor (they flow per-relation)
        o.set(RelSet::from_indexes([0, 1]), 100.0);
        o.set(RelSet::from_indexes([0, 1, 2]), 900.0);
        o.set(RelSet::from_indexes([1, 3]), 50.0);

        let all4 = RelSet::all(4);
        assert_eq!(
            o.largest_anchor_within(all4),
            Some((RelSet::from_indexes([0, 1, 2]), 900.0))
        );
        // A proper subset is required: the set itself never anchors.
        assert_eq!(
            o.largest_anchor_within(RelSet::from_indexes([0, 1])),
            None,
            "only the single-relation override remains inside, which never anchors"
        );
        // Overwriting an entry keeps the index consistent (no duplicate bucket rows).
        o.set(RelSet::from_indexes([0, 1, 2]), 901.0);
        assert_eq!(
            o.largest_anchor_within(all4),
            Some((RelSet::from_indexes([0, 1, 2]), 901.0))
        );
        // Clearing the anchor falls back to the next-largest candidate.
        o.clear(RelSet::from_indexes([0, 1, 2]));
        let (anchor, _) = o.largest_anchor_within(all4).unwrap();
        assert_eq!(anchor.len(), 2);
        // Merge rebuilds the index for incoming sets.
        let mut other = CardinalityOverrides::new();
        other.set(RelSet::from_indexes([0, 2, 3]), 70.0);
        o.merge(&other);
        assert_eq!(
            o.largest_anchor_within(all4),
            Some((RelSet::from_indexes([0, 2, 3]), 70.0))
        );
    }

    #[test]
    fn estimation_log_merges_cache_counters() {
        let mut a = EstimationLog::default();
        a.record(2);
        a.subset_cache_hits = 3;
        a.selectivity_memo_hits = 9;
        a.selectivity_memo_misses = 1;
        let b = EstimationLog {
            subset_cache_hits: 2,
            selectivity_memo_hits: 1,
            selectivity_memo_misses: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.subset_cache_hits, 5);
        assert_eq!(a.selectivity_memo_hits, 10);
        assert_eq!(a.selectivity_memo_misses, 2);
        assert!((a.selectivity_memo_hit_rate() - 10.0 / 12.0).abs() < 1e-9);
        assert_eq!(EstimationLog::default().selectivity_memo_hit_rate(), 0.0);
    }

    #[test]
    fn like_and_in_selectivities() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM company AS c WHERE c.symbol LIKE 'SYM1%'",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let prefix_rows = est.estimate(RelSet::single(0));
        assert!((1.0..1000.0).contains(&prefix_rows));

        let spec = bind(
            "SELECT * FROM company AS c WHERE c.symbol IN ('SYM1', 'SYM2', 'SYM3')",
            &storage,
        );
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let in_rows = est.estimate(RelSet::single(0));
        assert!((in_rows - 3.0).abs() < 2.0, "IN estimate {in_rows}");
    }

    #[test]
    fn not_and_or_selectivities() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM trades AS tr WHERE tr.shares < 100 OR tr.shares > 400",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        assert!(rows > 4_000.0 && rows < 12_000.0, "estimate {rows}");
    }

    #[test]
    fn override_table_operations() {
        let mut o = CardinalityOverrides::new();
        assert!(o.is_empty());
        o.set(RelSet::single(0), 10.0);
        o.set(RelSet::all(2), 50.0);
        assert_eq!(o.len(), 2);
        assert_eq!(o.get(RelSet::single(0)), Some(10.0));
        o.clear(RelSet::single(0));
        assert_eq!(o.get(RelSet::single(0)), None);
        let mut other = CardinalityOverrides::new();
        other.set(RelSet::single(1), 7.0);
        o.merge(&other);
        assert_eq!(o.len(), 2);
        assert_eq!(o.iter().count(), 2);
    }

    #[test]
    fn at_least_bounds_never_downgrade_and_only_grow() {
        let mut o = CardinalityOverrides::new();
        // A bound on an empty slot lands as AtLeast.
        o.set_at_least(RelSet::single(0), 100.0);
        assert_eq!(o.get_entry(RelSet::single(0)), Some((100.0, Exactness::AtLeast)));
        // A smaller bound is ignored; a larger one grows the entry.
        o.set_at_least(RelSet::single(0), 50.0);
        assert_eq!(o.get(RelSet::single(0)), Some(100.0));
        o.set_at_least(RelSet::single(0), 150.0);
        assert_eq!(o.get_entry(RelSet::single(0)), Some((150.0, Exactness::AtLeast)));
        // An exact count replaces a bound outright (even a smaller one).
        o.set(RelSet::single(0), 120.0);
        assert_eq!(o.get_entry(RelSet::single(0)), Some((120.0, Exactness::Exact)));
        // A bound at or below an exact count is ignored...
        o.set_at_least(RelSet::single(0), 120.0);
        assert_eq!(o.get_entry(RelSet::single(0)), Some((120.0, Exactness::Exact)));
        // ...but a bound above it proves the count stale and takes over as a bound.
        o.set_at_least(RelSet::single(0), 200.0);
        assert_eq!(o.get_entry(RelSet::single(0)), Some((200.0, Exactness::AtLeast)));
        // Merge preserves exactness per entry.
        let mut other = CardinalityOverrides::new();
        other.set(RelSet::single(1), 7.0);
        other.set_at_least(RelSet::from_indexes([0, 1]), 33.0);
        o.merge(&other);
        assert_eq!(o.get_entry(RelSet::single(1)), Some((7.0, Exactness::Exact)));
        assert_eq!(
            o.get_entry(RelSet::from_indexes([0, 1])),
            Some((33.0, Exactness::AtLeast))
        );
        assert_eq!(o.iter_entries().count(), 3);
    }

    #[test]
    fn estimator_floors_on_lower_bounds_instead_of_pinning() {
        let (storage, catalog) = build_env();
        let spec = bind(
            "SELECT * FROM company AS c, trades AS tr WHERE c.id = tr.company_id",
            &storage,
        );
        // The model estimates the join at ~20 000 rows (1:N fk join). A lower bound
        // far below that must NOT drag the estimate down...
        let mut low = CardinalityOverrides::new();
        low.set_at_least(RelSet::all(2), 10.0);
        let est = CardinalityEstimator::new(&spec, &catalog, &low);
        let model_rows = {
            let none = CardinalityOverrides::new();
            let plain = CardinalityEstimator::new(&spec, &catalog, &none);
            plain.estimate(RelSet::all(2))
        };
        assert_eq!(est.estimate(RelSet::all(2)), model_rows);
        // ...while a bound above the model floors it, and an exact entry pins it.
        let mut high = CardinalityOverrides::new();
        high.set_at_least(RelSet::all(2), model_rows * 4.0);
        let est = CardinalityEstimator::new(&spec, &catalog, &high);
        assert_eq!(est.estimate(RelSet::all(2)), model_rows * 4.0);
        let mut exact = CardinalityOverrides::new();
        exact.set(RelSet::all(2), 3.0);
        let est = CardinalityEstimator::new(&spec, &catalog, &exact);
        assert_eq!(est.estimate(RelSet::all(2)), 3.0);
    }

    #[test]
    fn estimation_log_merge() {
        let mut a = EstimationLog::default();
        a.record(1);
        a.record(2);
        let mut b = EstimationLog::default();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count_for_size(2), 2);
        assert_eq!(a.count_for_size(5), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn unanalyzed_table_uses_defaults() {
        let (storage, _) = build_env();
        let catalog = Catalog::new(); // no ANALYZE
        let spec = bind(
            "SELECT * FROM company AS c WHERE c.symbol = 'SYM1'",
            &storage,
        );
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        assert!((rows - DEFAULT_ROW_COUNT * DEFAULT_EQ_SEL).abs() < 1.0 || rows >= 1.0);
    }

    /// A 20-row table with values 1..=20, small enough that ANALYZE scans every
    /// row and the statistics are exact — so selectivities can be checked
    /// against hand-computed values.
    fn tiny_exact_env() -> (Storage, Catalog) {
        let mut storage = Storage::new();
        let mut t = Table::new(
            "tiny",
            Schema::new(vec![Column::not_null("v", DataType::Int)]),
        );
        for i in 1..=20i64 {
            t.push_row(Row::from_values(vec![Value::Int(i)])).unwrap();
        }
        storage.create_table(t).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        (storage, catalog)
    }

    #[test]
    fn equality_selectivity_on_tiny_table_is_one_over_n() {
        let (storage, catalog) = tiny_exact_env();
        let spec = bind("SELECT * FROM tiny AS x WHERE x.v = 7", &storage);
        let overrides = CardinalityOverrides::new();
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        // 20 rows, all distinct, full-scan statistics: P(v = 7) = 1/20, so the
        // estimate is exactly one row.
        let rows = est.estimate(RelSet::single(0));
        assert!((rows - 1.0).abs() < 1e-6, "estimate {rows}, expected 1.0");
        // Equality with a value outside the domain still clamps to >= 1 row.
        let spec = bind("SELECT * FROM tiny AS x WHERE x.v = 999", &storage);
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        assert!(est.estimate(RelSet::single(0)) >= 1.0);
    }

    #[test]
    fn range_selectivity_on_tiny_table_matches_hand_computed_fraction() {
        let (storage, catalog) = tiny_exact_env();
        let overrides = CardinalityOverrides::new();
        // v < 11 keeps values 1..=10: exactly half the table.
        let spec = bind("SELECT * FROM tiny AS x WHERE x.v < 11", &storage);
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        assert!(
            (rows - 10.0).abs() <= 1.5,
            "estimate {rows}, hand-computed 10 of 20 rows"
        );
        // A bounded range: 5 <= v AND v <= 8 keeps 4 of 20 rows.
        let spec = bind(
            "SELECT * FROM tiny AS x WHERE x.v >= 5 AND x.v <= 8",
            &storage,
        );
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let rows = est.estimate(RelSet::single(0));
        // Independence multiplies the two one-sided selectivities, so allow the
        // usual conjunction error on top of the exact 4-row answer.
        assert!(
            (1.0..9.0).contains(&rows),
            "estimate {rows} for a 4-of-20-row range"
        );
    }

    #[test]
    fn local_selectivity_multiplies_predicates_independently() {
        let (storage, catalog) = tiny_exact_env();
        let overrides = CardinalityOverrides::new();
        // P(v < 11) = 0.5 exactly with full-scan statistics.
        let spec = bind("SELECT * FROM tiny AS x WHERE x.v < 11", &storage);
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let one = est.local_selectivity(0);
        assert!((one - 0.5).abs() < 0.1, "one-sided selectivity {one}");

        // Conjoining the overlapping bound v < 16 (P = 0.75) must multiply under
        // the independence assumption: 0.5 × 0.75 = 0.375 — deliberately BELOW
        // the true fraction 0.5, the textbook conjunction underestimate.
        let spec = bind(
            "SELECT * FROM tiny AS x WHERE x.v < 11 AND x.v < 16",
            &storage,
        );
        let est = CardinalityEstimator::new(&spec, &catalog, &overrides);
        let both = est.local_selectivity(0);
        assert!(
            (both - one * 0.75).abs() < 0.08,
            "product selectivity {both}, expected ~{}",
            one * 0.75
        );
    }
}
