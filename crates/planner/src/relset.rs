//! Bitset representation of sets of relations.
//!
//! Every relation in a query gets an index (its position in the FROM list); a [`RelSet`]
//! is a `u64` bitmask over those indexes. JOB queries join at most 17 relations, so 64
//! bits is ample. The DP enumerator, the cardinality estimator (and its override table),
//! and the re-optimization controller all key their state by `RelSet`.

use std::fmt;

/// A set of relation indexes, stored as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// A set containing a single relation index.
    pub fn single(index: usize) -> Self {
        debug_assert!(index < 64, "relation index out of range");
        RelSet(1u64 << index)
    }

    /// A set from an iterator of indexes.
    pub fn from_indexes(indexes: impl IntoIterator<Item = usize>) -> Self {
        let mut set = RelSet::EMPTY;
        for i in indexes {
            set = set.insert(i);
        }
        set
    }

    /// A set containing all relations `0..n`.
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// The raw mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// A set from a raw mask.
    pub fn from_mask(mask: u64) -> Self {
        RelSet(mask)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set contains relation `index`.
    pub fn contains(self, index: usize) -> bool {
        index < 64 && (self.0 >> index) & 1 == 1
    }

    /// The set with `index` added.
    #[must_use]
    pub fn insert(self, index: usize) -> Self {
        RelSet(self.0 | (1u64 << index))
    }

    /// The set with `index` removed.
    #[must_use]
    pub fn remove(self, index: usize) -> Self {
        RelSet(self.0 & !(1u64 << index))
    }

    /// Union.
    #[must_use]
    pub fn union(self, other: RelSet) -> Self {
        RelSet(self.0 | other.0)
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(self, other: RelSet) -> Self {
        RelSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(self, other: RelSet) -> Self {
        RelSet(self.0 & !other.0)
    }

    /// Whether `self` and `other` share no relations.
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether every relation of `self` is in `other`.
    pub fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self` is a proper subset of `other`.
    pub fn is_proper_subset_of(self, other: RelSet) -> bool {
        self.is_subset_of(other) && self != other
    }

    /// The smallest relation index in the set, if any.
    pub fn min_index(self) -> Option<usize> {
        if self.is_empty() {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate over the relation indexes in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        RelSetIter(self.0)
    }

    /// Iterate over the relation indexes in descending order (allocation-free; the
    /// DPccp enumerator visits neighborhoods highest-index-first).
    pub fn iter_descending(self) -> impl Iterator<Item = usize> {
        RelSetIterDesc(self.0)
    }

    /// Iterate over every non-empty subset of this set.
    ///
    /// Uses the standard `(sub - 1) & mask` trick; the number of subsets is
    /// `2^len - 1`, so callers should only use this for small sets (the DPccp
    /// enumerator only applies it to neighborhoods, which are small in sparse graphs).
    pub fn nonempty_subsets(self) -> impl Iterator<Item = RelSet> {
        SubsetIter {
            mask: self.0,
            current: self.0,
            done: self.0 == 0,
        }
    }
}

struct RelSetIter(u64);

impl Iterator for RelSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let index = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(index)
        }
    }
}

struct RelSetIterDesc(u64);

impl Iterator for RelSetIterDesc {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let index = 63 - self.0.leading_zeros() as usize;
            self.0 &= !(1u64 << index);
            Some(index)
        }
    }
}

struct SubsetIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = RelSet;

    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let result = RelSet(self.current);
        if self.current == 0 {
            // Should not happen because we start at mask != 0 and stop before revisiting.
            self.done = true;
            return None;
        }
        self.current = (self.current - 1) & self.mask;
        if self.current == 0 {
            self.done = true;
        }
        Some(result)
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<String> = self.iter().map(|i| i.to_string()).collect();
        write!(f, "{{{}}}", items.join(","))
    }
}

impl FromIterator<usize> for RelSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        RelSet::from_indexes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let a = RelSet::from_indexes([0, 2, 5]);
        let b = RelSet::from_indexes([2, 3]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        assert_eq!(a.union(b), RelSet::from_indexes([0, 2, 3, 5]));
        assert_eq!(a.intersect(b), RelSet::single(2));
        assert_eq!(a.difference(b), RelSet::from_indexes([0, 5]));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(RelSet::single(7)));
        assert_eq!(a.min_index(), Some(0));
        assert_eq!(RelSet::EMPTY.min_index(), None);
    }

    #[test]
    fn subset_relations() {
        let a = RelSet::from_indexes([1, 2]);
        let b = RelSet::from_indexes([1, 2, 3]);
        assert!(a.is_subset_of(b));
        assert!(a.is_proper_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert!(b.is_subset_of(b));
        assert!(!b.is_proper_subset_of(b));
    }

    #[test]
    fn all_and_mask_roundtrip() {
        let s = RelSet::all(5);
        assert_eq!(s.len(), 5);
        assert_eq!(RelSet::from_mask(s.mask()), s);
        assert_eq!(RelSet::all(64).len(), 64);
    }

    #[test]
    fn insert_remove() {
        let s = RelSet::EMPTY.insert(3).insert(7).remove(3);
        assert_eq!(s, RelSet::single(7));
        assert!(s.remove(9).contains(7));
    }

    #[test]
    fn iteration_is_ascending() {
        let s = RelSet::from_indexes([9, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
        assert_eq!(s.to_string(), "{1,4,9}");
    }

    #[test]
    fn descending_iteration_mirrors_ascending() {
        let s = RelSet::from_indexes([9, 1, 4, 63, 0]);
        assert_eq!(s.iter_descending().collect::<Vec<_>>(), vec![63, 9, 4, 1, 0]);
        assert_eq!(RelSet::EMPTY.iter_descending().count(), 0);
    }

    #[test]
    fn nonempty_subsets_enumerates_all() {
        let s = RelSet::from_indexes([0, 1, 3]);
        let subsets: Vec<RelSet> = s.nonempty_subsets().collect();
        assert_eq!(subsets.len(), 7);
        assert!(subsets.contains(&s));
        assert!(subsets.contains(&RelSet::single(3)));
        assert!(!subsets.contains(&RelSet::EMPTY));
        // Empty set has no nonempty subsets.
        assert_eq!(RelSet::EMPTY.nonempty_subsets().count(), 0);
        // Singleton has exactly one.
        assert_eq!(RelSet::single(2).nonempty_subsets().count(), 1);
    }

    #[test]
    fn from_iterator() {
        let s: RelSet = vec![2usize, 4, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
