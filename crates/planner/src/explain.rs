//! EXPLAIN: render a physical plan as an indented tree, PostgreSQL-style.

use crate::plan::{PhysicalPlan, PlanKind};

/// Render a plan as text: one line per node with estimated rows and cost, indented by
/// depth. (EXPLAIN ANALYZE output, with actual rows, is rendered by `reopt-core` from
/// the executor's metrics tree.)
pub fn explain_plan(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(node: &PhysicalPlan, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let arrow = if depth == 0 { "" } else { "-> " };
    out.push_str(&format!(
        "{indent}{arrow}{}  (cost={} rows={:.0})\n",
        node.label(),
        node.cost,
        node.estimated_rows
    ));
    // Show interesting per-node details on extra lines.
    match &node.kind {
        PlanKind::SeqScan {
            predicate: Some(p), ..
        } => {
            out.push_str(&format!("{indent}     Filter: {}\n", p.to_sql()));
        }
        PlanKind::IndexScan {
            residual: Some(p), ..
        } => {
            out.push_str(&format!("{indent}     Filter: {}\n", p.to_sql()));
        }
        PlanKind::HashJoin {
            residual: Some(p), ..
        }
        | PlanKind::MergeJoin {
            residual: Some(p), ..
        } => {
            out.push_str(&format!("{indent}     Join Filter: {}\n", p.to_sql()));
        }
        PlanKind::IndexNestedLoopJoin {
            inner_predicate,
            residual,
            ..
        } => {
            if let Some(p) = inner_predicate {
                out.push_str(&format!("{indent}     Inner Filter: {}\n", p.to_sql()));
            }
            if let Some(p) = residual {
                out.push_str(&format!("{indent}     Join Filter: {}\n", p.to_sql()));
            }
        }
        _ => {}
    }
    for child in &node.children {
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::relset::RelSet;
    use reopt_expr::{ColumnRef, Expr};
    use reopt_storage::{Column, DataType, Schema};

    fn scan(alias: &str, rel: usize, predicate: Option<Expr>) -> PhysicalPlan {
        PhysicalPlan {
            kind: PlanKind::SeqScan {
                rel,
                alias: alias.into(),
                table: format!("tbl_{alias}"),
                predicate,
            },
            children: vec![],
            schema: Schema::new(vec![Column::new("id", DataType::Int)]).qualified(alias),
            estimated_rows: 100.0,
            cost: Cost::new(0.0, 10.0),
            rel_set: RelSet::single(rel),
        }
    }

    #[test]
    fn renders_tree_with_filters() {
        let left = scan("a", 0, Some(Expr::eq(Expr::col("a", "id"), Expr::lit(1))));
        let right = scan("b", 1, None);
        let join = PhysicalPlan {
            kind: PlanKind::HashJoin {
                keys: vec![(
                    ColumnRef::qualified("a", "id"),
                    ColumnRef::qualified("b", "id"),
                )],
                residual: Some(Expr::binary(
                    reopt_expr::BinaryOp::Gt,
                    Expr::col("a", "id"),
                    Expr::col("b", "id"),
                )),
            },
            schema: left.schema.join(&right.schema),
            estimated_rows: 42.0,
            cost: Cost::new(1.0, 99.0),
            rel_set: RelSet::from_indexes([0, 1]),
            children: vec![left, right],
        };
        let text = explain_plan(&join);
        assert!(text.contains("Hash Join on a.id = b.id"));
        assert!(text.contains("rows=42"));
        assert!(text.contains("Join Filter: a.id > b.id"));
        assert!(text.contains("Filter: a.id = 1"));
        assert!(text.contains("-> Seq Scan on tbl_b b"));
        // Child lines are indented deeper than the root.
        let root_line = text.lines().next().unwrap();
        assert!(!root_line.starts_with(' '));
        assert!(text.lines().nth(2).unwrap().starts_with("  "));
    }

    #[test]
    fn renders_single_scan() {
        let text = explain_plan(&scan("t", 0, None));
        assert!(text.starts_with("Seq Scan on tbl_t t"));
        assert_eq!(text.lines().count(), 1);
    }
}
