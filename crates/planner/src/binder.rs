//! Binding: turn a parsed [`SelectStatement`] into a [`QuerySpec`].
//!
//! Binding resolves every table against storage, qualifies every column reference with
//! its relation alias, classifies WHERE-clause conjuncts into per-relation filters,
//! equi-join edges and residual ("complex") predicates, and validates the SELECT list.

use crate::error::PlanError;
use crate::spec::{JoinEdge, QuerySpec, RelationSpec};
use reopt_expr::{as_equi_join, split_conjunction, ColumnRef, Expr};
use reopt_sql::{SelectExpr, SelectStatement};
use reopt_storage::{Schema, Storage};
use std::collections::HashSet;

/// Bind a SELECT statement against the current storage.
pub fn bind_select(stmt: &SelectStatement, storage: &Storage) -> Result<QuerySpec, PlanError> {
    if stmt.from.is_empty() {
        return Err(PlanError::Unsupported("FROM list is empty".into()));
    }
    if stmt.from.len() > 64 {
        return Err(PlanError::TooManyRelations(stmt.from.len()));
    }

    // Resolve relations and detect duplicate aliases.
    let mut relations = Vec::with_capacity(stmt.from.len());
    let mut seen_aliases = HashSet::new();
    for (index, table_ref) in stmt.from.iter().enumerate() {
        let alias = table_ref.alias.to_ascii_lowercase();
        if !seen_aliases.insert(alias.clone()) {
            return Err(PlanError::DuplicateAlias(alias));
        }
        let table = storage
            .table(&table_ref.table)
            .map_err(|_| PlanError::UnknownTable(table_ref.table.clone()))?;
        relations.push(RelationSpec {
            index,
            alias: alias.clone(),
            table: table.name().to_string(),
            schema: table.schema().qualified(&alias),
        });
    }

    // The full schema of the joined relations, used to validate and qualify references.
    let mut full_schema = Schema::empty();
    for relation in &relations {
        full_schema = full_schema.join(&relation.schema);
    }

    let mut spec = QuerySpec {
        local_predicates: vec![Vec::new(); relations.len()],
        relations,
        join_edges: Vec::new(),
        complex_predicates: Vec::new(),
        output: stmt.items.clone(),
        group_by: Vec::new(),
        order_by: Vec::new(),
        limit: stmt.limit,
    };

    // Classify WHERE conjuncts.
    if let Some(where_clause) = &stmt.where_clause {
        let qualified = qualify_expr(where_clause, &full_schema)?;
        for conjunct in split_conjunction(&qualified) {
            classify_conjunct(conjunct, &mut spec, &full_schema)?;
        }
    }

    // Validate and qualify the SELECT list, GROUP BY and ORDER BY.
    let mut output = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        let expr = match &item.expr {
            SelectExpr::Wildcard => SelectExpr::Wildcard,
            SelectExpr::Scalar(e) => SelectExpr::Scalar(qualify_expr(e, &full_schema)?),
            SelectExpr::Aggregate { func, arg } => SelectExpr::Aggregate {
                func: *func,
                arg: match arg {
                    Some(e) => Some(qualify_expr(e, &full_schema)?),
                    None => None,
                },
            },
        };
        output.push(reopt_sql::SelectItem {
            expr,
            alias: item.alias.clone(),
        });
    }
    spec.output = output;
    spec.group_by = stmt
        .group_by
        .iter()
        .map(|e| qualify_expr(e, &full_schema))
        .collect::<Result<Vec<_>, _>>()?;
    spec.order_by = stmt
        .order_by
        .iter()
        .map(|o| {
            // ORDER BY may reference a SELECT-list output alias (e.g. `ORDER BY movies`
            // for `count(*) AS movies`); such references are left untouched and bound
            // later against the projection/aggregation output schema.
            let is_output_alias = o
                .expr
                .as_column_ref()
                .filter(|r| r.qualifier.is_none())
                .map(|r| {
                    stmt.items
                        .iter()
                        .any(|item| item.alias.as_deref() == Some(r.name.as_str()))
                })
                .unwrap_or(false);
            let expr = if is_output_alias {
                o.expr.clone()
            } else {
                qualify_expr(&o.expr, &full_schema)?
            };
            Ok(reopt_sql::OrderByItem {
                expr,
                ascending: o.ascending,
            })
        })
        .collect::<Result<Vec<_>, PlanError>>()?;

    Ok(spec)
}

/// Validate every column reference against the joined schema and rewrite unqualified
/// references into qualified ones (so that downstream relation-set computation can rely
/// on qualifiers alone).
fn qualify_expr(expr: &Expr, full_schema: &Schema) -> Result<Expr, PlanError> {
    // First validate: binding errors give precise unknown/ambiguous messages.
    expr.bind(full_schema)
        .map_err(|e| PlanError::UnknownColumn(e.to_string()))?;
    Ok(expr.map_column_refs(&|reference| {
        if reference.qualifier.is_some() {
            return reference.clone();
        }
        match full_schema.index_of(None, &reference.name) {
            Ok(idx) => {
                let column = full_schema.column(idx).expect("index valid");
                match column.qualifier() {
                    Some(q) => ColumnRef::qualified(q, column.name()),
                    None => reference.clone(),
                }
            }
            Err(_) => reference.clone(),
        }
    }))
}

/// Attach one conjunct to the right place in the spec.
fn classify_conjunct(
    conjunct: Expr,
    spec: &mut QuerySpec,
    full_schema: &Schema,
) -> Result<(), PlanError> {
    // Equi-join between two different relations?
    if let Some((left, right)) = as_equi_join(&conjunct) {
        let left_rel = resolve_rel(&left, spec, full_schema)?;
        let right_rel = resolve_rel(&right, spec, full_schema)?;
        if left_rel != right_rel {
            spec.join_edges.push(JoinEdge {
                left_rel,
                left_column: left,
                right_rel,
                right_column: right,
            });
            return Ok(());
        }
    }

    let rel_set = spec.rel_set_of(&conjunct);
    match rel_set.len() {
        0 => {
            // A constant predicate; attach to relation 0 so it is still evaluated.
            spec.local_predicates[0].push(conjunct);
        }
        1 => {
            let rel = rel_set.min_index().expect("non-empty");
            spec.local_predicates[rel].push(conjunct);
        }
        _ => {
            spec.complex_predicates.push((rel_set, conjunct));
        }
    }
    Ok(())
}

/// Resolve the relation index owning a column reference.
fn resolve_rel(
    reference: &ColumnRef,
    spec: &QuerySpec,
    full_schema: &Schema,
) -> Result<usize, PlanError> {
    if let Some(qualifier) = &reference.qualifier {
        return spec
            .relation_by_alias(qualifier)
            .ok_or_else(|| PlanError::UnknownColumn(reference.to_string()));
    }
    let idx = full_schema
        .index_of(None, &reference.name)
        .map_err(|e| PlanError::UnknownColumn(e.to_string()))?;
    let column = full_schema.column(idx).expect("index valid");
    let qualifier = column
        .qualifier()
        .ok_or_else(|| PlanError::UnknownColumn(reference.to_string()))?;
    spec.relation_by_alias(qualifier)
        .ok_or_else(|| PlanError::UnknownColumn(reference.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relset::RelSet;
    use reopt_sql::parse_sql;
    use reopt_storage::{Column, DataType, Table};

    fn storage() -> Storage {
        let mut storage = Storage::new();
        let title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("production_year", DataType::Int),
            ]),
        );
        let movie_keyword = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("movie_id", DataType::Int),
                Column::new("keyword_id", DataType::Int),
            ]),
        );
        let keyword = Table::new(
            "keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ]),
        );
        storage.create_table(title).unwrap();
        storage.create_table(movie_keyword).unwrap();
        storage.create_table(keyword).unwrap();
        storage
    }

    fn bind(sql: &str) -> Result<QuerySpec, PlanError> {
        let stmt = parse_sql(sql).unwrap();
        bind_select(stmt.query().unwrap(), &storage())
    }

    #[test]
    fn binds_three_way_join() {
        let spec = bind(
            "SELECT min(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
               AND k.keyword = 'superhero' AND t.production_year > 2000",
        )
        .unwrap();
        assert_eq!(spec.relation_count(), 3);
        assert_eq!(spec.join_edges.len(), 2);
        assert_eq!(spec.local_predicates[0].len(), 1); // t.production_year > 2000
        assert_eq!(spec.local_predicates[2].len(), 1); // k.keyword = 'superhero'
        assert!(spec.complex_predicates.is_empty());
    }

    #[test]
    fn unqualified_columns_are_qualified() {
        let spec = bind(
            "SELECT * FROM title AS t, keyword AS k WHERE production_year > 2000 AND keyword = 'x'",
        )
        .unwrap();
        assert_eq!(spec.local_predicates[0].len(), 1);
        assert_eq!(spec.local_predicates[1].len(), 1);
        assert_eq!(
            spec.local_predicates[0][0].to_sql(),
            "t.production_year > 2000"
        );
    }

    #[test]
    fn ambiguous_unqualified_column_errors() {
        let err = bind("SELECT * FROM title AS t, movie_keyword AS mk WHERE id = 3").unwrap_err();
        assert!(matches!(err, PlanError::UnknownColumn(_)));
    }

    #[test]
    fn complex_predicate_classified() {
        let spec = bind(
            "SELECT * FROM title AS t, movie_keyword AS mk
             WHERE t.id = mk.movie_id AND t.production_year > mk.keyword_id",
        )
        .unwrap();
        assert_eq!(spec.join_edges.len(), 1);
        assert_eq!(spec.complex_predicates.len(), 1);
        assert_eq!(spec.complex_predicates[0].0, RelSet::from_indexes([0, 1]));
    }

    #[test]
    fn constant_predicate_goes_to_first_relation() {
        let spec = bind("SELECT * FROM title AS t WHERE 1 = 1").unwrap();
        assert_eq!(spec.local_predicates[0].len(), 1);
    }

    #[test]
    fn same_relation_equality_is_local_not_join() {
        let spec = bind("SELECT * FROM title AS t WHERE t.id = t.production_year").unwrap();
        assert!(spec.join_edges.is_empty());
        assert_eq!(spec.local_predicates[0].len(), 1);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert!(matches!(
            bind("SELECT * FROM nope AS x"),
            Err(PlanError::UnknownTable(_))
        ));
        assert!(matches!(
            bind("SELECT * FROM title AS t WHERE t.nope = 1"),
            Err(PlanError::UnknownColumn(_))
        ));
        assert!(matches!(
            bind("SELECT t.nope FROM title AS t"),
            Err(PlanError::UnknownColumn(_))
        ));
    }

    #[test]
    fn duplicate_alias_rejected() {
        assert!(matches!(
            bind("SELECT * FROM title AS t, keyword AS t"),
            Err(PlanError::DuplicateAlias(_))
        ));
    }

    #[test]
    fn group_by_and_order_by_are_bound() {
        let spec = bind(
            "SELECT t.production_year, count(*) FROM title AS t
             GROUP BY t.production_year ORDER BY t.production_year DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(spec.group_by.len(), 1);
        assert_eq!(spec.order_by.len(), 1);
        assert!(!spec.order_by[0].ascending);
        assert_eq!(spec.limit, Some(3));
    }

    #[test]
    fn self_join_with_two_aliases() {
        let spec = bind(
            "SELECT * FROM title AS t1, title AS t2 WHERE t1.id = t2.id AND t1.production_year > 1990",
        )
        .unwrap();
        assert_eq!(spec.relation_count(), 2);
        assert_eq!(spec.join_edges.len(), 1);
        assert_eq!(spec.local_predicates[0].len(), 1);
    }
}
