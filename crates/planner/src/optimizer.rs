//! The optimizer: access-path selection, join enumeration and final plan assembly.

use crate::binder::bind_select;
use crate::cardinality::{CardinalityEstimator, CardinalityOverrides, EstimationLog};
use crate::cost::CostModel;
use crate::enumerate::{EnumerationAlgorithm, IndexInfo, JoinEnumerator};
use crate::error::PlanError;
use crate::graph::JoinGraph;
use crate::plan::{
    infer_aggregate_type, infer_type, AggregateExpr, IndexLookup, OutputExpr, PhysicalPlan,
    PlanKind,
};
use crate::relset::RelSet;
use crate::spec::QuerySpec;
use reopt_catalog::Catalog;
use reopt_expr::{as_column_constant_comparison, conjoin, BinaryOp, Expr};
use reopt_sql::{SelectExpr, SelectStatement};
use reopt_storage::{Column, Schema, Storage};

/// Configuration knobs for the optimizer, mirroring the PostgreSQL planner GUCs the
/// paper touches (`enable_*` flags, GEQO threshold).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Consider index scans as access paths.
    pub enable_index_scans: bool,
    /// Consider hash joins.
    pub enable_hash_joins: bool,
    /// Consider sort-merge joins.
    pub enable_merge_joins: bool,
    /// Consider index nested-loop joins.
    pub enable_index_nl_joins: bool,
    /// Switch from exhaustive DP to greedy enumeration above this relation count.
    ///
    /// The default of 12 matches PostgreSQL's `geqo_threshold`, and was picked
    /// empirically (PR 5, `greedy_tune` run at scale 0.03, single-threaded
    /// execution; plan/exec wall-clock in ms):
    ///
    /// | query | tables | DP plan | DP exec | greedy plan | greedy exec |
    /// |-------|--------|---------|---------|-------------|-------------|
    /// | 13a   | 8      | 0.9     | 9.7     | 0.2         | 12.7        |
    /// | 17a   | 11     | 7.4     | 57      | 0.3         | 73          |
    /// | 20a   | 14     | 43      | 6 268   | 0.5         | 1 638       |
    /// | 21a   | 17     | 461     | 1 362 996 | 0.8       | 77 767      |
    ///
    /// Through 11 relations DPccp's plans execute faster than greedy's and its
    /// planning latency is negligible, so exhaustive enumeration pays. Beyond that
    /// the relationship *inverts* on the skewed families: with the default
    /// estimator's errors compounding over 13+ joins, DPccp overfits to wrong
    /// cardinalities and its "optimal" plans executed 4x (20a) to 17x (21a) slower
    /// than greedy's conservative chains — while also spending 43-461 ms planning.
    /// Exhaustive enumeration is only worth its latency when the estimates feeding
    /// it are trustworthy, which is precisely the paper's re-optimization thesis;
    /// above the threshold, cheap plans plus observed-cardinality re-planning beat
    /// expensive estimate-driven search.
    pub greedy_threshold: usize,
    /// The cost model.
    pub cost_model: CostModel,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            enable_index_scans: true,
            enable_hash_joins: true,
            enable_merge_joins: true,
            enable_index_nl_joins: true,
            greedy_threshold: 12,
            cost_model: CostModel::default(),
        }
    }
}

/// The result of planning one query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The chosen physical plan.
    pub plan: PhysicalPlan,
    /// How many cardinality estimates were requested, by subset size (Table I).
    pub estimation_log: EstimationLog,
    /// The bound query the plan was derived from.
    pub spec: QuerySpec,
}

/// The query optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    config: OptimizerConfig,
}

struct StorageIndexInfo<'a> {
    spec: &'a QuerySpec,
    storage: &'a Storage,
}

impl IndexInfo for StorageIndexInfo<'_> {
    fn has_index(&self, rel: usize, column: &str) -> bool {
        let relation = &self.spec.relations[rel];
        let Ok(table) = self.storage.table(&relation.table) else {
            return false;
        };
        match table.schema().index_of(None, column) {
            Ok(idx) => table.has_index_on(idx),
            Err(_) => false,
        }
    }

    fn table_rows(&self, rel: usize) -> f64 {
        let relation = &self.spec.relations[rel];
        self.storage
            .table(&relation.table)
            .map(|t| t.row_count() as f64)
            .unwrap_or(1.0)
            .max(1.0)
    }
}

impl Optimizer {
    /// Create an optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Self { config }
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Bind and plan a SELECT statement.
    pub fn plan_select(
        &self,
        statement: &SelectStatement,
        storage: &Storage,
        catalog: &Catalog,
        overrides: &CardinalityOverrides,
    ) -> Result<PlannedQuery, PlanError> {
        let spec = bind_select(statement, storage)?;
        self.plan_spec(spec, storage, catalog, overrides)
    }

    /// Plan an already-bound query.
    pub fn plan_spec(
        &self,
        spec: QuerySpec,
        storage: &Storage,
        catalog: &Catalog,
        overrides: &CardinalityOverrides,
    ) -> Result<PlannedQuery, PlanError> {
        let graph = JoinGraph::new(&spec);
        let estimator = CardinalityEstimator::new(&spec, catalog, overrides);

        // Access paths for every base relation.
        let base_plans: Vec<PhysicalPlan> = (0..spec.relation_count())
            .map(|rel| self.best_access_path(rel, &spec, storage, &estimator))
            .collect();

        // Join enumeration.
        let join_plan = if spec.relation_count() == 1 {
            base_plans.into_iter().next().expect("one relation")
        } else {
            let index_info = StorageIndexInfo {
                spec: &spec,
                storage,
            };
            let enumerator = JoinEnumerator::new(
                &spec,
                &graph,
                &estimator,
                &self.config.cost_model,
                &self.config,
                &index_info,
            );
            let algorithm = if spec.relation_count() > self.config.greedy_threshold {
                EnumerationAlgorithm::Greedy
            } else {
                EnumerationAlgorithm::DpCcp
            };
            enumerator.enumerate(base_plans, algorithm)?
        };

        // Output shape: aggregation or projection, then ORDER BY / LIMIT.
        let plan = self.finish_plan(join_plan, &spec)?;
        let estimation_log = estimator.estimation_log();
        Ok(PlannedQuery {
            plan,
            estimation_log,
            spec,
        })
    }

    /// Choose the cheapest access path (sequential or index scan) for a base relation.
    fn best_access_path(
        &self,
        rel: usize,
        spec: &QuerySpec,
        storage: &Storage,
        estimator: &CardinalityEstimator<'_>,
    ) -> PhysicalPlan {
        let relation = &spec.relations[rel];
        let predicates = &spec.local_predicates[rel];
        let estimated_rows = estimator.estimate(RelSet::single(rel));
        let table_rows = estimator.raw_table_rows(rel);
        let schema = relation.schema.clone();
        let width = schema.nominal_width() as f64;

        let seq_scan = PhysicalPlan {
            kind: PlanKind::SeqScan {
                rel,
                alias: relation.alias.clone(),
                table: relation.table.clone(),
                predicate: conjoin(predicates),
            },
            children: vec![],
            schema: schema.clone(),
            estimated_rows,
            cost: self
                .config
                .cost_model
                .seq_scan(table_rows, width, predicates.len()),
            rel_set: RelSet::single(rel),
        };

        if !self.config.enable_index_scans {
            return seq_scan;
        }
        let Ok(table) = storage.table(&relation.table) else {
            return seq_scan;
        };

        // Try to drive an index with one of the local predicates.
        let mut best = seq_scan;
        for (pred_idx, predicate) in predicates.iter().enumerate() {
            let Some((column, lookup, needs_range)) = index_lookup_for(predicate) else {
                continue;
            };
            let Ok(col_idx) = table.schema().index_of(None, &column) else {
                continue;
            };
            if table.index_on_column(col_idx, needs_range).is_none() {
                continue;
            }
            let residual: Vec<Expr> = predicates
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pred_idx)
                .map(|(_, p)| p.clone())
                .collect();
            // Matched rows before the residual filter: selectivity of the driving
            // predicate alone.
            let driving_selectivity = estimator.predicate_selectivity(rel, predicate);
            let matched_rows = (table_rows * driving_selectivity).max(1.0);
            let cost =
                self.config
                    .cost_model
                    .index_scan(table_rows, matched_rows, residual.len());
            let candidate = PhysicalPlan {
                kind: PlanKind::IndexScan {
                    rel,
                    alias: relation.alias.clone(),
                    table: relation.table.clone(),
                    column,
                    lookup,
                    residual: conjoin(&residual),
                },
                children: vec![],
                schema: schema.clone(),
                estimated_rows,
                cost,
                rel_set: RelSet::single(rel),
            };
            if candidate.cost.is_cheaper_than(best.cost) {
                best = candidate;
            }
        }
        best
    }

    /// Add aggregation / projection, ORDER BY and LIMIT on top of the join tree.
    fn finish_plan(
        &self,
        input: PhysicalPlan,
        spec: &QuerySpec,
    ) -> Result<PhysicalPlan, PlanError> {
        let has_aggregates = spec
            .output
            .iter()
            .any(|item| matches!(item.expr, SelectExpr::Aggregate { .. }));

        let mut plan = if has_aggregates || !spec.group_by.is_empty() {
            self.build_aggregate(input, spec)?
        } else {
            self.build_project(input, spec)?
        };

        if !spec.order_by.is_empty() {
            let keys: Vec<(Expr, bool)> = spec
                .order_by
                .iter()
                .map(|o| (o.expr.clone(), o.ascending))
                .collect();
            let cost = self
                .config
                .cost_model
                .sort(plan.cost, plan.estimated_rows, keys.len());
            plan = PhysicalPlan {
                kind: PlanKind::Sort { keys },
                schema: plan.schema.clone(),
                estimated_rows: plan.estimated_rows,
                cost,
                rel_set: plan.rel_set,
                children: vec![plan],
            };
        }

        if let Some(count) = spec.limit {
            let estimated_rows = plan.estimated_rows.min(count as f64);
            plan = PhysicalPlan {
                kind: PlanKind::Limit { count },
                schema: plan.schema.clone(),
                estimated_rows,
                cost: plan.cost,
                rel_set: plan.rel_set,
                children: vec![plan],
            };
        }
        Ok(plan)
    }

    fn build_aggregate(
        &self,
        input: PhysicalPlan,
        spec: &QuerySpec,
    ) -> Result<PhysicalPlan, PlanError> {
        let mut aggregates = Vec::new();
        let mut schema_columns: Vec<Column> = Vec::new();

        // Group-by columns come first in the output schema. They keep their qualifier so
        // that qualified ORDER BY keys (e.g. `ORDER BY t.production_year`) still bind.
        for (idx, key) in spec.group_by.iter().enumerate() {
            let reference = key.as_column_ref();
            let name = reference
                .map(|r| r.name.clone())
                .unwrap_or_else(|| format!("group_{idx}"));
            let mut column = Column::new(name, infer_type(key, &input.schema));
            if let Some(qualifier) = reference.and_then(|r| r.qualifier.clone()) {
                column = column.with_qualifier(qualifier);
            }
            schema_columns.push(column);
        }

        for (idx, item) in spec.output.iter().enumerate() {
            match &item.expr {
                SelectExpr::Aggregate { func, arg } => {
                    let name = item
                        .alias
                        .clone()
                        .unwrap_or_else(|| format!("{}_{idx}", func.name().to_ascii_lowercase()));
                    schema_columns.push(Column::new(
                        name.clone(),
                        infer_aggregate_type(*func, arg.as_ref(), &input.schema),
                    ));
                    aggregates.push(AggregateExpr {
                        func: *func,
                        arg: arg.clone(),
                        name,
                    });
                }
                SelectExpr::Scalar(expr) => {
                    // Scalar expressions in an aggregate query must be group-by keys;
                    // they are already part of the output schema, so nothing to add
                    // unless they carry an alias that differs.
                    if !spec.group_by.iter().any(|g| g == expr) {
                        return Err(PlanError::Unsupported(format!(
                            "scalar expression '{}' in an aggregate query must appear in GROUP BY",
                            expr.to_sql()
                        )));
                    }
                }
                SelectExpr::Wildcard => {
                    return Err(PlanError::Unsupported(
                        "SELECT * cannot be combined with aggregates".into(),
                    ))
                }
            }
        }

        let groups = if spec.group_by.is_empty() {
            1.0
        } else {
            // A crude guess: the square root of the input, capped by the input size.
            input.estimated_rows.sqrt().max(1.0)
        };
        let cost = self.config.cost_model.aggregate(
            input.cost,
            input.estimated_rows,
            groups,
            aggregates.len(),
        );
        Ok(PhysicalPlan {
            kind: PlanKind::Aggregate {
                group_by: spec.group_by.clone(),
                aggregates,
            },
            schema: Schema::new(schema_columns),
            estimated_rows: groups,
            cost,
            rel_set: input.rel_set,
            children: vec![input],
        })
    }

    fn build_project(
        &self,
        input: PhysicalPlan,
        spec: &QuerySpec,
    ) -> Result<PhysicalPlan, PlanError> {
        let mut exprs = Vec::new();
        let mut columns = Vec::new();
        for (idx, item) in spec.output.iter().enumerate() {
            match &item.expr {
                SelectExpr::Wildcard => {
                    // Expand `*` in FROM order, not in the plan's output order: the
                    // chosen join order is the optimizer's business and must never
                    // leak into the query's observable column order — that is what
                    // makes wildcard queries safe to re-plan mid-flight.
                    for relation in &spec.relations {
                        for column in relation.schema.columns() {
                            exprs.push(OutputExpr {
                                expr: Expr::Column(reopt_expr::ColumnRef {
                                    qualifier: Some(relation.alias.clone()),
                                    name: column.name().to_string(),
                                }),
                                name: column.name().to_string(),
                            });
                            columns.push(column.clone());
                        }
                    }
                }
                SelectExpr::Scalar(expr) => {
                    let name = item
                        .alias
                        .clone()
                        .or_else(|| expr.as_column_ref().map(|r| r.name.clone()))
                        .unwrap_or_else(|| format!("column_{idx}"));
                    columns.push(Column::new(name.clone(), infer_type(expr, &input.schema)));
                    exprs.push(OutputExpr {
                        expr: expr.clone(),
                        name,
                    });
                }
                SelectExpr::Aggregate { .. } => unreachable!("handled by build_aggregate"),
            }
        }
        let cost = self
            .config
            .cost_model
            .project(input.cost, input.estimated_rows, exprs.len());
        Ok(PhysicalPlan {
            kind: PlanKind::Project { exprs },
            schema: Schema::new(columns),
            estimated_rows: input.estimated_rows,
            cost,
            rel_set: input.rel_set,
            children: vec![input],
        })
    }
}

/// If a predicate can drive an index lookup, return `(column, lookup, needs_range)`.
fn index_lookup_for(predicate: &Expr) -> Option<(String, IndexLookup, bool)> {
    if let Expr::InList {
        expr,
        list,
        negated: false,
    } = predicate
    {
        let column = expr.as_column_ref()?;
        return Some((column.name.clone(), IndexLookup::InList(list.clone()), false));
    }
    if let Expr::Between {
        expr,
        low,
        high,
        negated: false,
    } = predicate
    {
        let column = expr.as_column_ref()?;
        let low = low.as_literal()?.clone();
        let high = high.as_literal()?.clone();
        return Some((
            column.name.clone(),
            IndexLookup::Range {
                low: Some((low, true)),
                high: Some((high, true)),
            },
            true,
        ));
    }
    let (column, op, value) = as_column_constant_comparison(predicate)?;
    let lookup = match op {
        BinaryOp::Eq => IndexLookup::Equality(value),
        BinaryOp::Lt => IndexLookup::Range {
            low: None,
            high: Some((value, false)),
        },
        BinaryOp::LtEq => IndexLookup::Range {
            low: None,
            high: Some((value, true)),
        },
        BinaryOp::Gt => IndexLookup::Range {
            low: Some((value, false)),
            high: None,
        },
        BinaryOp::GtEq => IndexLookup::Range {
            low: Some((value, true)),
            high: None,
        },
        _ => return None,
    };
    let needs_range = !matches!(lookup, IndexLookup::Equality(_));
    Some((column.name, lookup, needs_range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_sql::parse_sql;
    use reopt_storage::{DataType, IndexKind, Row, Table, Value};

    /// A three-table star: title (fact-ish), movie_keyword (bridge), keyword (dimension).
    fn build_env() -> (Storage, Catalog) {
        let mut storage = Storage::new();

        let mut title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("production_year", DataType::Int),
            ]),
        );
        for i in 0..2000i64 {
            title
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("movie {i}")),
                    Value::Int(1950 + (i % 70)),
                ]))
                .unwrap();
        }
        title.create_index("title_pkey", "id", IndexKind::BTree).unwrap();

        let mut keyword = Table::new(
            "keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ]),
        );
        for i in 0..500i64 {
            keyword
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("keyword-{i}")),
                ]))
                .unwrap();
        }
        keyword
            .create_index("keyword_pkey", "id", IndexKind::BTree)
            .unwrap();

        let mut movie_keyword = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("movie_id", DataType::Int),
                Column::not_null("keyword_id", DataType::Int),
            ]),
        );
        for i in 0..20_000i64 {
            // Keyword 7 is wildly popular (skew).
            let kw = if i % 4 == 0 { 7 } else { i % 500 };
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i % 2000), Value::Int(kw)]))
                .unwrap();
        }
        movie_keyword
            .create_index("mk_movie_id", "movie_id", IndexKind::Hash)
            .unwrap();
        movie_keyword
            .create_index("mk_keyword_id", "keyword_id", IndexKind::Hash)
            .unwrap();

        storage.create_table(title).unwrap();
        storage.create_table(keyword).unwrap();
        storage.create_table(movie_keyword).unwrap();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        (storage, catalog)
    }

    fn plan(sql: &str, storage: &Storage, catalog: &Catalog) -> PlannedQuery {
        let optimizer = Optimizer::default();
        let statement = parse_sql(sql).unwrap();
        optimizer
            .plan_select(
                statement.query().unwrap(),
                storage,
                catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap()
    }

    #[test]
    fn single_table_scan_with_filter() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT * FROM title AS t WHERE t.production_year > 2000",
            &storage,
            &catalog,
        );
        // `SELECT *` gets an explicit FROM-order projection over the scan (so its
        // column order never depends on the chosen plan).
        assert!(matches!(planned.plan.kind, PlanKind::Project { .. }));
        assert!(planned.plan.children[0].is_scan());
        assert!(planned.plan.estimated_rows > 100.0);
        assert!(planned.plan.estimated_rows < 2000.0);
    }

    #[test]
    fn equality_on_indexed_column_uses_index_scan() {
        let (storage, catalog) = build_env();
        let planned = plan("SELECT * FROM title AS t WHERE t.id = 42", &storage, &catalog);
        assert!(matches!(planned.plan.kind, PlanKind::Project { .. }));
        assert!(matches!(
            planned.plan.children[0].kind,
            PlanKind::IndexScan { .. }
        ));
    }

    #[test]
    fn three_way_join_produces_join_tree() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT min(t.title) AS movie_title
             FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'keyword-7'",
            &storage,
            &catalog,
        );
        // Top is the aggregate, below it a join tree covering all three relations.
        assert!(matches!(planned.plan.kind, PlanKind::Aggregate { .. }));
        let join = &planned.plan.children[0];
        assert!(join.is_join());
        assert_eq!(join.rel_set, RelSet::all(3));
        assert_eq!(planned.plan.join_nodes().len(), 2);
        // The estimation log must contain estimates for singletons, pairs and the triple.
        assert!(planned.estimation_log.count_for_size(1) >= 3);
        assert!(planned.estimation_log.count_for_size(2) >= 1);
        assert_eq!(planned.estimation_log.count_for_size(3), 1);
    }

    #[test]
    fn selective_dimension_prefers_index_nested_loop_or_small_build() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT count(*) AS c
             FROM keyword AS k, movie_keyword AS mk
             WHERE mk.keyword_id = k.id AND k.keyword = 'keyword-3'",
            &storage,
            &catalog,
        );
        let join = &planned.plan.children[0];
        assert!(join.is_join());
        // The keyword side is tiny (1 row); a sensible plan never builds the hash table
        // on the 20 000-row movie_keyword side while probing with 1 row.
        if let PlanKind::HashJoin { .. } = join.kind {
            assert!(join.children[1].estimated_rows <= join.children[0].estimated_rows * 100.0);
        }
    }

    #[test]
    fn overrides_change_the_chosen_plan_shape() {
        let (storage, catalog) = build_env();
        let statement = parse_sql(
            "SELECT count(*) AS c
             FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'keyword-7'",
        )
        .unwrap();
        let optimizer = Optimizer::default();
        let default_plan = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        // Claim the keyword/movie_keyword join is enormous: the optimizer should then
        // prefer to join title with movie_keyword first (or at least produce a different
        // plan or cost).
        let spec = &default_plan.spec;
        let k = spec.relation_by_alias("k").unwrap();
        let mk = spec.relation_by_alias("mk").unwrap();
        let mut overrides = CardinalityOverrides::new();
        overrides.set(RelSet::from_indexes([k, mk]), 5_000_000.0);
        let forced_plan = optimizer
            .plan_select(statement.query().unwrap(), &storage, &catalog, &overrides)
            .unwrap();
        assert!(
            forced_plan.plan.cost.total != default_plan.plan.cost.total
                || forced_plan.plan != default_plan.plan,
            "override had no effect on the plan"
        );
    }

    #[test]
    fn group_by_order_by_limit_plan_shape() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT t.production_year, count(*) AS movies
             FROM title AS t
             GROUP BY t.production_year
             ORDER BY movies DESC
             LIMIT 5",
            &storage,
            &catalog,
        );
        assert!(matches!(planned.plan.kind, PlanKind::Limit { count: 5 }));
        assert!(matches!(planned.plan.children[0].kind, PlanKind::Sort { .. }));
        assert!(matches!(
            planned.plan.children[0].children[0].kind,
            PlanKind::Aggregate { .. }
        ));
    }

    #[test]
    fn projection_of_columns() {
        let (storage, catalog) = build_env();
        let planned = plan(
            "SELECT t.title AS movie, t.production_year FROM title AS t WHERE t.id < 10",
            &storage,
            &catalog,
        );
        assert!(matches!(planned.plan.kind, PlanKind::Project { .. }));
        assert_eq!(planned.plan.schema.len(), 2);
        assert_eq!(planned.plan.schema.column(0).unwrap().name(), "movie");
    }

    #[test]
    fn greedy_threshold_switches_algorithm() {
        let (storage, catalog) = build_env();
        let statement = parse_sql(
            "SELECT count(*) AS c
             FROM title AS t, movie_keyword AS mk, keyword AS k
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id",
        )
        .unwrap();
        let config = OptimizerConfig {
            greedy_threshold: 2, // force greedy
            ..Default::default()
        };
        let optimizer = Optimizer::new(config);
        let planned = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap();
        assert_eq!(planned.plan.children[0].rel_set, RelSet::all(3));
    }

    #[test]
    fn disconnected_join_graph_is_rejected() {
        let (storage, catalog) = build_env();
        let statement =
            parse_sql("SELECT count(*) AS c FROM title AS t, keyword AS k").unwrap();
        let optimizer = Optimizer::default();
        let err = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap_err();
        assert_eq!(err, PlanError::DisconnectedJoinGraph);
    }

    #[test]
    fn aggregate_query_with_bad_scalar_rejected() {
        let (storage, catalog) = build_env();
        let statement =
            parse_sql("SELECT t.title, count(*) AS c FROM title AS t").unwrap();
        let optimizer = Optimizer::default();
        let err = optimizer
            .plan_select(
                statement.query().unwrap(),
                &storage,
                &catalog,
                &CardinalityOverrides::new(),
            )
            .unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
    }

    #[test]
    fn index_lookup_extraction() {
        let eq = Expr::eq(Expr::col("t", "id"), Expr::lit(5));
        let (col, lookup, range) = index_lookup_for(&eq).unwrap();
        assert_eq!(col, "id");
        assert!(matches!(lookup, IndexLookup::Equality(Value::Int(5))));
        assert!(!range);

        let gt = Expr::binary(BinaryOp::Gt, Expr::col("t", "year"), Expr::lit(2000));
        let (_, lookup, range) = index_lookup_for(&gt).unwrap();
        assert!(matches!(lookup, IndexLookup::Range { low: Some(_), high: None }));
        assert!(range);

        let like = Expr::Like {
            expr: Box::new(Expr::col("t", "title")),
            pattern: "%x%".into(),
            negated: false,
        };
        assert!(index_lookup_for(&like).is_none());
    }
}
