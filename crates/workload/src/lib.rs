//! # reopt-workload
//!
//! The workloads the paper evaluates on, rebuilt synthetically:
//!
//! * [`imdb`] — a deterministic generator for the IMDB schema used by the Join Order
//!   Benchmark (title, name, cast_info, keyword, movie_keyword, …) with the two
//!   properties that make JOB hard for optimizers: **skew** (Zipf-distributed join keys:
//!   a few movies/actors/keywords account for most of the facts) and **correlation**,
//!   including *join-crossing* correlation (e.g. franchise movies have both the popular
//!   keywords and far more cast entries, so a filter on `keyword` changes the fan-out of
//!   a join two edges away).
//! * [`job`] — a JOB-style suite of 113 select-project-join queries whose per-query
//!   table counts match Table III of the paper.
//! * [`nasdaq`] — the companies/trades example of Section IV-C (Tables IV and V), where
//!   the uniformity assumption on the join key hides the fact that a handful of symbols
//!   account for half the trading volume.

pub mod imdb;
pub mod job;
pub mod nasdaq;

pub use imdb::{load_imdb, ImdbConfig};
pub use job::{job_queries, job_query, JobQuery};
pub use nasdaq::{load_nasdaq, NasdaqConfig, APPL_QUERY};
