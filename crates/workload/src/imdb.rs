//! Synthetic IMDB dataset generator.
//!
//! The real IMDB dataset is not redistributable, so the generator below produces a
//! deterministic synthetic instance of the same schema with the statistical properties
//! the paper's analysis hinges on:
//!
//! * **Skew on join keys** — movie and person popularity follow a power law: a small
//!   number of "franchise" movies (low ids) collect a large share of the `cast_info`,
//!   `movie_keyword`, `movie_companies` and `movie_info` rows; a few keywords (the
//!   "superhero"/"sequel" class) account for a large fraction of `movie_keyword`.
//! * **Correlation inside a table** — `production_year` correlates with `kind_id` and
//!   with how much auxiliary information a movie has; `gender` correlates with the name
//!   text (so `n.gender = 'm' AND n.name LIKE '%Tim%'` is redundant, not independent).
//! * **Join-crossing correlation** — the franchise movies that carry the popular
//!   keywords are exactly the movies with outsized cast lists and company lists, so a
//!   filter on `keyword.keyword` changes the fan-out of joins several edges away —
//!   the effect behind the query 6d walk-through in Section IV-D of the paper.
//!
//! Everything is generated from a seeded RNG, so a given `(scale, seed)` pair always
//! produces the same database.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reopt_core::{Database, DbError};
use reopt_storage::{Column, DataType, IndexKind, Row, Schema, Table, Value};

/// Configuration for the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ImdbConfig {
    /// Scale factor: 1.0 produces roughly 200k fact rows across the big tables.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            scale: 0.2,
            seed: 42,
        }
    }
}

impl ImdbConfig {
    /// A configuration scaled for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            scale: 0.03,
            seed: 7,
        }
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64) * self.scale).ceil().max(4.0) as usize
    }

    /// Number of movies.
    pub fn titles(&self) -> usize {
        self.count(8_000)
    }
    /// Number of people.
    pub fn names(&self) -> usize {
        self.count(12_000)
    }
    /// Number of cast entries.
    pub fn cast_infos(&self) -> usize {
        self.count(60_000)
    }
    /// Number of keywords.
    pub fn keywords(&self) -> usize {
        self.count(2_000)
    }
    /// Number of movie-keyword links.
    pub fn movie_keywords(&self) -> usize {
        self.count(30_000)
    }
    /// Number of companies.
    pub fn companies(&self) -> usize {
        self.count(3_000)
    }
    /// Number of movie-company links.
    pub fn movie_companies(&self) -> usize {
        self.count(20_000)
    }
    /// Number of movie_info rows.
    pub fn movie_infos(&self) -> usize {
        self.count(40_000)
    }
    /// Number of movie_info_idx rows.
    pub fn movie_info_idxs(&self) -> usize {
        self.count(16_000)
    }
    /// Number of character names.
    pub fn char_names(&self) -> usize {
        self.count(8_000)
    }
    /// Number of alternative person names.
    pub fn aka_names(&self) -> usize {
        self.count(6_000)
    }
    /// Number of alternative titles.
    pub fn aka_titles(&self) -> usize {
        self.count(4_000)
    }
    /// Number of person_info rows.
    pub fn person_infos(&self) -> usize {
        self.count(15_000)
    }
    /// Number of movie links.
    pub fn movie_links(&self) -> usize {
        self.count(3_000)
    }
    /// Number of complete_cast rows.
    pub fn complete_casts(&self) -> usize {
        self.count(3_000)
    }
}

/// Sample an index in `0..n` with a power-law bias towards low indexes
/// (`skew` > 1 concentrates mass near zero; `skew` = 1 is uniform).
fn skewed_index(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    let idx = (u.powf(skew) * n as f64) as usize;
    idx.min(n.saturating_sub(1))
}

/// The most frequent keywords, mirroring the classes JOB predicates select on.
pub const SPECIAL_KEYWORDS: &[&str] = &[
    "character-name-in-title",
    "superhero",
    "sequel",
    "based-on-comic",
    "marvel-comics",
    "violence",
    "blockbuster",
    "independent-film",
    "tv-special",
    "fight",
    "second-part",
    "murder",
    "love",
    "based-on-novel",
    "revenge",
    "female-nudity",
];

const GENRES: &[&str] = &[
    "Action", "Drama", "Comedy", "Thriller", "Horror", "Documentary", "Romance", "Sci-Fi",
    "Adventure", "Crime",
];
const COUNTRIES: &[&str] = &[
    "USA", "UK", "Germany", "France", "Japan", "India", "Canada", "Italy", "Spain", "Sweden",
];
const COUNTRY_CODES: &[&str] = &[
    "[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[ca]", "[it]", "[es]", "[se]",
];
const MALE_FIRST: &[&str] = &[
    "Robert", "Tim", "John", "Michael", "David", "James", "Daniel", "Tom", "Samuel", "George",
];
const FEMALE_FIRST: &[&str] = &[
    "Anna", "Maria", "Susan", "Linda", "Emma", "Olivia", "Sophia", "Laura", "Karen", "Alice",
];
const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Downey", "Williams", "Brown", "Jones", "Miller", "Davis", "Wilson",
    "Anderson", "Taylor", "Thomas", "Moore", "Jackson", "Martin", "Lee", "Thompson", "White",
    "Harris", "Clark",
];

struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    fn new(name: &str, columns: Vec<Column>) -> Self {
        Self {
            table: Table::new(name, Schema::new(columns)),
        }
    }

    fn row(&mut self, values: Vec<Value>) {
        self.table.push_row_unchecked(Row::from_values(values));
    }

    fn finish(self) -> Table {
        self.table
    }
}

/// Generate the synthetic IMDB database into `db`: create all 21 tables, load them,
/// build the primary-key and foreign-key indexes the paper adds, and run ANALYZE.
pub fn load_imdb(db: &mut Database, config: &ImdbConfig) -> Result<(), DbError> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // ---- small dimension tables -------------------------------------------------
    let kind_names = [
        "movie",
        "tv series",
        "tv movie",
        "video movie",
        "tv mini series",
        "video game",
        "episode",
    ];
    let mut kind_type = TableBuilder::new(
        "kind_type",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("kind", DataType::Text),
        ],
    );
    for (i, kind) in kind_names.iter().enumerate() {
        kind_type.row(vec![Value::Int(i as i64 + 1), Value::from(*kind)]);
    }

    let role_names = [
        "actor",
        "actress",
        "producer",
        "writer",
        "director",
        "cinematographer",
        "composer",
        "editor",
        "miscellaneous crew",
        "costume designer",
        "guest",
        "self",
    ];
    let mut role_type = TableBuilder::new(
        "role_type",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("role", DataType::Text),
        ],
    );
    for (i, role) in role_names.iter().enumerate() {
        role_type.row(vec![Value::Int(i as i64 + 1), Value::from(*role)]);
    }

    let company_type_names = [
        "production companies",
        "distributors",
        "special effects companies",
        "miscellaneous companies",
    ];
    let mut company_type = TableBuilder::new(
        "company_type",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("kind", DataType::Text),
        ],
    );
    for (i, kind) in company_type_names.iter().enumerate() {
        company_type.row(vec![Value::Int(i as i64 + 1), Value::from(*kind)]);
    }

    let link_names = [
        "follows",
        "followed by",
        "remake of",
        "remade as",
        "references",
        "referenced in",
        "spoofs",
        "spoofed in",
        "features",
        "featured in",
        "spin off from",
        "spin off",
        "version of",
        "similar to",
        "edited into",
        "edited from",
        "alternate language version of",
        "unknown link",
    ];
    let mut link_type = TableBuilder::new(
        "link_type",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("link", DataType::Text),
        ],
    );
    for (i, link) in link_names.iter().enumerate() {
        link_type.row(vec![Value::Int(i as i64 + 1), Value::from(*link)]);
    }

    let comp_cast_names = ["cast", "crew", "complete", "complete+verified"];
    let mut comp_cast_type = TableBuilder::new(
        "comp_cast_type",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("kind", DataType::Text),
        ],
    );
    for (i, kind) in comp_cast_names.iter().enumerate() {
        comp_cast_type.row(vec![Value::Int(i as i64 + 1), Value::from(*kind)]);
    }

    // info_type: 113 entries; the ids JOB's predicates name get fixed labels.
    let mut info_type = TableBuilder::new(
        "info_type",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("info", DataType::Text),
        ],
    );
    for i in 1..=113i64 {
        let label = match i {
            1 => "budget".to_string(),
            2 => "votes".to_string(),
            3 => "rating".to_string(),
            4 => "genres".to_string(),
            5 => "release dates".to_string(),
            6 => "countries".to_string(),
            7 => "languages".to_string(),
            8 => "top 250 rank".to_string(),
            9 => "bottom 10 rank".to_string(),
            19 => "biography".to_string(),
            20 => "birth date".to_string(),
            _ => format!("info type {i:03}"),
        };
        info_type.row(vec![Value::Int(i), Value::from(label)]);
    }

    // ---- keyword ------------------------------------------------------------------
    let n_keywords = config.keywords().max(SPECIAL_KEYWORDS.len() + 1);
    let mut keyword = TableBuilder::new(
        "keyword",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("keyword", DataType::Text),
        ],
    );
    for i in 0..n_keywords {
        let text = match SPECIAL_KEYWORDS.get(i) {
            Some(special) => special.to_string(),
            None => format!("keyword-{i:05}"),
        };
        keyword.row(vec![Value::Int(i as i64), Value::from(text)]);
    }

    // ---- title ----------------------------------------------------------------------
    // Low ids are "franchise" movies: recent, popular, and superhero-flavoured titles.
    let n_titles = config.titles();
    let franchise_cutoff = (n_titles / 20).max(8);
    let mut title = TableBuilder::new(
        "title",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("title", DataType::Text),
            Column::new("kind_id", DataType::Int),
            Column::new("production_year", DataType::Int),
            Column::new("episode_nr", DataType::Int),
        ],
    );
    for i in 0..n_titles {
        let is_franchise = i < franchise_cutoff;
        // production_year: franchise movies are recent; the rest spread over 1930-2019,
        // biased towards recent decades; correlated with kind (episodes are recent).
        let year = if is_franchise {
            2000 + (rng.gen_range(0..20i64))
        } else {
            2019 - skewed_index(&mut rng, 90, 2.0) as i64
        };
        let kind_id = if is_franchise {
            1
        } else if year > 2005 && rng.gen_bool(0.35) {
            7 // episode
        } else {
            1 + skewed_index(&mut rng, 7, 2.5) as i64
        };
        let text = if is_franchise {
            format!("Super Hero Saga {i:04}")
        } else {
            format!("Movie {i:06}")
        };
        let episode_nr = if kind_id == 7 {
            Value::Int(rng.gen_range(1..25))
        } else {
            Value::Null
        };
        title.row(vec![
            Value::Int(i as i64),
            Value::from(text),
            Value::Int(kind_id),
            Value::Int(year),
            episode_nr,
        ]);
    }

    // ---- name -------------------------------------------------------------------------
    let n_names = config.names();
    let mut name = TableBuilder::new(
        "name",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("gender", DataType::Text),
        ],
    );
    for i in 0..n_names {
        let male = rng.gen_bool(0.6);
        let first = if male {
            MALE_FIRST[rng.gen_range(0..MALE_FIRST.len())]
        } else {
            FEMALE_FIRST[rng.gen_range(0..FEMALE_FIRST.len())]
        };
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        // IMDB formats names as "Last, First"; gender correlates perfectly with the
        // first-name token, which is what defeats the independence assumption.
        let gender = if male { "m" } else { "f" };
        name.row(vec![
            Value::Int(i as i64),
            Value::from(format!("{last}, {first} {i:05}")),
            Value::from(gender),
        ]);
    }

    // ---- char_name ----------------------------------------------------------------------
    let n_chars = config.char_names();
    let mut char_name = TableBuilder::new(
        "char_name",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
        ],
    );
    for i in 0..n_chars {
        let text = if i < 20 {
            format!("Hero Character {i:02}")
        } else {
            format!("Character {i:05}")
        };
        char_name.row(vec![Value::Int(i as i64), Value::from(text)]);
    }

    // ---- company_name ---------------------------------------------------------------------
    let n_companies = config.companies();
    let mut company_name = TableBuilder::new(
        "company_name",
        vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("country_code", DataType::Text),
        ],
    );
    for i in 0..n_companies {
        // Country codes are heavily skewed towards [us].
        let code_idx = skewed_index(&mut rng, COUNTRY_CODES.len(), 2.5);
        company_name.row(vec![
            Value::Int(i as i64),
            Value::from(format!("Studio {i:04} Productions")),
            Value::from(COUNTRY_CODES[code_idx]),
        ]);
    }

    // ---- cast_info -----------------------------------------------------------------------
    // Franchise movies get far more cast rows (join-crossing correlation with keywords).
    let n_cast = config.cast_infos();
    let mut cast_info = TableBuilder::new(
        "cast_info",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("person_id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::new("person_role_id", DataType::Int),
            Column::new("role_id", DataType::Int),
            Column::new("note", DataType::Text),
        ],
    );
    for i in 0..n_cast {
        let movie_id = skewed_index(&mut rng, n_titles, 2.6) as i64;
        let person_id = skewed_index(&mut rng, n_names, 2.2) as i64;
        let role_id = 1 + skewed_index(&mut rng, role_names.len(), 2.0) as i64;
        let note = match role_id {
            3 => {
                if rng.gen_bool(0.5) {
                    Value::from("(producer)")
                } else {
                    Value::from("(executive producer)")
                }
            }
            1 | 2 if rng.gen_bool(0.15) => Value::from("(voice)"),
            _ if rng.gen_bool(0.05) => Value::from("(uncredited)"),
            _ => Value::Null,
        };
        let person_role_id = if role_id <= 2 {
            Value::Int(skewed_index(&mut rng, n_chars, 2.0) as i64)
        } else {
            Value::Null
        };
        cast_info.row(vec![
            Value::Int(i as i64),
            Value::Int(person_id),
            Value::Int(movie_id),
            person_role_id,
            Value::Int(role_id),
            note,
        ]);
    }

    // ---- movie_keyword --------------------------------------------------------------------
    // The popular (special) keywords land disproportionately on the franchise movies.
    let n_mk = config.movie_keywords();
    let mut movie_keyword = TableBuilder::new(
        "movie_keyword",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::not_null("keyword_id", DataType::Int),
        ],
    );
    for i in 0..n_mk {
        let keyword_id = skewed_index(&mut rng, n_keywords, 3.0);
        let movie_id = if keyword_id < SPECIAL_KEYWORDS.len() && rng.gen_bool(0.6) {
            // Popular keyword → very likely a franchise movie.
            skewed_index(&mut rng, franchise_cutoff, 1.5)
        } else {
            skewed_index(&mut rng, n_titles, 2.0)
        };
        movie_keyword.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id as i64),
            Value::Int(keyword_id as i64),
        ]);
    }

    // ---- movie_companies ----------------------------------------------------------------
    let n_mc = config.movie_companies();
    let mut movie_companies = TableBuilder::new(
        "movie_companies",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::not_null("company_id", DataType::Int),
            Column::new("company_type_id", DataType::Int),
            Column::new("note", DataType::Text),
        ],
    );
    for i in 0..n_mc {
        let movie_id = skewed_index(&mut rng, n_titles, 2.4) as i64;
        let company_id = skewed_index(&mut rng, n_companies, 2.2) as i64;
        let company_type_id = 1 + skewed_index(&mut rng, 4, 2.5) as i64;
        let note = if rng.gen_bool(0.25) {
            Value::from("(co-production)")
        } else if rng.gen_bool(0.1) {
            Value::from("(presents)")
        } else {
            Value::Null
        };
        movie_companies.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id),
            Value::Int(company_id),
            Value::Int(company_type_id),
            note,
        ]);
    }

    // ---- movie_info ------------------------------------------------------------------------
    let n_mi = config.movie_infos();
    let mut movie_info = TableBuilder::new(
        "movie_info",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::not_null("info_type_id", DataType::Int),
            Column::new("info", DataType::Text),
        ],
    );
    for i in 0..n_mi {
        // Recent / franchise movies have more info rows (correlation with year).
        let movie_id = skewed_index(&mut rng, n_titles, 2.8) as i64;
        let info_type_id = match skewed_index(&mut rng, 10, 1.8) {
            0 => 4, // genres
            1 => 6, // countries
            2 => 5, // release dates
            3 => 7, // languages
            4 => 1, // budget
            other => 10 + other as i64,
        };
        let info = match info_type_id {
            4 => Value::from(GENRES[skewed_index(&mut rng, GENRES.len(), 1.8)]),
            6 => Value::from(COUNTRIES[skewed_index(&mut rng, COUNTRIES.len(), 2.2)]),
            5 => Value::from(format!("USA:{}", 1930 + rng.gen_range(0..90))),
            7 => Value::from("English"),
            1 => Value::from(format!("${}", 1_000_000 + rng.gen_range(0..200_000_000i64))),
            _ => Value::from(format!("detail {i:05}")),
        };
        movie_info.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id),
            Value::Int(info_type_id),
            info,
        ]);
    }

    // ---- movie_info_idx ----------------------------------------------------------------------
    let n_mi_idx = config.movie_info_idxs();
    let mut movie_info_idx = TableBuilder::new(
        "movie_info_idx",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::not_null("info_type_id", DataType::Int),
            Column::new("info", DataType::Text),
        ],
    );
    for i in 0..n_mi_idx {
        let movie_id = skewed_index(&mut rng, n_titles, 2.2) as i64;
        let info_type_id = match i % 3 {
            0 => 2, // votes
            1 => 3, // rating
            _ => 8, // top 250 rank
        };
        let info = match info_type_id {
            2 => Value::from(format!("{}", 10 + skewed_index(&mut rng, 2_000_000, 3.0))),
            3 => Value::from(format!("{:.1}", 1.0 + rng.gen_range(0.0..9.0f64))),
            _ => Value::from(format!("{}", 1 + rng.gen_range(0..250))),
        };
        movie_info_idx.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id),
            Value::Int(info_type_id),
            info,
        ]);
    }

    // ---- aka_name / aka_title / person_info / movie_link / complete_cast ---------------------
    let mut aka_name = TableBuilder::new(
        "aka_name",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("person_id", DataType::Int),
            Column::new("name", DataType::Text),
        ],
    );
    for i in 0..config.aka_names() {
        let person_id = skewed_index(&mut rng, n_names, 2.0) as i64;
        aka_name.row(vec![
            Value::Int(i as i64),
            Value::Int(person_id),
            Value::from(format!("Alias {i:05}")),
        ]);
    }

    let mut aka_title = TableBuilder::new(
        "aka_title",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::new("title", DataType::Text),
        ],
    );
    for i in 0..config.aka_titles() {
        let movie_id = skewed_index(&mut rng, n_titles, 2.0) as i64;
        aka_title.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id),
            Value::from(format!("Alternate Title {i:05}")),
        ]);
    }

    let mut person_info = TableBuilder::new(
        "person_info",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("person_id", DataType::Int),
            Column::not_null("info_type_id", DataType::Int),
            Column::new("info", DataType::Text),
        ],
    );
    for i in 0..config.person_infos() {
        let person_id = skewed_index(&mut rng, n_names, 2.2) as i64;
        let info_type_id = if i % 2 == 0 { 19 } else { 20 };
        let info = if info_type_id == 19 {
            Value::from(format!("Biography text {i:05}"))
        } else {
            Value::from(format!("19{:02}-01-01", rng.gen_range(20..99)))
        };
        person_info.row(vec![
            Value::Int(i as i64),
            Value::Int(person_id),
            Value::Int(info_type_id),
            info,
        ]);
    }

    let mut movie_link = TableBuilder::new(
        "movie_link",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::not_null("linked_movie_id", DataType::Int),
            Column::new("link_type_id", DataType::Int),
        ],
    );
    for i in 0..config.movie_links() {
        // Links connect franchise movies to each other (sequels, follows).
        let movie_id = skewed_index(&mut rng, n_titles, 3.0) as i64;
        let linked = skewed_index(&mut rng, n_titles, 3.0) as i64;
        let link_type_id = 1 + skewed_index(&mut rng, link_names.len(), 2.0) as i64;
        movie_link.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id),
            Value::Int(linked),
            Value::Int(link_type_id),
        ]);
    }

    let mut complete_cast = TableBuilder::new(
        "complete_cast",
        vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("movie_id", DataType::Int),
            Column::new("subject_id", DataType::Int),
            Column::new("status_id", DataType::Int),
        ],
    );
    for i in 0..config.complete_casts() {
        let movie_id = skewed_index(&mut rng, n_titles, 2.2) as i64;
        complete_cast.row(vec![
            Value::Int(i as i64),
            Value::Int(movie_id),
            Value::Int(1 + (i % 2) as i64),
            Value::Int(3 + (i % 2) as i64),
        ]);
    }

    // ---- register tables, indexes and statistics ---------------------------------------------
    let tables = vec![
        kind_type.finish(),
        role_type.finish(),
        company_type.finish(),
        link_type.finish(),
        comp_cast_type.finish(),
        info_type.finish(),
        keyword.finish(),
        title.finish(),
        name.finish(),
        char_name.finish(),
        company_name.finish(),
        cast_info.finish(),
        movie_keyword.finish(),
        movie_companies.finish(),
        movie_info.finish(),
        movie_info_idx.finish(),
        aka_name.finish(),
        aka_title.finish(),
        person_info.finish(),
        movie_link.finish(),
        complete_cast.finish(),
    ];
    for table in tables {
        db.create_table(table)?;
    }

    // Primary keys on every `id` column, foreign-key indexes on every reference — the
    // paper adds FK indexes "making access path selection more challenging".
    let pk_tables = [
        "kind_type",
        "role_type",
        "company_type",
        "link_type",
        "comp_cast_type",
        "info_type",
        "keyword",
        "title",
        "name",
        "char_name",
        "company_name",
        "cast_info",
        "movie_keyword",
        "movie_companies",
        "movie_info",
        "movie_info_idx",
        "aka_name",
        "aka_title",
        "person_info",
        "movie_link",
        "complete_cast",
    ];
    for table in pk_tables {
        db.create_index(table, "id", IndexKind::BTree)?;
    }
    let fk_indexes = [
        ("cast_info", "movie_id"),
        ("cast_info", "person_id"),
        ("cast_info", "role_id"),
        ("cast_info", "person_role_id"),
        ("movie_keyword", "movie_id"),
        ("movie_keyword", "keyword_id"),
        ("movie_companies", "movie_id"),
        ("movie_companies", "company_id"),
        ("movie_companies", "company_type_id"),
        ("movie_info", "movie_id"),
        ("movie_info", "info_type_id"),
        ("movie_info_idx", "movie_id"),
        ("movie_info_idx", "info_type_id"),
        ("title", "kind_id"),
        ("aka_name", "person_id"),
        ("aka_title", "movie_id"),
        ("person_info", "person_id"),
        ("movie_link", "movie_id"),
        ("movie_link", "linked_movie_id"),
        ("movie_link", "link_type_id"),
        ("complete_cast", "movie_id"),
    ];
    for (table, column) in fk_indexes {
        db.create_index(table, column, IndexKind::Hash)?;
    }

    db.analyze_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let config = ImdbConfig::tiny();
        let mut a = Database::new();
        load_imdb(&mut a, &config).unwrap();
        let mut b = Database::new();
        load_imdb(&mut b, &config).unwrap();
        assert_eq!(a.storage().total_rows(), b.storage().total_rows());
        let rows_a: Vec<_> = a.storage().table("cast_info").unwrap().to_rows();
        let rows_b: Vec<_> = b.storage().table("cast_info").unwrap().to_rows();
        assert_eq!(rows_a[..50], rows_b[..50]);
    }

    #[test]
    fn all_21_tables_exist_with_statistics() {
        let mut db = Database::new();
        load_imdb(&mut db, &ImdbConfig::tiny()).unwrap();
        assert_eq!(db.storage().table_count(), 21);
        for table in db.storage().table_names() {
            assert!(db.catalog().has_statistics(&table), "missing stats for {table}");
        }
        assert_eq!(db.storage().table("info_type").unwrap().row_count(), 113);
        assert_eq!(db.storage().table("kind_type").unwrap().row_count(), 7);
        assert_eq!(db.storage().table("role_type").unwrap().row_count(), 12);
    }

    #[test]
    fn movie_keyword_is_skewed_towards_special_keywords() {
        let mut db = Database::new();
        load_imdb(&mut db, &ImdbConfig::tiny()).unwrap();
        let mk = db.storage().table("movie_keyword").unwrap();
        let total = mk.row_count() as f64;
        let keyword_col = mk.schema().index_of(None, "keyword_id").unwrap();
        let special = mk
            .iter_rows()
            .filter(|r| (r.value(keyword_col).as_int().unwrap() as usize) < SPECIAL_KEYWORDS.len())
            .count() as f64;
        // The special keywords are a tiny fraction of the keyword dictionary but a
        // large fraction of the usages.
        assert!(special / total > 0.3, "special share {}", special / total);
    }

    #[test]
    fn referential_integrity_holds() {
        let mut db = Database::new();
        load_imdb(&mut db, &ImdbConfig::tiny()).unwrap();
        let titles = db.storage().table("title").unwrap().row_count() as i64;
        let ci = db.storage().table("cast_info").unwrap();
        let movie_col = ci.schema().index_of(None, "movie_id").unwrap();
        assert!(ci
            .iter_rows()
            .all(|r| { (0..titles).contains(&r.value(movie_col).as_int().unwrap()) }));
        let keywords = db.storage().table("keyword").unwrap().row_count() as i64;
        let mk = db.storage().table("movie_keyword").unwrap();
        let kw_col = mk.schema().index_of(None, "keyword_id").unwrap();
        assert!(mk
            .iter_rows()
            .all(|r| (0..keywords).contains(&r.value(kw_col).as_int().unwrap())));
    }

    #[test]
    fn queries_run_against_the_generated_data() {
        let mut db = Database::new();
        load_imdb(&mut db, &ImdbConfig::tiny()).unwrap();
        let output = db
            .execute(
                "SELECT count(*) AS c
                 FROM movie_keyword AS mk, keyword AS k
                 WHERE mk.keyword_id = k.id AND k.keyword = 'superhero'",
            )
            .unwrap();
        assert!(output.rows[0].value(0).as_int().unwrap() > 0);
        let output = db
            .execute(
                "SELECT min(t.title) AS movie, count(*) AS c
                 FROM title AS t, cast_info AS ci, name AS n
                 WHERE t.id = ci.movie_id AND ci.person_id = n.id AND n.gender = 'f'
                   AND t.production_year > 2010",
            )
            .unwrap();
        assert!(output.rows[0].value(1).as_int().unwrap() > 0);
    }

    #[test]
    fn skewed_index_respects_bounds_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..1000 {
            let idx = skewed_index(&mut rng, 100, 3.0);
            assert!(idx < 100);
            if idx < 10 {
                low += 1;
            }
        }
        // With cubic skew more than a third of the samples land in the lowest decile.
        assert!(low > 333, "low-index share {low}/1000");
    }
}
