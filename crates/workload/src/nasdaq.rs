//! The Nasdaq companies/trades example of Section IV-C (Tables IV and V).
//!
//! "40 stocks out of 4000 in the NYSE account for 50% of the total volume": the trades
//! table is generated so that a handful of symbols carry most of the volume. The
//! uniformity assumption then badly underestimates the join
//! `company.symbol = 'APPL' AND company.id = trades.company_id`, because the filter on
//! `symbol` selects exactly the company whose join-key frequency is far above average —
//! a textbook join-crossing skew, and the smallest reproducible instance of the failure
//! mode the paper's JOB deep dives exhibit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reopt_core::{Database, DbError};
use reopt_storage::{Column, DataType, IndexKind, Row, Schema, Table, Value};

/// Configuration for the Nasdaq example generator.
#[derive(Debug, Clone, PartialEq)]
pub struct NasdaqConfig {
    /// Number of companies.
    pub companies: usize,
    /// Number of trades.
    pub trades: usize,
    /// Fraction of all trades that go to the hot symbols.
    pub hot_fraction: f64,
    /// Number of hot symbols sharing `hot_fraction` of the volume.
    pub hot_symbols: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NasdaqConfig {
    fn default() -> Self {
        Self {
            companies: 4_000,
            trades: 100_000,
            hot_fraction: 0.5,
            hot_symbols: 40,
            seed: 17,
        }
    }
}

impl NasdaqConfig {
    /// A configuration scaled for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            companies: 200,
            trades: 5_000,
            ..Self::default()
        }
    }
}

/// The SQL of the paper's example query (Section IV-C): all trades of APPL.
pub const APPL_QUERY: &str = "SELECT count(*) AS appl_trades
FROM company AS c, trades AS tr
WHERE c.symbol = 'APPL' AND c.id = tr.company_id";

/// Load the companies/trades example into the database (tables, indexes, ANALYZE).
pub fn load_nasdaq(db: &mut Database, config: &NasdaqConfig) -> Result<(), DbError> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut company = Table::new(
        "company",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("symbol", DataType::Text),
            Column::new("name", DataType::Text),
        ]),
    );
    for i in 0..config.companies {
        let symbol = match i {
            0 => "APPL".to_string(),
            1 => "GOOG".to_string(),
            2 => "MSFT".to_string(),
            3 => "AMZN".to_string(),
            _ => format!("SYM{i:04}"),
        };
        company.push_row_unchecked(Row::from_values(vec![
            Value::Int(i as i64),
            Value::from(symbol.clone()),
            Value::from(format!("{symbol} Inc.")),
        ]));
    }

    let mut trades = Table::new(
        "trades",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("company_id", DataType::Int),
            Column::new("shares", DataType::Int),
            Column::new("price", DataType::Float),
        ]),
    );
    let hot = config.hot_symbols.min(config.companies).max(1);
    for i in 0..config.trades {
        let company_id = if rng.gen_bool(config.hot_fraction) {
            // Within the hot set, volume itself is skewed: APPL (id 0) dominates.
            let r: f64 = rng.gen_range(0.0..1.0);
            ((r * r) * hot as f64) as usize
        } else {
            rng.gen_range(0..config.companies)
        } as i64;
        trades.push_row_unchecked(Row::from_values(vec![
            Value::Int(i as i64),
            Value::Int(company_id),
            Value::Int(rng.gen_range(1..5_000)),
            Value::Float((rng.gen_range(100..90_000) as f64) / 100.0),
        ]));
    }

    db.create_table(company)?;
    db.create_table(trades)?;
    db.create_index("company", "id", IndexKind::BTree)?;
    db.create_index("company", "symbol", IndexKind::Hash)?;
    db.create_index("trades", "company_id", IndexKind::Hash)?;
    db.analyze_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_planner::RelSet;

    #[test]
    fn hot_symbols_dominate_volume() {
        let mut db = Database::new();
        let config = NasdaqConfig::tiny();
        load_nasdaq(&mut db, &config).unwrap();
        let output = db.execute(APPL_QUERY).unwrap();
        let appl_trades = output.rows[0].value(0).as_int().unwrap();
        // APPL alone should hold far more than the uniform share (trades / companies).
        let uniform_share = (config.trades / config.companies) as i64;
        assert!(
            appl_trades > uniform_share * 5,
            "APPL trades {appl_trades} vs uniform share {uniform_share}"
        );
    }

    #[test]
    fn appl_join_is_underestimated_like_the_paper_says() {
        let mut db = Database::new();
        load_nasdaq(&mut db, &NasdaqConfig::tiny()).unwrap();
        let output = db.execute(APPL_QUERY).unwrap();
        let actual = output.rows[0].value(0).as_int().unwrap() as f64;
        // The top join's estimate comes straight from the plan.
        let plan = output.plan.as_ref().unwrap();
        let join_estimate = plan.children[0].estimated_rows;
        assert!(
            join_estimate * 5.0 < actual,
            "estimate {join_estimate} should be far below actual {actual}"
        );
        // ... and the estimate for the filtered company side is accurate (1 company).
        let spec = output.spec.as_ref().unwrap();
        let c = spec.relation_by_alias("c").unwrap();
        let mut found = false;
        plan.walk(&mut |node| {
            if node.rel_set == RelSet::single(c) {
                found = true;
                assert!(node.estimated_rows < 10.0);
            }
        });
        assert!(found);
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = Database::new();
        load_nasdaq(&mut a, &NasdaqConfig::tiny()).unwrap();
        let mut b = Database::new();
        load_nasdaq(&mut b, &NasdaqConfig::tiny()).unwrap();
        assert_eq!(
            a.storage().table("trades").unwrap().to_rows()[..100],
            b.storage().table("trades").unwrap().to_rows()[..100]
        );
    }
}
