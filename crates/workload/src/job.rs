//! A JOB-style query suite.
//!
//! The Join Order Benchmark has 113 select-project-join queries over the IMDB schema,
//! grouped into families that share a join graph and differ only in their filter
//! constants. This module rebuilds that structure over the synthetic IMDB schema of
//! [`crate::imdb`]: 21 families whose per-query table counts reproduce Table III of the
//! paper exactly (3 queries with 4 tables, 20 with 5, 2 with 6, 16 with 7, 21 with 8,
//! 14 with 9, 7 with 10, 10 with 11, 11 with 12, 6 with 14 and 3 with 17), and whose
//! predicates select the skewed keyword/cast/company classes the generator plants.
//!
//! Queries `2d` and `7a` mirror the paper's deep-dive queries 6d and 18a: the same join
//! graphs (Figures 3 and 4) with predicates on the popular-keyword class and on
//! producer notes respectively.

/// One query of the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct JobQuery {
    /// Query identifier, e.g. "2d".
    pub id: String,
    /// Family number (queries in a family share a join graph).
    pub family: usize,
    /// Variant letter within the family.
    pub variant: char,
    /// Number of relations in the FROM list.
    pub table_count: usize,
    /// The SQL text.
    pub sql: String,
}

const VARIANT_LETTERS: &[char] = &['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k'];

/// Rotating filter constants used to derive the variants of each family.
const KEYWORD_SETS: &[&str] = &[
    "'superhero', 'sequel', 'based-on-comic', 'marvel-comics'",
    "'character-name-in-title'",
    "'sequel', 'second-part', 'fight', 'violence'",
    "'superhero', 'blockbuster'",
    "'based-on-novel', 'murder', 'revenge'",
    "'independent-film', 'tv-special'",
    "'love', 'murder'",
    "'superhero', 'sequel', 'second-part', 'marvel-comics', 'based-on-comic', 'tv-special', 'fight', 'violence'",
    "'blockbuster', 'fight'",
    "'based-on-comic'",
    "'revenge', 'violence', 'murder'",
];
const YEARS: &[i64] = &[2000, 2010, 1990, 2005, 1980, 2015, 1995, 2008, 1985, 2012, 1975];
const NAME_PATTERNS: &[&str] = &[
    "%Downey%Robert%",
    "%Tim%",
    "X%",
    "%Smith%",
    "%Anna%",
    "%John%",
    "%son%",
    "%Williams%",
    "%Emma%",
    "%Lee%",
    "%an%",
];
const GENDERS: &[&str] = &["m", "f", "m", "f", "m", "m", "f", "m", "f", "m", "f"];
const COUNTRY_CODES: &[&str] = &[
    "[us]", "[gb]", "[de]", "[us]", "[fr]", "[jp]", "[us]", "[it]", "[in]", "[ca]", "[us]",
];
const GENRES: &[&str] = &[
    "Action", "Drama", "Comedy", "Thriller", "Horror", "Sci-Fi", "Action", "Crime", "Romance",
    "Adventure", "Drama",
];
const NOTES: &[&str] = &[
    "'(producer)', '(executive producer)'",
    "'(producer)'",
    "'(executive producer)'",
    "'(voice)'",
    "'(producer)', '(voice)'",
    "'(executive producer)', '(voice)'",
    "'(producer)', '(executive producer)', '(voice)'",
    "'(uncredited)'",
    "'(producer)', '(uncredited)'",
    "'(voice)', '(uncredited)'",
    "'(executive producer)', '(uncredited)'",
];
const ROLES: &[&str] = &[
    "actor", "actress", "producer", "director", "writer", "actor", "actress", "composer",
    "editor", "actor", "actress",
];
const KINDS: &[&str] = &[
    "movie",
    "tv series",
    "movie",
    "tv movie",
    "movie",
    "episode",
    "movie",
    "video movie",
    "movie",
    "tv series",
    "movie",
];

fn kw(variant: usize) -> &'static str {
    KEYWORD_SETS[variant % KEYWORD_SETS.len()]
}
fn year(variant: usize) -> i64 {
    YEARS[variant % YEARS.len()]
}
fn pattern(variant: usize) -> &'static str {
    NAME_PATTERNS[variant % NAME_PATTERNS.len()]
}
fn gender(variant: usize) -> &'static str {
    GENDERS[variant % GENDERS.len()]
}
fn country(variant: usize) -> &'static str {
    COUNTRY_CODES[variant % COUNTRY_CODES.len()]
}
fn genre(variant: usize) -> &'static str {
    GENRES[variant % GENRES.len()]
}
fn note(variant: usize) -> &'static str {
    NOTES[variant % NOTES.len()]
}
fn role(variant: usize) -> &'static str {
    ROLES[variant % ROLES.len()]
}
fn kind(variant: usize) -> &'static str {
    KINDS[variant % KINDS.len()]
}

/// Family 1 — 4 tables: title, kind_type, movie_keyword, keyword.
fn family1(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title
         FROM title AS t, kind_type AS kt, movie_keyword AS mk, keyword AS k
         WHERE t.kind_id = kt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND kt.kind = '{}' AND k.keyword IN ({}) AND t.production_year > {}",
        kind(v),
        kw(v),
        year(v)
    )
}

/// Family 2 — 5 tables: the paper's query 6d join graph (Figure 3):
/// cast_info, keyword, movie_keyword, name, title.
fn family2(v: usize) -> String {
    format!(
        "SELECT min(k.keyword) AS movie_keyword, min(n.name) AS actor_name, min(t.title) AS hero_movie
         FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
         WHERE k.keyword IN ({}) AND n.name LIKE '{}' AND t.production_year > {}
           AND mk.keyword_id = k.id AND mk.movie_id = t.id AND ci.movie_id = t.id
           AND ci.person_id = n.id",
        kw(v),
        pattern(v),
        year(v)
    )
}

/// Family 3 — 5 tables: title, movie_companies, company_name, company_type, kind_type.
fn family3(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title, min(cn.name) AS company
         FROM title AS t, movie_companies AS mc, company_name AS cn, company_type AS ct, kind_type AS kt
         WHERE mc.movie_id = t.id AND mc.company_id = cn.id AND mc.company_type_id = ct.id
           AND t.kind_id = kt.id AND cn.country_code = '{}' AND ct.kind = 'production companies'
           AND t.production_year > {}",
        country(v),
        year(v)
    )
}

/// Family 4 — 5 tables: title, movie_info_idx, info_type, cast_info, name.
fn family4(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title, min(n.name) AS actor
         FROM title AS t, movie_info_idx AS mi_idx, info_type AS it, cast_info AS ci, name AS n
         WHERE mi_idx.movie_id = t.id AND mi_idx.info_type_id = it.id AND ci.movie_id = t.id
           AND ci.person_id = n.id AND it.info = 'votes' AND n.gender = '{}'
           AND t.production_year > {}",
        gender(v),
        year(v)
    )
}

/// Family 5 — 5 tables: title, movie_link, link_type, movie_keyword, keyword.
fn family5(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS linked_movie
         FROM title AS t, movie_link AS ml, link_type AS lt, movie_keyword AS mk, keyword AS k
         WHERE ml.movie_id = t.id AND ml.link_type_id = lt.id AND mk.movie_id = t.id
           AND mk.keyword_id = k.id AND k.keyword IN ({}) AND lt.link = 'follows'
           AND t.production_year > {}",
        kw(v),
        year(v)
    )
}

/// Family 6 — 6 tables: title, kind_type, movie_keyword, keyword, cast_info, name.
fn family6(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title, min(n.name) AS member
         FROM title AS t, kind_type AS kt, movie_keyword AS mk, keyword AS k, cast_info AS ci, name AS n
         WHERE t.kind_id = kt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND ci.movie_id = t.id AND ci.person_id = n.id
           AND k.keyword IN ({}) AND kt.kind = '{}' AND n.name LIKE '{}'",
        kw(v),
        kind(v),
        pattern(v)
    )
}

/// Family 7 — 7 tables: the paper's query 18a join graph (Figure 4):
/// cast_info, info_type (twice), movie_info, movie_info_idx, name, title.
fn family7(v: usize) -> String {
    format!(
        "SELECT min(mi.info) AS movie_budget, min(mi_idx.info) AS movie_votes, min(t.title) AS movie_title
         FROM cast_info AS ci, info_type AS it1, info_type AS it2, movie_info AS mi,
              movie_info_idx AS mi_idx, name AS n, title AS t
         WHERE ci.note IN ({}) AND it1.info = 'budget' AND it2.info = 'votes'
           AND n.gender = '{}' AND n.name LIKE '{}'
           AND t.id = mi.movie_id AND t.id = mi_idx.movie_id AND t.id = ci.movie_id
           AND ci.person_id = n.id AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id",
        note(v),
        gender(v),
        pattern(v)
    )
}

/// Family 8 — 7 tables: title, cast_info, name, role_type, company_name, movie_companies, company_type.
fn family8(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title, min(n.name) AS person
         FROM title AS t, cast_info AS ci, name AS n, role_type AS rt,
              company_name AS cn, movie_companies AS mc, company_type AS ct
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.role_id = rt.id
           AND mc.movie_id = t.id AND mc.company_id = cn.id AND mc.company_type_id = ct.id
           AND rt.role = '{}' AND cn.country_code = '{}' AND t.production_year > {}",
        role(v),
        country(v),
        year(v)
    )
}

/// Family 9 — 7 tables: title, cast_info, name, char_name, role_type, movie_keyword, keyword.
fn family9(v: usize) -> String {
    format!(
        "SELECT min(chn.name) AS character, min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, char_name AS chn, role_type AS rt,
              movie_keyword AS mk, keyword AS k
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.person_role_id = chn.id
           AND ci.role_id = rt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND k.keyword IN ({}) AND rt.role = '{}' AND n.name LIKE '{}'",
        kw(v),
        role(v),
        pattern(v)
    )
}

/// Family 10 — 7 tables: title, movie_companies, company_name, company_type, movie_info, info_type, kind_type.
fn family10(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title, min(mi.info) AS genre
         FROM title AS t, movie_companies AS mc, company_name AS cn, company_type AS ct,
              movie_info AS mi, info_type AS it, kind_type AS kt
         WHERE mc.movie_id = t.id AND mc.company_id = cn.id AND mc.company_type_id = ct.id
           AND mi.movie_id = t.id AND mi.info_type_id = it.id AND t.kind_id = kt.id
           AND it.info = 'genres' AND mi.info = '{}' AND cn.country_code = '{}'
           AND t.production_year > {}",
        genre(v),
        country(v),
        year(v)
    )
}

/// Family 11 — 8 tables: title, cast_info, name, movie_keyword, keyword, movie_companies, company_name, company_type.
fn family11(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS movie_title, min(n.name) AS actor, min(cn.name) AS studio
         FROM title AS t, cast_info AS ci, name AS n, movie_keyword AS mk, keyword AS k,
              movie_companies AS mc, company_name AS cn, company_type AS ct
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND mk.movie_id = t.id
           AND mk.keyword_id = k.id AND mc.movie_id = t.id AND mc.company_id = cn.id
           AND mc.company_type_id = ct.id
           AND k.keyword IN ({}) AND n.name LIKE '{}' AND cn.country_code = '{}'
           AND t.production_year > {}",
        kw(v),
        pattern(v),
        country(v),
        year(v)
    )
}

/// Family 12 — 8 tables: title, movie_info, info_type x2, movie_info_idx, cast_info, name, role_type.
fn family12(v: usize) -> String {
    format!(
        "SELECT min(mi.info) AS budget, min(mi_idx.info) AS votes, min(n.name) AS producer
         FROM title AS t, movie_info AS mi, info_type AS it1, movie_info_idx AS mi_idx,
              info_type AS it2, cast_info AS ci, name AS n, role_type AS rt
         WHERE mi.movie_id = t.id AND mi.info_type_id = it1.id AND mi_idx.movie_id = t.id
           AND mi_idx.info_type_id = it2.id AND ci.movie_id = t.id AND ci.person_id = n.id
           AND ci.role_id = rt.id
           AND it1.info = 'budget' AND it2.info = 'rating' AND rt.role = '{}'
           AND ci.note IN ({}) AND t.production_year > {}",
        role(v),
        note(v),
        year(v)
    )
}

/// Family 13 — 8 tables: title, movie_keyword, keyword, movie_link, link_type, movie_companies, company_name, kind_type.
fn family13(v: usize) -> String {
    format!(
        "SELECT min(t.title) AS franchise_movie, min(cn.name) AS studio
         FROM title AS t, movie_keyword AS mk, keyword AS k, movie_link AS ml, link_type AS lt,
              movie_companies AS mc, company_name AS cn, kind_type AS kt
         WHERE mk.movie_id = t.id AND mk.keyword_id = k.id AND ml.movie_id = t.id
           AND ml.link_type_id = lt.id AND mc.movie_id = t.id AND mc.company_id = cn.id
           AND t.kind_id = kt.id
           AND k.keyword IN ({}) AND kt.kind = '{}' AND cn.country_code = '{}'",
        kw(v),
        kind(v),
        country(v)
    )
}

/// Family 14 — 9 tables: title, cast_info, name, char_name, role_type, movie_keyword, keyword, movie_companies, company_name.
fn family14(v: usize) -> String {
    format!(
        "SELECT min(chn.name) AS character, min(n.name) AS actor, min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, char_name AS chn, role_type AS rt,
              movie_keyword AS mk, keyword AS k, movie_companies AS mc, company_name AS cn
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.person_role_id = chn.id
           AND ci.role_id = rt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND mc.movie_id = t.id AND mc.company_id = cn.id
           AND k.keyword IN ({}) AND rt.role = '{}' AND cn.country_code = '{}'
           AND t.production_year > {}",
        kw(v),
        role(v),
        country(v),
        year(v)
    )
}

/// Family 15 — 9 tables: title, movie_info, info_type x2, movie_info_idx, movie_keyword, keyword, cast_info, name.
fn family15(v: usize) -> String {
    format!(
        "SELECT min(mi.info) AS info, min(mi_idx.info) AS rating, min(t.title) AS movie_title
         FROM title AS t, movie_info AS mi, info_type AS it1, movie_info_idx AS mi_idx,
              info_type AS it2, movie_keyword AS mk, keyword AS k, cast_info AS ci, name AS n
         WHERE mi.movie_id = t.id AND mi.info_type_id = it1.id AND mi_idx.movie_id = t.id
           AND mi_idx.info_type_id = it2.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND ci.movie_id = t.id AND ci.person_id = n.id
           AND it1.info = 'genres' AND it2.info = 'votes' AND mi.info = '{}'
           AND k.keyword IN ({}) AND n.gender = '{}' AND t.production_year > {}",
        genre(v),
        kw(v),
        gender(v),
        year(v)
    )
}

/// Family 16 — 10 tables: title, cast_info, name, aka_name, movie_keyword, keyword,
/// movie_companies, company_name, company_type, kind_type.
fn family16(v: usize) -> String {
    format!(
        "SELECT min(an.name) AS alias, min(n.name) AS person, min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, aka_name AS an, movie_keyword AS mk,
              keyword AS k, movie_companies AS mc, company_name AS cn, company_type AS ct,
              kind_type AS kt
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND an.person_id = n.id
           AND mk.movie_id = t.id AND mk.keyword_id = k.id AND mc.movie_id = t.id
           AND mc.company_id = cn.id AND mc.company_type_id = ct.id AND t.kind_id = kt.id
           AND k.keyword IN ({}) AND n.name LIKE '{}' AND cn.country_code = '{}'
           AND kt.kind = '{}' AND t.production_year > {}",
        kw(v),
        pattern(v),
        country(v),
        kind(v),
        year(v)
    )
}

/// Family 17 — 11 tables: adds char_name and role_type to the family-16 graph (no aka_name).
fn family17(v: usize) -> String {
    format!(
        "SELECT min(chn.name) AS character, min(n.name) AS actor, min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, char_name AS chn, role_type AS rt,
              movie_keyword AS mk, keyword AS k, movie_companies AS mc, company_name AS cn,
              company_type AS ct, kind_type AS kt
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND ci.person_role_id = chn.id
           AND ci.role_id = rt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND mc.movie_id = t.id AND mc.company_id = cn.id AND mc.company_type_id = ct.id
           AND t.kind_id = kt.id
           AND k.keyword IN ({}) AND rt.role = '{}' AND cn.country_code = '{}'
           AND kt.kind = '{}' AND t.production_year > {}",
        kw(v),
        role(v),
        country(v),
        kind(v),
        year(v)
    )
}

/// Family 18 — 11 tables: ratings + info + keywords + people.
fn family18(v: usize) -> String {
    format!(
        "SELECT min(mi.info) AS budget, min(mi_idx.info) AS votes, min(t.title) AS movie_title
         FROM title AS t, movie_info AS mi, info_type AS it1, movie_info_idx AS mi_idx,
              info_type AS it2, cast_info AS ci, name AS n, role_type AS rt,
              movie_keyword AS mk, keyword AS k, kind_type AS kt
         WHERE mi.movie_id = t.id AND mi.info_type_id = it1.id AND mi_idx.movie_id = t.id
           AND mi_idx.info_type_id = it2.id AND ci.movie_id = t.id AND ci.person_id = n.id
           AND ci.role_id = rt.id AND mk.movie_id = t.id AND mk.keyword_id = k.id
           AND t.kind_id = kt.id
           AND it1.info = 'budget' AND it2.info = 'votes' AND k.keyword IN ({})
           AND rt.role = '{}' AND n.gender = '{}' AND kt.kind = '{}'",
        kw(v),
        role(v),
        gender(v),
        kind(v)
    )
}

/// Family 19 — 12 tables: the full people/keyword/company graph.
fn family19(v: usize) -> String {
    format!(
        "SELECT min(an.name) AS alias, min(chn.name) AS character, min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, aka_name AS an, char_name AS chn,
              role_type AS rt, movie_keyword AS mk, keyword AS k, movie_companies AS mc,
              company_name AS cn, company_type AS ct, kind_type AS kt
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND an.person_id = n.id
           AND ci.person_role_id = chn.id AND ci.role_id = rt.id AND mk.movie_id = t.id
           AND mk.keyword_id = k.id AND mc.movie_id = t.id AND mc.company_id = cn.id
           AND mc.company_type_id = ct.id AND t.kind_id = kt.id
           AND k.keyword IN ({}) AND rt.role = '{}' AND n.name LIKE '{}'
           AND cn.country_code = '{}' AND kt.kind = '{}' AND t.production_year > {}",
        kw(v),
        role(v),
        pattern(v),
        country(v),
        kind(v),
        year(v)
    )
}

/// Family 20 — 14 tables: family 19 plus movie_info and its info_type.
fn family20(v: usize) -> String {
    format!(
        "SELECT min(an.name) AS alias, min(chn.name) AS character, min(mi.info) AS genre,
                min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, aka_name AS an, char_name AS chn,
              role_type AS rt, movie_keyword AS mk, keyword AS k, movie_companies AS mc,
              company_name AS cn, company_type AS ct, kind_type AS kt,
              movie_info AS mi, info_type AS it1
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND an.person_id = n.id
           AND ci.person_role_id = chn.id AND ci.role_id = rt.id AND mk.movie_id = t.id
           AND mk.keyword_id = k.id AND mc.movie_id = t.id AND mc.company_id = cn.id
           AND mc.company_type_id = ct.id AND t.kind_id = kt.id AND mi.movie_id = t.id
           AND mi.info_type_id = it1.id
           AND it1.info = 'genres' AND mi.info = '{}' AND k.keyword IN ({})
           AND rt.role = '{}' AND cn.country_code = '{}' AND kt.kind = '{}'
           AND t.production_year > {}",
        genre(v),
        kw(v),
        role(v),
        country(v),
        kind(v),
        year(v)
    )
}

/// Family 21 — 17 tables: the largest graph, adding movie_info_idx (with its own
/// info_type) and complete_cast to family 20.
fn family21(v: usize) -> String {
    format!(
        "SELECT min(an.name) AS alias, min(chn.name) AS character, min(mi.info) AS genre,
                min(mi_idx.info) AS votes, min(t.title) AS movie_title
         FROM title AS t, cast_info AS ci, name AS n, aka_name AS an, char_name AS chn,
              role_type AS rt, movie_keyword AS mk, keyword AS k, movie_companies AS mc,
              company_name AS cn, company_type AS ct, kind_type AS kt,
              movie_info AS mi, info_type AS it1, movie_info_idx AS mi_idx, info_type AS it2,
              complete_cast AS cc
         WHERE ci.movie_id = t.id AND ci.person_id = n.id AND an.person_id = n.id
           AND ci.person_role_id = chn.id AND ci.role_id = rt.id AND mk.movie_id = t.id
           AND mk.keyword_id = k.id AND mc.movie_id = t.id AND mc.company_id = cn.id
           AND mc.company_type_id = ct.id AND t.kind_id = kt.id AND mi.movie_id = t.id
           AND mi.info_type_id = it1.id AND mi_idx.movie_id = t.id AND mi_idx.info_type_id = it2.id
           AND cc.movie_id = t.id
           AND it1.info = 'genres' AND it2.info = 'votes' AND mi.info = '{}'
           AND k.keyword IN ({}) AND rt.role = '{}' AND cn.country_code = '{}'
           AND kt.kind = '{}' AND t.production_year > {}",
        genre(v),
        kw(v),
        role(v),
        country(v),
        kind(v),
        year(v)
    )
}

/// `(family number, table count, variant count, generator)` for one query family.
type Family = (usize, usize, usize, fn(usize) -> String);

/// The whole suite, one entry per family.
/// The variant counts reproduce Table III of the paper:
/// 4→3, 5→20, 6→2, 7→16, 8→21, 9→14, 10→7, 11→10, 12→11, 14→6, 17→3 (113 total).
fn families() -> Vec<Family> {
    vec![
        (1, 4, 3, family1 as fn(usize) -> String),
        (2, 5, 5, family2),
        (3, 5, 5, family3),
        (4, 5, 5, family4),
        (5, 5, 5, family5),
        (6, 6, 2, family6),
        (7, 7, 4, family7),
        (8, 7, 4, family8),
        (9, 7, 4, family9),
        (10, 7, 4, family10),
        (11, 8, 7, family11),
        (12, 8, 7, family12),
        (13, 8, 7, family13),
        (14, 9, 7, family14),
        (15, 9, 7, family15),
        (16, 10, 7, family16),
        (17, 11, 5, family17),
        (18, 11, 5, family18),
        (19, 12, 11, family19),
        (20, 14, 6, family20),
        (21, 17, 3, family21),
    ]
}

/// The full 113-query suite.
pub fn job_queries() -> Vec<JobQuery> {
    let mut queries = Vec::with_capacity(113);
    for (family, table_count, variants, generator) in families() {
        for (v, &variant) in VARIANT_LETTERS.iter().enumerate().take(variants) {
            queries.push(JobQuery {
                id: format!("{family}{variant}"),
                family,
                variant,
                table_count,
                sql: generator(v),
            });
        }
    }
    queries
}

/// Look up a query by id (e.g. "2d").
pub fn job_query(id: &str) -> Option<JobQuery> {
    job_queries().into_iter().find(|q| q.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{load_imdb, ImdbConfig};
    use reopt_core::Database;
    use reopt_planner::bind_select;
    use reopt_sql::parse_sql;
    use std::collections::HashMap;

    #[test]
    fn suite_has_113_queries_with_unique_ids() {
        let queries = job_queries();
        assert_eq!(queries.len(), 113);
        let mut ids = std::collections::HashSet::new();
        for q in &queries {
            assert!(ids.insert(q.id.clone()), "duplicate id {}", q.id);
        }
    }

    #[test]
    fn table_count_distribution_matches_table_iii() {
        let mut histogram: HashMap<usize, usize> = HashMap::new();
        for q in job_queries() {
            *histogram.entry(q.table_count).or_default() += 1;
        }
        let expected = [
            (4, 3),
            (5, 20),
            (6, 2),
            (7, 16),
            (8, 21),
            (9, 14),
            (10, 7),
            (11, 10),
            (12, 11),
            (14, 6),
            (17, 3),
        ];
        for (tables, count) in expected {
            assert_eq!(histogram.get(&tables), Some(&count), "{tables}-table queries");
        }
        assert_eq!(histogram.values().sum::<usize>(), 113);
    }

    #[test]
    fn every_query_parses_and_declares_its_table_count() {
        for q in job_queries() {
            let statement = parse_sql(&q.sql).unwrap_or_else(|e| panic!("query {}: {e}", q.id));
            let select = statement.query().unwrap();
            assert_eq!(
                select.from.len(),
                q.table_count,
                "query {} declares {} tables but has {}",
                q.id,
                q.table_count,
                select.from.len()
            );
            assert!(select.has_aggregates(), "query {} should aggregate", q.id);
        }
    }

    #[test]
    fn every_query_binds_against_the_synthetic_imdb_schema() {
        let mut db = Database::new();
        load_imdb(&mut db, &ImdbConfig::tiny()).unwrap();
        for q in job_queries() {
            let statement = parse_sql(&q.sql).unwrap();
            let spec = bind_select(statement.query().unwrap(), db.storage())
                .unwrap_or_else(|e| panic!("query {} does not bind: {e}", q.id));
            assert_eq!(spec.relation_count(), q.table_count);
            // Every query's join graph must be connected (no Cartesian products).
            let graph = reopt_planner::JoinGraph::new(&spec);
            assert!(graph.is_fully_connected(), "query {} is disconnected", q.id);
        }
    }

    #[test]
    fn deep_dive_queries_exist() {
        let q2d = job_query("2d").unwrap();
        assert_eq!(q2d.table_count, 5);
        assert!(q2d.sql.contains("cast_info"));
        let q7a = job_query("7a").unwrap();
        assert_eq!(q7a.table_count, 7);
        assert!(q7a.sql.contains("info_type AS it2"));
        assert!(job_query("99z").is_none());
    }

    #[test]
    fn variants_differ_within_a_family() {
        let queries = job_queries();
        let family2: Vec<&JobQuery> = queries.iter().filter(|q| q.family == 2).collect();
        assert_eq!(family2.len(), 5);
        assert_ne!(family2[0].sql, family2[1].sql);
    }

    #[test]
    fn a_sample_of_queries_executes_end_to_end() {
        let mut db = Database::new();
        load_imdb(&mut db, &ImdbConfig::tiny()).unwrap();
        for id in ["1a", "2d", "3b", "7a"] {
            let q = job_query(id).unwrap();
            let output = db
                .execute(&q.sql)
                .unwrap_or_else(|e| panic!("query {id} failed: {e}"));
            assert_eq!(output.row_count(), 1, "aggregate query {id} returns one row");
        }
    }
}
