//! # reopt-catalog
//!
//! The catalog: which tables and indexes exist, and ANALYZE-style optimizer statistics.
//!
//! The statistics mirror what PostgreSQL keeps in `pg_statistic` and what the paper's
//! experimental setup relies on (Section III-A sets `default_statistics_target` to its
//! maximum and runs `ANALYZE`):
//!
//! * row count and average row width,
//! * per-column null fraction, number of distinct values, min/max,
//! * a most-common-values (MCV) list with frequencies,
//! * an equi-depth histogram over the remaining values.
//!
//! The cardinality estimator in `reopt-planner` consumes these statistics and applies
//! the textbook uniformity and independence assumptions — the exact assumptions whose
//! failure modes (skew, correlation, join-crossing correlation) the paper studies.

pub mod analyze;
pub mod feedback;
pub mod stats;

pub use analyze::{analyze_table, AnalyzeOptions};
pub use feedback::{
    FeedbackCache, FeedbackEntry, FeedbackKey, RelationFingerprint, DEFAULT_FEEDBACK_CAPACITY,
};
pub use stats::{ColumnStatistics, Histogram, MostCommonValues, TableStatistics};

use reopt_storage::{Storage, StorageError};
use std::collections::BTreeMap;

/// Default `statistics target`: the maximum number of MCV entries and histogram buckets
/// kept per column. PostgreSQL's default is 100; the paper raises it to 10 000. We use a
/// generous default because ANALYZE here is cheap (in-memory data).
pub const DEFAULT_STATISTICS_TARGET: usize = 200;

/// The catalog: per-table statistics plus ANALYZE configuration, plus the
/// cross-query cardinality [`FeedbackCache`].
///
/// Cloning a catalog copies the statistics but **shares the feedback cache**: a
/// session's snapshot of the database still records observations into (and seeds
/// from) the one store every concurrent session sees.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    statistics: BTreeMap<String, TableStatistics>,
    statistics_target: Option<usize>,
    feedback: FeedbackCache,
}

impl Catalog {
    /// Create an empty catalog with the default statistics target.
    pub fn new() -> Self {
        Self::default()
    }

    /// The effective statistics target (MCV list size / histogram buckets).
    pub fn statistics_target(&self) -> usize {
        self.statistics_target.unwrap_or(DEFAULT_STATISTICS_TARGET)
    }

    /// Override the statistics target (the paper sets PostgreSQL's to 10 000).
    pub fn set_statistics_target(&mut self, target: usize) {
        self.statistics_target = Some(target.max(1));
    }

    /// Run ANALYZE over a single table and store the resulting statistics.
    pub fn analyze(&mut self, storage: &Storage, table_name: &str) -> Result<(), StorageError> {
        let table = storage.table(table_name)?;
        let stats = analyze_table(
            table,
            &AnalyzeOptions {
                statistics_target: self.statistics_target(),
                ..AnalyzeOptions::default()
            },
        );
        self.statistics
            .insert(table_name.to_ascii_lowercase(), stats);
        // Fresh statistics supersede anything learned about the old contents: drop
        // the table's feedback entries so the next run re-learns against the new
        // statistics instead of anchoring on stale observed counts.
        self.feedback.invalidate_table(table_name);
        Ok(())
    }

    /// Run ANALYZE over every table in storage.
    pub fn analyze_all(&mut self, storage: &Storage) -> Result<(), StorageError> {
        for name in storage.table_names() {
            self.analyze(storage, &name)?;
        }
        Ok(())
    }

    /// Statistics for a table, if ANALYZE has been run.
    pub fn table_statistics(&self, table_name: &str) -> Option<&TableStatistics> {
        self.statistics.get(&table_name.to_ascii_lowercase())
    }

    /// Register externally computed statistics (used for temporary tables created during
    /// re-optimization: the paper's scheme materializes a sub-join and re-plans with the
    /// *true* cardinality of that temporary table).
    pub fn insert_statistics(&mut self, table_name: &str, stats: TableStatistics) {
        self.statistics
            .insert(table_name.to_ascii_lowercase(), stats);
    }

    /// Drop statistics for a table (when it is dropped). Feedback entries that
    /// reference the table are dropped with it.
    pub fn remove_statistics(&mut self, table_name: &str) {
        self.statistics.remove(&table_name.to_ascii_lowercase());
        self.feedback.invalidate_table(table_name);
    }

    /// The cross-query cardinality feedback cache.
    pub fn feedback(&self) -> &FeedbackCache {
        &self.feedback
    }

    /// Mutable access to the feedback cache handle. Rarely needed now that every
    /// cache operation takes `&self`; kept for handle replacement (e.g. detaching
    /// a catalog from a shared store).
    pub fn feedback_mut(&mut self) -> &mut FeedbackCache {
        &mut self.feedback
    }

    /// Whether statistics exist for a table.
    pub fn has_statistics(&self, table_name: &str) -> bool {
        self.statistics
            .contains_key(&table_name.to_ascii_lowercase())
    }

    /// Names of all tables with statistics.
    pub fn analyzed_tables(&self) -> Vec<&str> {
        self.statistics.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::{Column, DataType, Row, Schema, Table, Value};

    fn storage_with_table() -> Storage {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("kind", DataType::Text),
        ]);
        let mut table = Table::new("title", schema);
        for i in 0..1000i64 {
            let kind = if i % 10 == 0 { "tv" } else { "movie" };
            table
                .push_row(Row::from_values(vec![Value::Int(i), Value::from(kind)]))
                .unwrap();
        }
        let mut storage = Storage::new();
        storage.create_table(table).unwrap();
        storage
    }

    #[test]
    fn analyze_populates_statistics() {
        let storage = storage_with_table();
        let mut catalog = Catalog::new();
        assert!(!catalog.has_statistics("title"));
        catalog.analyze(&storage, "title").unwrap();
        assert!(catalog.has_statistics("title"));
        let stats = catalog.table_statistics("title").unwrap();
        assert_eq!(stats.row_count, 1000);
        assert_eq!(stats.columns.len(), 2);
        assert_eq!(catalog.analyzed_tables(), vec!["title"]);
    }

    #[test]
    fn analyze_all_and_remove() {
        let storage = storage_with_table();
        let mut catalog = Catalog::new();
        catalog.analyze_all(&storage).unwrap();
        assert!(catalog.has_statistics("TITLE"));
        catalog.remove_statistics("title");
        assert!(!catalog.has_statistics("title"));
    }

    #[test]
    fn statistics_target_is_configurable() {
        let mut catalog = Catalog::new();
        assert_eq!(catalog.statistics_target(), DEFAULT_STATISTICS_TARGET);
        catalog.set_statistics_target(10_000);
        assert_eq!(catalog.statistics_target(), 10_000);
        catalog.set_statistics_target(0);
        assert_eq!(catalog.statistics_target(), 1);
    }

    #[test]
    fn analyze_missing_table_errors() {
        let storage = Storage::new();
        let mut catalog = Catalog::new();
        assert!(catalog.analyze(&storage, "missing").is_err());
    }
}
