//! Statistics data structures: MCV lists, equi-depth histograms and per-column stats.

use reopt_storage::Value;

/// A most-common-values list: the values that appear most frequently in a column, with
/// the fraction of rows each accounts for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MostCommonValues {
    entries: Vec<(Value, f64)>,
}

impl MostCommonValues {
    /// Create an MCV list from `(value, frequency)` pairs, sorted by descending frequency.
    pub fn new(mut entries: Vec<(Value, f64)>) -> Self {
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Self { entries }
    }

    /// The entries, most frequent first.
    pub fn entries(&self) -> &[(Value, f64)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The frequency of `value` if it is in the list.
    pub fn frequency_of(&self, value: &Value) -> Option<f64> {
        self.entries
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, f)| *f)
    }

    /// Total fraction of rows covered by the MCV list.
    pub fn total_frequency(&self) -> f64 {
        self.entries.iter().map(|(_, f)| f).sum()
    }
}

/// An equi-depth histogram: `bounds` splits the non-MCV, non-NULL values into buckets of
/// (approximately) equal row counts. `bounds[0]` is the minimum and `bounds[last]` the
/// maximum of the covered values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    bounds: Vec<Value>,
}

impl Histogram {
    /// Create a histogram from sorted bucket bounds.
    pub fn new(bounds: Vec<Value>) -> Self {
        Self { bounds }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[Value] {
        &self.bounds
    }

    /// Number of buckets (one fewer than the number of bounds, or zero).
    pub fn bucket_count(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Whether the histogram holds no information.
    pub fn is_empty(&self) -> bool {
        self.bucket_count() == 0
    }

    /// Estimate the fraction of histogram-covered values that are `< value` (strictly
    /// below). Interpolates linearly within numeric buckets, the way PostgreSQL's
    /// `ineq_histogram_selectivity` does.
    pub fn fraction_below(&self, value: &Value) -> f64 {
        if self.is_empty() {
            return 0.5;
        }
        let n_buckets = self.bucket_count() as f64;
        if value <= &self.bounds[0] {
            return 0.0;
        }
        if value > self.bounds.last().expect("non-empty") {
            return 1.0;
        }
        // Find the bucket containing the value.
        let mut lo = 0usize;
        let mut hi = self.bounds.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if &self.bounds[mid] < value {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let bucket_low = &self.bounds[lo];
        let bucket_high = &self.bounds[hi];
        let within = interpolate(bucket_low, bucket_high, value);
        (lo as f64 + within) / n_buckets
    }

    /// Estimate the fraction of covered values in the inclusive range `[low, high]`.
    pub fn fraction_between(&self, low: &Value, high: &Value) -> f64 {
        (self.fraction_below(high) - self.fraction_below(low)).max(0.0)
    }
}

/// Linear interpolation of `value` between `low` and `high`, clamped to [0, 1].
/// Non-numeric types fall back to 0.5 (PostgreSQL uses binary-string interpolation for
/// text; the midpoint is a reasonable stand-in for synthetic data).
fn interpolate(low: &Value, high: &Value, value: &Value) -> f64 {
    match (low.as_float(), high.as_float(), value.as_float()) {
        (Some(lo), Some(hi), Some(v)) if hi > lo => ((v - lo) / (hi - lo)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStatistics {
    /// Column name.
    pub name: String,
    /// Fraction of rows where this column is NULL.
    pub null_fraction: f64,
    /// Estimated number of distinct non-NULL values.
    pub n_distinct: f64,
    /// Minimum non-NULL value observed.
    pub min: Option<Value>,
    /// Maximum non-NULL value observed.
    pub max: Option<Value>,
    /// Average width of the column's values in bytes.
    pub avg_width: f64,
    /// Most-common-values list.
    pub mcv: MostCommonValues,
    /// Equi-depth histogram over values not in the MCV list.
    pub histogram: Histogram,
}

impl ColumnStatistics {
    /// Fraction of rows not covered by the MCV list and not NULL — the mass the
    /// histogram describes.
    pub fn non_mcv_fraction(&self) -> f64 {
        (1.0 - self.null_fraction - self.mcv.total_frequency()).max(0.0)
    }

    /// Number of distinct values not represented in the MCV list.
    pub fn non_mcv_distinct(&self) -> f64 {
        (self.n_distinct - self.mcv.len() as f64).max(1.0)
    }
}

/// Per-table statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStatistics {
    /// Number of rows in the table when ANALYZE ran.
    pub row_count: u64,
    /// Average row width in bytes.
    pub avg_row_width: f64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStatistics>,
}

impl TableStatistics {
    /// Statistics for a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Build minimal statistics for a table whose only known property is its row count
    /// (used for temporary tables created mid-re-optimization, where the row count is
    /// exact because we just materialized it).
    pub fn from_row_count(row_count: u64) -> Self {
        Self {
            row_count,
            avg_row_width: 8.0,
            columns: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcv_sorted_and_queryable() {
        let mcv = MostCommonValues::new(vec![
            (Value::from("movie"), 0.3),
            (Value::from("tv"), 0.6),
            (Value::from("short"), 0.1),
        ]);
        assert_eq!(mcv.entries()[0].0, Value::from("tv"));
        assert_eq!(mcv.frequency_of(&Value::from("movie")), Some(0.3));
        assert_eq!(mcv.frequency_of(&Value::from("nope")), None);
        assert!((mcv.total_frequency() - 1.0).abs() < 1e-9);
        assert_eq!(mcv.len(), 3);
        assert!(!mcv.is_empty());
    }

    #[test]
    fn histogram_fraction_below_interpolates() {
        let hist = Histogram::new(vec![
            Value::Int(0),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Int(40),
        ]);
        assert_eq!(hist.bucket_count(), 4);
        assert!((hist.fraction_below(&Value::Int(0)) - 0.0).abs() < 1e-9);
        assert!((hist.fraction_below(&Value::Int(20)) - 0.5).abs() < 1e-9);
        assert!((hist.fraction_below(&Value::Int(25)) - 0.625).abs() < 1e-9);
        assert!((hist.fraction_below(&Value::Int(45)) - 1.0).abs() < 1e-9);
        assert!((hist.fraction_between(&Value::Int(10), &Value::Int(30)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_defaults() {
        let hist = Histogram::default();
        assert!(hist.is_empty());
        assert_eq!(hist.fraction_below(&Value::Int(5)), 0.5);
    }

    #[test]
    fn histogram_with_text_bounds_uses_midpoint() {
        let hist = Histogram::new(vec![Value::from("a"), Value::from("m"), Value::from("z")]);
        let f = hist.fraction_below(&Value::from("c"));
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn column_statistics_derived_fractions() {
        let stats = ColumnStatistics {
            name: "kind".into(),
            null_fraction: 0.1,
            n_distinct: 12.0,
            mcv: MostCommonValues::new(vec![(Value::from("movie"), 0.5)]),
            ..Default::default()
        };
        assert!((stats.non_mcv_fraction() - 0.4).abs() < 1e-9);
        assert!((stats.non_mcv_distinct() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn table_statistics_lookup_by_name() {
        let stats = TableStatistics {
            row_count: 10,
            avg_row_width: 16.0,
            columns: vec![ColumnStatistics {
                name: "id".into(),
                ..Default::default()
            }],
        };
        assert!(stats.column("ID").is_some());
        assert!(stats.column("other").is_none());
        let minimal = TableStatistics::from_row_count(42);
        assert_eq!(minimal.row_count, 42);
    }
}
